//! Facade crate for the real-time router reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can depend on a single package:
//!
//! * [`types`] — shared vocabulary (clock, keys, packets, config),
//! * [`events`] — the calendar-queue wake list behind time leaping,
//! * [`metrics`] — the unified metrics registry, phase profiler, and
//!   flight recorder (live with `--features metrics`, zero-sized without),
//! * [`core`] — the real-time router chip model,
//! * [`mesh`] — the cycle-stepped network simulator,
//! * [`channels`] — real-time channel admission and establishment,
//! * [`workloads`] — traffic generators,
//! * [`baselines`] — comparison router designs,
//! * [`hwcost`] — the hardware complexity model.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! the paper-experiment index.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtr_baselines as baselines;
pub use rtr_channels as channels;
pub use rtr_core as core;
pub use rtr_events as events;
pub use rtr_hwcost as hwcost;
pub use rtr_mesh as mesh;
pub use rtr_metrics as metrics;
pub use rtr_types as types;
pub use rtr_workloads as workloads;

/// The names most programs need, in one import.
///
/// ```
/// use realtime_router::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = Topology::mesh(2, 2);
/// let mut sim = Simulator::build(topo, |_| RealTimeRouter::new(RouterConfig::default()))?;
/// sim.run(10);
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use rtr_channels::{
        ChannelManager, ChannelRequest, ChannelSender, EstablishedChannel, TrafficSpec,
    };
    pub use rtr_core::{ControlCommand, RealTimeRouter};
    pub use rtr_mesh::{Simulator, Topology, TrafficSource};
    pub use rtr_types::chip::{Chip, ChipIo};
    pub use rtr_types::config::RouterConfig;
    pub use rtr_types::ids::{ConnectionId, Direction, NodeId, Port};
    pub use rtr_types::packet::{BePacket, PacketTrace, TcPacket};
}
