//! Integration: the unified metrics registry, phase profiler, and flight
//! recorder observed through the simulator (`--features metrics` only).
//!
//! The equivalence test extends the event-core suite's guarantee to the
//! metrics plane: the datapath ledger (`router.*` counters) must render
//! byte-identically whether a scenario was driven stepped or leaping —
//! observability must not see drive-mode artifacts — while work counters
//! (scheduler key computations) shrink under leaping, never grow. The flight-recorder tests induce real failures
//! (a cooked conservation ledger, a panic under a guard) and assert the
//! post-mortem JSONL dump carries the recent-event ring plus a full
//! metrics snapshot. The profiler test checks wall-clock attribution lands
//! in the phases each drive mode actually executes.
#![cfg(feature = "metrics")]

use realtime_router::channels::establish::{EstablishedChannel, Hop};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::metrics::{MetricLine, Phase};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, NodeId, Port};
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

const DELAY: u32 = 6;

/// A 4×4 mesh with two one-hop periodic TC channels and optional BE load.
fn build_mesh(tc_period_slots: u64, be_rate: f64) -> Simulator<RealTimeRouter> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    for (i, y) in [0u16, 3].into_iter().enumerate() {
        let conn = ConnectionId(10 + i as u16);
        let src = topo.node_at(0, y);
        let dst = topo.node_at(1, y);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let channel = EstablishedChannel {
            id: u64::from(conn.0),
            ingress: conn,
            depth: 2,
            guaranteed: 2 * DELAY,
            hops: vec![
                Hop {
                    node: src,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Dir(Direction::XPlus).mask(),
                    buffers: 2,
                },
                Hop {
                    node: dst,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Local.mask(),
                    buffers: 2,
                },
            ],
            request: ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(tc_period_slots as u32, 18),
                2 * DELAY,
            ),
        };
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                tc_period_slots,
                0,
                config.slot_bytes,
                vec![0xA0 + i as u8; config.tc_data_bytes()],
            )),
        );
    }
    if be_rate > 0.0 {
        for node in topo.nodes() {
            sim.add_source(
                node,
                Box::new(
                    RandomBeSource::new(
                        topo.clone(),
                        TrafficPattern::Uniform,
                        be_rate,
                        SizeDist::Fixed(16),
                        0xC0FF_EE00 ^ u64::from(node.0),
                    )
                    .with_max_queue(8),
                ),
            );
        }
    }
    sim
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rtr_metrics_it_{tag}_{}.jsonl", std::process::id()))
}

/// The datapath ledger must be drive-mode independent: `router.*` counters
/// and the scheduler's key-computation count snapshot byte-identically
/// between a stepped and a leaping run of the same scenario.
#[test]
fn datapath_counters_are_drive_mode_independent() {
    for (period, be_rate, cycles) in [(64, 0.0, 10_000), (8, 0.05, 3_000)] {
        let mut stepped = build_mesh(period, be_rate);
        stepped.run(cycles);
        let mut leaping = build_mesh(period, be_rate);
        leaping.run_leaping(cycles);
        assert_eq!(stepped.now(), leaping.now());

        let snap_stepped = stepped.metrics_snapshot();
        let snap_leaping = leaping.metrics_snapshot();
        let a = snap_stepped.filter_prefix("router.").to_jsonl(cycles);
        let b = snap_leaping.filter_prefix("router.").to_jsonl(cycles);
        assert!(!a.is_empty(), "router. namespace must be populated");
        assert_eq!(
            a, b,
            "router. counters diverged between stepped and leaping \
             (period {period}, be {be_rate})"
        );
        // Work counters are NOT expected to match: leaping exists to skip
        // scheduler polls on quiet cycles, so its key work is bounded by
        // the stepped run's — while delivering the identical ledger above.
        let keys_stepped = snap_stepped.counter("sched.key_computations").unwrap_or(0);
        let keys_leaping = snap_leaping.counter("sched.key_computations").unwrap_or(0);
        assert!(keys_stepped > 0, "the tree scheduler must have computed keys");
        assert!(
            keys_leaping <= keys_stepped,
            "leaping must never do more scheduler work: {keys_leaping} vs {keys_stepped}"
        );
        // The drive-mode-dependent plane must, by contrast, show the leap.
        assert!(
            snap_leaping.counter("sim.leaps").unwrap_or(0) > 0 || be_rate > 0.0,
            "sparse leaping run must record leaps"
        );
    }
}

/// Interleaving plain stepping between leaping runs must not re-prime the
/// event queue: `sim.stale_repolls` counts the priming passes, and a warm
/// queue adds none.
#[test]
fn warm_queue_adds_no_stale_repolls() {
    let mut sim = build_mesh(64, 0.0);
    sim.run_leaping(2_000);
    let after_prime = sim.metrics_snapshot().counter("sim.stale_repolls").unwrap_or(0);
    assert!(after_prime > 0, "the first leaping call must prime (and count) the queue");
    sim.run(2_000);
    sim.run_leaping(2_000);
    let after_interleave = sim.metrics_snapshot().counter("sim.stale_repolls").unwrap_or(0);
    assert_eq!(
        after_prime, after_interleave,
        "plain stepping kept the queue warm, so no re-prime may happen"
    );
}

/// A conservation-ledger violation must dump the flight recorder: header
/// line with the reason, the recent-event ring, and a parseable metrics
/// snapshot.
#[test]
fn flight_recorder_dumps_on_conservation_violation() {
    let path = temp_path("conservation");
    let mut sim = build_mesh(8, 0.05);
    sim.arm_flight_recorder(32, path.clone());
    sim.run(1_000);
    assert!(sim.check_conservation().is_ok(), "healthy run must conserve");

    // Cook the ledger: one phantom arrival that never leaves the node.
    sim.chip_mut(NodeId(0)).stats_mut().tc_arrived += 1;
    let err = sim.check_conservation().expect_err("cooked ledger must fail");
    assert!(err.contains("node 0"), "violation must name the node: {err}");

    let text = std::fs::read_to_string(&path).expect("violation must write the dump");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"flight\": \"dump\"")
            && lines[0].contains("\"reason\": \"conservation\""),
        "dump header must carry the trigger reason: {}",
        lines[0]
    );
    let events = lines.iter().filter(|l| l.contains("\"ev\": \"")).count();
    assert!(events > 0, "dump must carry the recent-event ring");
    let metrics: Vec<MetricLine> = lines.iter().filter_map(|l| MetricLine::parse(l)).collect();
    assert!(
        metrics.iter().any(|m| m.name == "router.tc_arrived"),
        "dump must embed a full metrics snapshot"
    );
    assert_eq!(sim.flight_recorder().unwrap().dumped().as_deref(), Some("conservation"));
}

/// A panic while a [`realtime_router::metrics::FlightGuard`] is alive must
/// dump with reason `"panic"` — the post-mortem for unwinding tests.
#[test]
fn flight_guard_dumps_on_panic() {
    let path = temp_path("panic");
    let mut sim = build_mesh(8, 0.05);
    sim.arm_flight_recorder(32, path.clone());
    sim.run(500);
    let guard = sim.flight_guard().expect("armed recorder must hand out guards");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let _guard = guard;
        panic!("induced failure under guard");
    }));
    assert!(result.is_err());
    let text = std::fs::read_to_string(&path).expect("panic must write the dump");
    std::fs::remove_file(&path).ok();
    assert!(text.lines().next().unwrap().contains("\"reason\": \"panic\""));
    assert!(text.lines().filter_map(MetricLine::parse).count() > 0);
}

/// Wall-clock attribution must land in the phases a drive mode actually
/// runs: stepped time in the serial tick loop, leaping runs in planning,
/// and parallel runs in the pool laps — or, when the dispatch clamp keeps
/// a cycle inline (core-starved host, too few due chips), back in the
/// serial tick lap. Either way the time is attributed, never lost.
#[test]
fn profiler_attributes_time_to_live_phases() {
    let mut stepped = build_mesh(8, 0.05);
    stepped.phase_profiler().set_enabled(true);
    stepped.run(1_000);
    let report = stepped.phase_profiler().report();
    let line = |p: Phase| report.iter().find(|l| l.phase == p).copied().unwrap();
    assert_eq!(line(Phase::SerialTick).calls, 1_000);
    assert!(line(Phase::SerialTick).ns > 0);
    assert_eq!(line(Phase::PoolWait).calls, 0, "a serial run never waits on the pool");
    let (dominant, share) = stepped.phase_profiler().dominant().unwrap();
    assert!(share > 0.0 && share <= 1.0, "dominant {dominant:?} share {share}");

    let mut parallel = build_mesh(8, 0.05);
    parallel.set_parallelism(4);
    parallel.phase_profiler().set_enabled(true);
    parallel.run_leaping(1_000);
    let report = parallel.phase_profiler().report();
    let line = |p: Phase| report.iter().find(|l| l.phase == p).copied().unwrap();
    assert!(line(Phase::LeapPlan).calls > 0, "leaping run must plan leaps");
    let ticked = line(Phase::SerialTick).calls + line(Phase::PoolLocalTick).calls;
    assert!(ticked > 0, "stepped cycles must attribute their chip ticks somewhere");
    assert_eq!(
        line(Phase::PoolHandoff).calls,
        line(Phase::PoolWait).calls,
        "every pool hand-off is matched by exactly one wait"
    );
    if std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) == 1 {
        assert_eq!(
            line(Phase::PoolHandoff).calls,
            0,
            "a single-core host must clamp every cycle to the inline path"
        );
    }

    // The profile also exports through the registry as profile.* counters.
    let snap = parallel.metrics_snapshot();
    assert!(snap.counter("profile.leap_plan.calls").unwrap_or(0) > 0);
}
