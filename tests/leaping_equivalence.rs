//! Integration: event-driven time leaping is bit-identical to stepping.
//!
//! [`Simulator::run_leaping`] may advance simulated time over provably
//! quiet spans, but the observable outcome must match plain cycle stepping
//! exactly: the same packets with the same payload bytes delivered at the
//! same cycles in the same order, and an identical [`NetworkReport`] —
//! statistics, link usage, deadline metrics, and occupancy time series
//! included. This suite drives seeded 8×8 meshes at sparse, mixed, and
//! saturating loads (plus a horizon-limited early-traffic corner on a
//! two-node mesh) through both paths and diffs everything. The sparse and
//! idle scenarios additionally pin the point of the fast path: far fewer
//! chip ticks executed for the same simulated span.

use realtime_router::channels::establish::{EstablishedChannel, Hop};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, NodeId, Port};
use realtime_router::types::packet::{PacketTrace, TcPacket};
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

const DELAY: u32 = 6;

/// Adds a one-hop periodic TC channel from `(0, y)` to `(1, y)`.
fn add_channel(sim: &mut Simulator<RealTimeRouter>, y: u16, index: usize, period_slots: u64) {
    let config = RouterConfig::default();
    let topo = sim.topology().clone();
    let conn = ConnectionId(10 + index as u16);
    let src = topo.node_at(0, y);
    let dst = topo.node_at(1, y);
    sim.chip_mut(src)
        .apply_control(ControlCommand::SetConnection {
            incoming: conn,
            outgoing: conn,
            delay: DELAY,
            out_mask: Port::Dir(Direction::XPlus).mask(),
        })
        .unwrap();
    sim.chip_mut(dst)
        .apply_control(ControlCommand::SetConnection {
            incoming: conn,
            outgoing: conn,
            delay: DELAY,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
    let channel = EstablishedChannel {
        id: u64::from(conn.0),
        ingress: conn,
        depth: 2,
        guaranteed: 2 * DELAY,
        hops: vec![
            Hop {
                node: src,
                conn,
                out_conn: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
                buffers: 2,
            },
            Hop {
                node: dst,
                conn,
                out_conn: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
                buffers: 2,
            },
        ],
        request: ChannelRequest::unicast(
            src,
            dst,
            TrafficSpec::periodic(period_slots as u32, 18),
            2 * DELAY,
        ),
    };
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            period_slots,
            0,
            config.slot_bytes,
            vec![0xA0 + index as u8, config.tc_data_bytes() as u8]
                .into_iter()
                .cycle()
                .take(config.tc_data_bytes())
                .collect(),
        )),
    );
}

/// Adds a seeded Bernoulli BE source at every node.
fn add_be_background(sim: &mut Simulator<RealTimeRouter>, rate: f64) {
    let topo = sim.topology().clone();
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    rate,
                    SizeDist::Fixed(16),
                    0xC0FF_EE00 ^ u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
}

/// Builds an 8×8 mesh with four periodic channels and optional BE load.
fn build_mesh(tc_period_slots: u64, be_rate: f64) -> Simulator<RealTimeRouter> {
    let config = RouterConfig::default();
    let mut sim =
        Simulator::build(Topology::mesh(8, 8), |_| RealTimeRouter::new(config.clone())).unwrap();
    sim.enable_gauge_sampling(50);
    for (i, y) in [0u16, 2, 5, 7].into_iter().enumerate() {
        add_channel(&mut sim, y, i, tc_period_slots);
    }
    if be_rate > 0.0 {
        add_be_background(&mut sim, be_rate);
    }
    sim
}

/// Runs one simulator stepped and an identically-built one leaping, then
/// asserts byte-identical observables. Returns `(stepped, leaping)` for
/// scenario-specific follow-up assertions.
fn assert_equivalent(
    mut build: impl FnMut() -> Simulator<RealTimeRouter>,
    cycles: u64,
) -> (Simulator<RealTimeRouter>, Simulator<RealTimeRouter>) {
    let config = RouterConfig::default();
    let mut stepped = build();
    stepped.run(cycles);
    let mut leaping = build();
    leaping.run_leaping(cycles);

    assert_eq!(stepped.now(), leaping.now(), "both runs must cover the same span");
    for node in stepped.topology().nodes() {
        let (s, l) = (stepped.log(node), leaping.log(node));
        assert_eq!(s.tc, l.tc, "TC deliveries diverged at {node}");
        assert_eq!(s.be, l.be, "BE deliveries diverged at {node}");
    }
    let s = format!("{:?}", NetworkReport::capture(&stepped, config.slot_bytes));
    let l = format!("{:?}", NetworkReport::capture(&leaping, config.slot_bytes));
    assert_eq!(s, l, "network reports diverged between stepped and leaping runs");
    (stepped, leaping)
}

/// Sparse load (≲1% injection): long-period channels, no best-effort
/// traffic. The network is quiet most of the time, so leaping must both
/// match stepping exactly and execute a small fraction of its ticks.
#[test]
fn leaping_equivalence_sparse_load() {
    let cycles = 20_000;
    let (stepped, leaping) = assert_equivalent(|| build_mesh(64, 0.0), cycles);
    let tc_total: usize = stepped.topology().nodes().map(|n| stepped.log(n).tc.len()).sum();
    assert!(tc_total >= 40, "sparse TC load too light to trust: {tc_total}");
    assert!(
        leaping.ticks_executed() * 2 < stepped.ticks_executed(),
        "sparse load must leap most cycles: {} vs {} ticks",
        leaping.ticks_executed(),
        stepped.ticks_executed()
    );
}

/// Mixed load: period-8 channels plus 5% Bernoulli BE background. Random
/// sources draw every cycle, so leaping windows are rare-to-absent — the
/// fast path must degrade gracefully to per-cycle stepping with no
/// divergence, while sparse ticking still skips the chips a cycle never
/// touches (so the event path ticks no more, usually fewer).
#[test]
fn leaping_equivalence_mixed_load() {
    let cycles = 4_000;
    let (stepped, leaping) = assert_equivalent(|| build_mesh(8, 0.05), cycles);
    let be_total: usize = stepped.topology().nodes().map(|n| stepped.log(n).be.len()).sum();
    assert!(be_total > 500, "mixed BE load too light to trust: {be_total}");
    assert!(
        leaping.ticks_executed() <= stepped.ticks_executed(),
        "sparse ticking may never exceed dense stepping: {} vs {} ticks",
        leaping.ticks_executed(),
        stepped.ticks_executed()
    );
}

/// Saturating load: period-8 channels plus 35% Bernoulli BE background —
/// heavy contention, credit stalls, and early-cut gap fills, all with the
/// leaping check armed every cycle.
#[test]
fn leaping_equivalence_saturating_load() {
    let cycles = 3_000;
    let (stepped, _) = assert_equivalent(|| build_mesh(8, 0.35), cycles);
    let be_total: usize = stepped.topology().nodes().map(|n| stepped.log(n).be.len()).sum();
    assert!(be_total > 1_000, "saturating BE load too light to trust: {be_total}");
}

/// Horizon-limited early traffic: a packet whose logical arrival is far in
/// the future parks in packet memory until its slack enters the horizon.
/// The leaping run must wake exactly at the horizon boundary — waking one
/// slot late would shift the transmit cycle, one slot early would burn
/// ticks — and still deliver at the stepped run's cycle.
#[test]
fn leaping_equivalence_horizon_limited_early_tc() {
    let cycles = 6_000;
    let build = || {
        let config = RouterConfig::default();
        let mut sim =
            Simulator::build(Topology::mesh(2, 1), |_| RealTimeRouter::new(config.clone()))
                .unwrap();
        sim.enable_gauge_sampling(50);
        let src = NodeId(0);
        let dst = sim.topology().node_at(1, 0);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(5),
                outgoing: ConnectionId(5),
                delay: 100,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetHorizon {
                port_mask: Port::Dir(Direction::XPlus).mask(),
                horizon: 4,
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(5),
                outgoing: ConnectionId(5),
                delay: 100,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let clock = sim.chip(src).clock();
        let payload = vec![0x77; sim.chip(src).config().tc_data_bytes()];
        sim.inject_tc(
            src,
            TcPacket {
                conn: ConnectionId(5),
                arrival: clock.wrap(120),
                payload: payload.into(),
                trace: PacketTrace {
                    source: src,
                    destination: dst,
                    deadline: 320,
                    ..PacketTrace::default()
                },
            },
        );
        sim
    };
    let (stepped, leaping) = assert_equivalent(build, cycles);
    let dst = stepped.topology().node_at(1, 0);
    assert_eq!(stepped.log(dst).tc.len(), 1, "the parked packet must arrive");
    assert!(
        leaping.ticks_executed() * 2 < stepped.ticks_executed(),
        "the early-parked span must be leaped: {} vs {} ticks",
        leaping.ticks_executed(),
        stepped.ticks_executed()
    );
}
