//! Integration: the §7 extensions compose — virtual cut-through plus the
//! banded approximate scheduler (with safe band width) still deliver every
//! admitted packet on time across a mesh.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::types::config::SchedulerKind;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

#[test]
fn cut_through_plus_banded_scheduler_keep_guarantees() {
    let config = RouterConfig {
        tc_cut_through: true,
        scheduler: SchedulerKind::Banded { band_shift: 1 }, // 2-slot bands
        ..RouterConfig::default()
    };
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);

    let pairs = [((0u16, 0u16), (3u16, 1u16)), ((3, 3), (0, 2)), ((1, 0), (2, 3))];
    let mut channels = Vec::new();
    for (s, d) in pairs {
        let src = topo.node_at(s.0, s.1);
        let dst = topo.node_at(d.0, d.1);
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        channels.push(
            manager
                .establish(
                    &topo,
                    ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), depth * 8),
                    &mut sim,
                )
                .unwrap(),
        );
    }
    for channel in &channels {
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                16,
                0,
                config.slot_bytes,
                vec![3; config.tc_data_bytes()],
            )),
        );
    }
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.1,
                    SizeDist::Uniform(8, 48),
                    0xC0FFEE ^ u64::from(node.0),
                )
                .with_max_queue(6),
            ),
        );
    }

    sim.run(80_000);

    let mut delivered = 0;
    let mut cut_events = 0;
    for node in topo.nodes() {
        let log = sim.log(node);
        assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
        delivered += log.tc.len();
        cut_events += sim.chip(node).stats().tc_cut_through;
        assert_eq!(sim.chip(node).stats().tc_dropped(), 0);
        assert_eq!(sim.chip(node).stats().aliased_keys, 0);
    }
    assert!(delivered > 600, "delivered {delivered}");
    assert!(cut_events > 0, "cut-through fired under light load");
}
