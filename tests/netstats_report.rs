//! Integration: the network-report instrumentation captures a coherent
//! whole-network picture.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::be::BackloggedBeSource;
use realtime_router::workloads::tc::PeriodicTcSource;

#[test]
fn report_reflects_the_simulation() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    let mut manager = ChannelManager::new(&config);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 42),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![2; config.tc_data_bytes()],
        )),
    );
    sim.add_source(src, Box::new(BackloggedBeSource::new(&topo, src, dst, 60, 2)));
    sim.run(40_000);

    let report = NetworkReport::capture(&sim, config.slot_bytes);
    assert_eq!(report.cycles, 40_000);
    assert_eq!(report.deadline_misses, 0);
    assert_eq!(report.tc_delivered, sim.log(dst).tc.len());
    assert_eq!(report.tc_latency.count() as usize, report.tc_delivered);
    assert!(report.be_delivered > 0);
    // Latency statistics are consistent with the raw log.
    let max_raw = *sim.log(dst).tc_latencies().iter().max().unwrap();
    assert_eq!(report.tc_latency.max(), max_raw);
    assert!(report.tc_latency.percentile(100.0) >= report.tc_latency.percentile(50.0));
    // Both row-0 links carried traffic; the hottest link is one of them.
    let (hot_node, hot_dir, usage) = report.hottest_links(1)[0];
    assert!(usage.tc_symbols > 0 && usage.be_symbols > 0);
    assert!(
        (hot_node == src || hot_node == topo.node_at(1, 0)) && hot_dir == Direction::XPlus,
        "hottest link must be on the row-0 path: {hot_node}/{hot_dir}"
    );
    // Link symbol counts match the deliveries (20 bytes per TC packet per
    // link hop; deliveries crossed both links).
    let expected = report.tc_delivered * config.slot_bytes;
    assert!(
        usage.tc_symbols as usize >= expected
            && usage.tc_symbols as usize <= expected + 2 * config.slot_bytes,
        "every delivered packet crossed the hot link once (± in-flight): {} vs {}",
        usage.tc_symbols,
        expected
    );
}
