//! Property-based integration tests: randomized admitted channel sets on
//! randomized meshes always meet every deadline — the system-level
//! statement of the paper's central claim.

use proptest::prelude::*;
use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::NodeId;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

/// A compact description of one randomized scenario.
#[derive(Debug, Clone)]
struct Scenario {
    width: u16,
    height: u16,
    /// (src, dst, i_min, per-hop delay) seeds; indices reduced mod node
    /// count.
    channels: Vec<(u16, u16, u32, u32)>,
    be_rate: f64,
    seed: u64,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        2u16..=4,
        1u16..=4,
        proptest::collection::vec((0u16..64, 0u16..64, 0usize..3, 4u32..=8), 1..6),
        0.0f64..0.3,
        any::<u64>(),
    )
        .prop_map(|(width, height, raw, be_rate, seed)| Scenario {
            width,
            height,
            channels: raw
                .into_iter()
                .map(|(s, d, imin_idx, dper)| (s, d, [8u32, 16, 32][imin_idx], dper))
                .collect(),
            be_rate,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case runs a full network simulation
        .. ProptestConfig::default()
    })]

    /// No horizon value can break guarantees: early transmission is pure
    /// opportunism on top of the reservation (§2's claim that the horizon
    /// trades buffers for latency, never correctness).
    #[test]
    fn any_horizon_preserves_guarantees(s in arb_scenario(), h_raw in 0u32..100) {
        use realtime_router::core::ControlCommand;
        let config = RouterConfig::default();
        let topo = Topology::mesh(s.width, s.height);
        let n = topo.len() as u16;
        let mut sim =
            Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
        let mut manager = ChannelManager::new(&config);
        let horizon = h_raw % 64;
        manager.set_assumed_horizon(horizon);
        for node in topo.nodes() {
            sim.chip_mut(node)
                .apply_control(ControlCommand::SetHorizon { port_mask: 0b1_1111, horizon })
                .unwrap();
        }
        let mut any = false;
        for (rs, rd, i_min, d_per) in &s.channels {
            let src = NodeId(rs % n);
            let dst = NodeId(rd % n);
            if src == dst {
                continue;
            }
            let depth = topo.dor_route(src, dst).len() as u32 + 1;
            let d_per = (*d_per).min(*i_min);
            let request = ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(*i_min, 18),
                depth * d_per,
            );
            if let Ok(ch) = manager.establish(&topo, request, &mut sim) {
                any = true;
                let sender = ChannelSender::new(
                    &ch,
                    sim.chip(src).clock(),
                    config.slot_bytes,
                    config.tc_data_bytes(),
                );
                sim.add_source(
                    src,
                    Box::new(PeriodicTcSource::new(
                        sender,
                        u64::from(ch.request.spec.i_min),
                        ch.id % 4,
                        config.slot_bytes,
                        vec![8; config.tc_data_bytes()],
                    )),
                );
            }
        }
        sim.run(25_000);
        for node in topo.nodes() {
            prop_assert_eq!(
                sim.log(node).tc_deadline_misses(config.slot_bytes),
                0,
                "horizon {} broke guarantees in {:?}",
                horizon,
                s
            );
            prop_assert_eq!(sim.chip(node).stats().tc_dropped(), 0);
        }
        let _ = any;
    }

    /// Whatever the admission controller accepts, the network delivers on
    /// time — under arbitrary meshes, channel mixes, and background load.
    #[test]
    fn admitted_traffic_always_meets_deadlines(s in arb_scenario()) {
        let config = RouterConfig::default();
        let topo = Topology::mesh(s.width, s.height);
        let n = topo.len() as u16;
        let mut sim =
            Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
        let mut manager = ChannelManager::new(&config);

        let mut admitted = Vec::new();
        for (rs, rd, i_min, d_per) in &s.channels {
            let src = NodeId(rs % n);
            let dst = NodeId(rd % n);
            if src == dst {
                continue;
            }
            let depth = topo.dor_route(src, dst).len() as u32 + 1;
            let d_per = (*d_per).min(*i_min);
            let request = ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(*i_min, 18),
                depth * d_per,
            );
            if let Ok(ch) = manager.establish(&topo, request, &mut sim) {
                admitted.push(ch);
            }
        }
        for ch in &admitted {
            let src = ch.request.source;
            let sender = ChannelSender::new(
                &ch.clone(),
                sim.chip(src).clock(),
                config.slot_bytes,
                config.tc_data_bytes(),
            );
            sim.add_source(
                src,
                Box::new(PeriodicTcSource::new(
                    sender,
                    u64::from(ch.request.spec.i_min),
                    ch.id % 4,
                    config.slot_bytes,
                    vec![7; config.tc_data_bytes()],
                )),
            );
        }
        if s.be_rate > 0.0 && topo.len() > 1 {
            for node in topo.nodes() {
                sim.add_source(
                    node,
                    Box::new(
                        RandomBeSource::new(
                            topo.clone(),
                            TrafficPattern::Uniform,
                            s.be_rate,
                            SizeDist::Uniform(8, 40),
                            s.seed ^ u64::from(node.0),
                        )
                        .with_max_queue(6),
                    ),
                );
            }
        }

        sim.run(30_000);

        let mut delivered = 0usize;
        for node in topo.nodes() {
            let log = sim.log(node);
            prop_assert_eq!(
                log.tc_deadline_misses(config.slot_bytes),
                0,
                "admitted traffic missed a deadline in {:?}",
                s
            );
            delivered += log.tc.len();
            prop_assert_eq!(sim.chip(node).stats().aliased_keys, 0);
            prop_assert_eq!(sim.chip(node).stats().tc_dropped(), 0);
        }
        if !admitted.is_empty() {
            prop_assert!(delivered > 0, "admitted channels must make progress");
        }
    }
}
