//! Integration: steering a real-time channel around a failed link with
//! explicit routes (paper §1: disjoint routes improve "resilience to link
//! and node failures"; §3.3: table-driven routing follows whatever path
//! establishment reserves).

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::tc::PeriodicTcSource;

#[test]
fn channel_routed_around_a_dead_link_still_guarantees() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);

    // The direct row-0 links are "failed": pick a detour and reserve it.
    let dead = [(src, Direction::XPlus), (topo.node_at(1, 0), Direction::XPlus)];
    let detour = topo.route_avoiding(src, dst, &dead).unwrap();
    for hop in &dead {
        assert!(!detour_uses(&topo, src, &detour, *hop), "detour avoids dead links");
    }

    let mut manager = ChannelManager::new(&config);
    let channel = manager
        .establish_routed(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
            std::slice::from_ref(&detour),
            &mut sim,
        )
        .unwrap();

    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![0x44; config.tc_data_bytes()],
        )),
    );
    sim.run(50_000);

    let log = sim.log(dst);
    assert!(log.tc.len() > 120, "delivered {}", log.tc.len());
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
    // The dead links carried no time-constrained traffic.
    for (node, dir) in dead {
        assert_eq!(
            sim.link_usage(node, dir).tc_symbols,
            0,
            "dead link {node}/{dir} must stay silent"
        );
    }
    // The detour's first link carried all of it.
    assert!(sim.link_usage(src, detour[0]).tc_symbols > 0);
}

fn detour_uses(
    topo: &Topology,
    src: NodeId,
    route: &[Direction],
    link: (NodeId, Direction),
) -> bool {
    let nodes = topo.walk(src, route);
    nodes.iter().zip(route).any(|(&n, &d)| (n, d) == link)
}

#[test]
fn disconnected_failures_are_reported_not_mis_routed() {
    let topo = Topology::mesh(2, 1);
    let dead = [(topo.node_at(0, 0), Direction::XPlus)];
    assert!(topo.route_avoiding(topo.node_at(0, 0), topo.node_at(1, 0), &dead).is_none());
}
