//! Integration: steering a real-time channel around a failed link with
//! explicit routes (paper §1: disjoint routes improve "resilience to link
//! and node failures"; §3.3: table-driven routing follows whatever path
//! establishment reserves) — both planned ahead of time and live, against
//! a link killed mid-run.

use realtime_router::channels::recovery::{watch_and_recover, RecoveryConfig};
use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{FaultKind, Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::tc::PeriodicTcSource;

fn attach_periodic_source(
    sim: &mut Simulator<RealTimeRouter>,
    channel: &EstablishedChannel,
    config: &RouterConfig,
    src: NodeId,
    offset: u64,
    fill: u8,
) {
    let sender = ChannelSender::new(
        channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            offset,
            config.slot_bytes,
            vec![fill; config.tc_data_bytes()],
        )),
    );
}

#[test]
fn mid_run_link_kill_is_detected_and_rerouted_live() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    let far_src = topo.node_at(0, 2);
    let far_dst = topo.node_at(2, 2);

    let mut manager = ChannelManager::new(&config);
    // The victim channel runs along row 0; a disjoint bystander runs along
    // row 2 and must never notice the fault.
    let victim = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
            &mut sim,
        )
        .unwrap();
    let bystander = manager
        .establish(
            &topo,
            ChannelRequest::unicast(far_src, far_dst, TrafficSpec::periodic(16, 18), 60),
            &mut sim,
        )
        .unwrap();
    attach_periodic_source(&mut sim, &victim, &config, src, 0, 0x44);
    attach_periodic_source(&mut sim, &bystander, &config, far_src, 5, 0x55);

    // Kill a row-0 link mid-run, while traffic is flowing.
    let broken = (topo.node_at(1, 0), Direction::XPlus);
    sim.run(4_000);
    assert!(sim.log(dst).tc.len() > 5, "victim flowing before the fault");
    sim.schedule_fault(5_000, FaultKind::LinkDown { node: broken.0, dir: broken.1 });

    // One packet lands every 16 slots (320 cycles); a 768-cycle silence is
    // unambiguous evidence of a fault.
    let recovery = RecoveryConfig {
        check_every: 64,
        timeout: 768,
        max_cycles: 60_000,
        cycles_per_table_write: 8,
    };
    let report =
        watch_and_recover(&mut sim, &mut manager, &topo, victim.id, dst, &recovery).unwrap();

    // The monitor saw the stall after the fault fired, not before.
    assert!(report.detected_at > 5_000);
    assert!(report.suspects.contains(&broken), "localized the downed link");
    assert!(report.rerouted_at >= report.detected_at);
    assert!(report.recovered_at > report.rerouted_at);
    assert!(
        report.ingress_preserved,
        "smallest-free-id allocation must hand the sender its old ingress back"
    );
    // Post-recovery service: steady deliveries over the new route, and the
    // dead link carries nothing more.
    let dead_tc_at_recovery = sim.link_usage(broken.0, broken.1).tc_symbols;
    let delivered_at_recovery = sim.log(dst).tc.len();
    sim.run(20_000);
    assert!(
        sim.log(dst).tc.len() - delivered_at_recovery > 40,
        "victim resumed full-rate delivery ({} new arrivals)",
        sim.log(dst).tc.len() - delivered_at_recovery
    );
    assert_eq!(
        sim.link_usage(broken.0, broken.1).tc_symbols,
        dead_tc_at_recovery,
        "no time-constrained traffic crosses the dead link after the re-route"
    );

    // The bystander never misses a deadline; the victim's misses are
    // confined to the outage (lost packets are lost, not late).
    assert_eq!(sim.log(far_dst).tc_deadline_misses(config.slot_bytes), 0);
    assert!(sim.log(far_dst).tc.len() > 60, "bystander unaffected");

    // The measured windows are finite and ordered: reprogramming three
    // tables is a small slice of the total outage.
    assert!(report.reroute_latency() > 0);
    assert!(report.reroute_latency() < report.violation_window());

    // Conservation still holds link-by-link, counting the blackholed
    // symbols as lost-to-fault.
    sim.check_conservation().unwrap();
    let stats = sim.fault_stats();
    assert_eq!(stats.link_down_events, 1);
    assert!(stats.symbols_lost > 0, "the outage blackholed in-flight symbols");
}

#[test]
fn channel_routed_around_a_dead_link_still_guarantees() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);

    // The direct row-0 links are "failed": pick a detour and reserve it.
    let dead = [(src, Direction::XPlus), (topo.node_at(1, 0), Direction::XPlus)];
    let detour = topo.route_avoiding(src, dst, &dead).unwrap();
    for hop in &dead {
        assert!(!detour_uses(&topo, src, &detour, *hop), "detour avoids dead links");
    }

    let mut manager = ChannelManager::new(&config);
    let channel = manager
        .establish_routed(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
            std::slice::from_ref(&detour),
            &mut sim,
        )
        .unwrap();

    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![0x44; config.tc_data_bytes()],
        )),
    );
    sim.run(50_000);

    let log = sim.log(dst);
    assert!(log.tc.len() > 120, "delivered {}", log.tc.len());
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
    // The dead links carried no time-constrained traffic.
    for (node, dir) in dead {
        assert_eq!(
            sim.link_usage(node, dir).tc_symbols,
            0,
            "dead link {node}/{dir} must stay silent"
        );
    }
    // The detour's first link carried all of it.
    assert!(sim.link_usage(src, detour[0]).tc_symbols > 0);
}

fn detour_uses(
    topo: &Topology,
    src: NodeId,
    route: &[Direction],
    link: (NodeId, Direction),
) -> bool {
    let nodes = topo.walk(src, route);
    nodes.iter().zip(route).any(|(&n, &d)| (n, d) == link)
}

#[test]
fn disconnected_failures_are_reported_not_mis_routed() {
    let topo = Topology::mesh(2, 1);
    let dead = [(topo.node_at(0, 0), Direction::XPlus)];
    assert!(topo.route_avoiding(topo.node_at(0, 0), topo.node_at(1, 0), &dead).is_none());
}
