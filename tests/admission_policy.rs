//! Integration: why the paper's admission control needs the full demand
//! criterion — a naive utilisation-only test admits channel sets whose
//! tight deadlines then miss on the real hardware model, while everything
//! the demand criterion admits is delivered on time.

use realtime_router::channels::{
    AdmissionPolicy, ChannelManager, ChannelRequest, ChannelSender, EstablishedChannel, TrafficSpec,
};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::tc::PeriodicTcSource;

/// Nine phase-aligned connections, all due within 3 slots of their
/// release, converging on the centre of a 3×3 mesh from four directions
/// (two channels each) plus a local channel. Utilisation is tiny
/// (period 100), but nine packets cannot clear one port inside the
/// deadline window.
fn offered(topo: &Topology) -> Vec<ChannelRequest> {
    let dst = topo.node_at(1, 1);
    let spec = TrafficSpec::periodic(100, 18);
    let mut requests = Vec::new();
    for (x, y) in [(0, 1), (2, 1), (1, 0), (1, 2)] {
        for _ in 0..2 {
            requests.push(ChannelRequest::unicast(topo.node_at(x, y), dst, spec, 6));
        }
    }
    requests.push(ChannelRequest::unicast(dst, dst, spec, 3));
    requests
}

fn run(policy: AdmissionPolicy) -> (usize, usize, usize) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);
    manager.set_policy(policy);

    let mut admitted: Vec<EstablishedChannel> = Vec::new();
    for request in offered(&topo) {
        if let Ok(ch) = manager.establish(&topo, request, &mut sim) {
            admitted.push(ch);
        }
    }
    for ch in &admitted {
        let src = ch.request.source;
        let sender = ChannelSender::new(
            ch,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                100,
                0,
                config.slot_bytes,
                vec![0x77; config.tc_data_bytes()],
            )),
        );
    }
    sim.run(60_000);

    let dst = topo.node_at(1, 1);
    let log = sim.log(dst);
    (admitted.len(), log.tc.len(), log.tc_deadline_misses(config.slot_bytes))
}

#[test]
fn demand_criterion_is_sound() {
    let (admitted, delivered, misses) = run(AdmissionPolicy::DemandCriterion);
    assert!(admitted >= 1, "something must be admissible");
    assert!(admitted < 9, "the demand test must reject part of the overload");
    assert!(delivered > 0);
    assert_eq!(misses, 0, "whatever the demand criterion admits is on time");
}

#[test]
fn utilization_only_is_unsound() {
    let (admitted, delivered, misses) = run(AdmissionPolicy::UtilizationOnly);
    assert_eq!(admitted, 9, "utilisation-only waves the whole overload through");
    assert!(delivered > 0);
    assert!(misses > 0, "the naive policy must produce deadline misses ({delivered} delivered)");
}
