//! Integration: table-driven multicast (§3.3) — one injected packet fans
//! out through the tree and reaches every destination by the deadline.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;

fn setup() -> (RouterConfig, Topology, Simulator<RealTimeRouter>, ChannelManager) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let manager = ChannelManager::new(&config);
    (config, topo, sim, manager)
}

#[test]
fn one_send_reaches_every_destination() {
    let (config, topo, mut sim, mut manager) = setup();
    let src = topo.node_at(0, 0);
    let dsts = vec![topo.node_at(3, 0), topo.node_at(1, 2), topo.node_at(3, 3)];
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::multicast(src, dsts.clone(), TrafficSpec::periodic(32, 18), 70),
            &mut sim,
        )
        .unwrap();

    let mut sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    for packet in sender.make_message(0, b"fan out") {
        sim.inject_tc(src, packet);
    }
    assert!(sim.run_until(20_000, |s| dsts.iter().all(|d| !s.log(*d).tc.is_empty())));
    for dst in &dsts {
        let (_, p) = &sim.log(*dst).tc[0];
        assert!(p.payload.starts_with(b"fan out"));
        assert_eq!(sim.log(*dst).tc_deadline_misses(config.slot_bytes), 0);
    }
    // The source transmitted exactly one copy per outgoing branch, and the
    // network duplicated further downstream: total source transmissions
    // equal the source hop's mask bit count.
    let src_tx: u64 = sim.chip(src).stats().tc_transmitted.iter().sum();
    let src_mask = channel.hop_at(src).unwrap().out_mask;
    assert_eq!(src_tx, u64::from(src_mask.count_ones()));
}

#[test]
fn multicast_shares_memory_slots_per_router() {
    let (config, topo, mut sim, mut manager) = setup();
    // Destinations straight east and straight north of the source: the
    // source router itself is the fork (x-first routing exhausts x before
    // y, so (2,0) forks +x and the (0,2) branch leaves +y at the source).
    let src = topo.node_at(0, 0);
    let dsts = vec![topo.node_at(2, 0), topo.node_at(0, 2)];
    let channel = manager
        .establish(
            &topo,
            ChannelRequest {
                source: src,
                destinations: dsts.clone(),
                spec: TrafficSpec::periodic(16, 18),
                deadline: 48,
            },
            &mut sim,
        )
        .unwrap();
    let fork = channel.hop_at(src).unwrap();
    assert_eq!(fork.out_mask.count_ones(), 2, "source forks to +x and +y");

    let mut sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    for packet in sender.make_message(0, b"shared slot") {
        sim.inject_tc(src, packet);
    }
    assert!(sim.run_until(20_000, |s| dsts.iter().all(|d| !s.log(*d).tc.is_empty())));
    // The fork held ONE memory slot for the packet even though two ports
    // transmitted it, and freed it after the last copy left.
    assert_eq!(sim.chip(src).memory_high_water(), 1);
    assert_eq!(sim.chip(src).memory_occupied(), 0);
}

#[test]
fn periodic_multicast_sustains_guarantees() {
    let (config, topo, mut sim, mut manager) = setup();
    let src = topo.node_at(1, 1);
    let dsts = vec![topo.node_at(3, 1), topo.node_at(1, 3), topo.node_at(0, 0)];
    let channel = manager
        .establish(
            &topo,
            ChannelRequest {
                source: src,
                destinations: dsts.clone(),
                spec: TrafficSpec::periodic(16, 18),
                deadline: 48,
            },
            &mut sim,
        )
        .unwrap();
    let mut sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    for k in 0..60u64 {
        let now = sim.now();
        for packet in sender.make_message(now, &[k as u8]) {
            sim.inject_tc(src, packet);
        }
        sim.run(16 * config.slot_bytes as u64);
    }
    sim.run(10_000);
    for dst in &dsts {
        let log = sim.log(*dst);
        assert_eq!(log.tc.len(), 60, "every copy of every message at {dst}");
        assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
    }
}
