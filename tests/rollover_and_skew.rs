//! Integration: the §4.3 clock machinery under stress — long runs crossing
//! many 8-bit clock wraps, and bounded per-node clock skew (§4.1).

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::workloads::tc::PeriodicTcSource;

fn run_chain(skews: &[u64], cycles: u64) -> (usize, usize, u64) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    for (i, node) in topo.nodes().enumerate() {
        sim.chip_mut(node).set_clock_skew(skews.get(i).copied().unwrap_or(0));
    }
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    let mut manager = ChannelManager::new(&config);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 42),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![5; config.tc_data_bytes()],
        )),
    );
    sim.run(cycles);
    let aliased: u64 = topo.nodes().map(|n| sim.chip(n).stats().aliased_keys).sum();
    (sim.log(dst).tc.len(), sim.log(dst).tc_deadline_misses(config.slot_bytes), aliased)
}

#[test]
fn guarantees_survive_many_clock_rollovers() {
    // 400 000 cycles = 20 000 slots ≈ 78 wraps of the 8-bit clock.
    let (delivered, misses, aliased) = run_chain(&[0, 0, 0], 400_000);
    assert!(delivered > 1_200, "delivered {delivered}");
    assert_eq!(misses, 0, "rollover must be transparent to guarantees");
    assert_eq!(aliased, 0, "no key aliasing for admitted traffic");
}

#[test]
fn small_bounded_skew_preserves_guarantees() {
    // Skews of a few slots, well below the admissible window.
    let (delivered, misses, _) = run_chain(&[0, 2, 1], 200_000);
    assert!(delivered > 600);
    assert_eq!(misses, 0, "bounded skew is absorbed by the delay bounds");
}

#[test]
fn skew_ahead_at_downstream_nodes_tightens_but_keeps_deadlines() {
    // A downstream clock running ahead makes packets look later than they
    // are (less laxity) — deliveries speed up, deadlines still hold.
    let (_, misses_base, _) = run_chain(&[0, 0, 0], 150_000);
    let (_, misses_skew, _) = run_chain(&[0, 3, 3], 150_000);
    assert_eq!(misses_base, 0);
    assert_eq!(misses_skew, 0);
}

#[test]
fn excessive_skew_is_detectable_via_aliasing_counters() {
    // A skew beyond half the clock range violates the §4.3 window: the
    // chip's aliasing counter exposes the misconfiguration.
    let (_, _, aliased) = run_chain(&[0, 200, 0], 100_000);
    assert!(aliased > 0, "skew past the half-range window must surface as aliased keys");
}
