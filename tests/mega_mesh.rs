//! The 256×256 (65 536-node) mega-mesh: `NodeId` boundary behaviour at the
//! `u16` extremes, CSR adjacency vs. the dense wiring table on irregular
//! topologies, and the struct-of-arrays memory-footprint guardrail.
//!
//! The paper's router targets "parallel signal-processing systems with
//! hundreds of processing nodes"; the struct-of-arrays simulator layout is
//! what lets the reproduction push two orders of magnitude past that on one
//! host. These tests pin the node-identifier arithmetic exactly at the edge
//! of the 16-bit space and keep the per-node footprint honest.

use proptest::prelude::*;
use realtime_router::core::{RealTimeRouter, RouterTemplate};
use realtime_router::mesh::{LinkTable, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{Direction, NodeId};

/// Builds an idle `width × height` simulator from one shared template —
/// the construction path the mega-mesh benches time.
fn idle_mesh(width: u16, height: u16) -> Simulator<RealTimeRouter> {
    let template = RouterTemplate::new(RouterConfig::default()).unwrap();
    Simulator::build(Topology::mesh(width, height), |_| {
        Ok::<_, std::convert::Infallible>(template.build())
    })
    .unwrap()
}

#[test]
fn node_ids_reach_the_u16_extremes() {
    let topo = Topology::mesh(256, 256);
    assert_eq!(topo.len(), 65_536);
    // The far corner is the last representable NodeId.
    assert_eq!(topo.node_at(255, 255), NodeId(65_535));
    assert_eq!(topo.coords(NodeId(65_535)), (255, 255));
    assert_eq!(topo.coords(NodeId(0)), (0, 0));
    // Every corner's wiring: exactly two links, pointing inward.
    for (x, y, wired, unwired) in [
        (0, 0, [Direction::XPlus, Direction::YPlus], [Direction::XMinus, Direction::YMinus]),
        (255, 0, [Direction::XMinus, Direction::YPlus], [Direction::XPlus, Direction::YMinus]),
        (0, 255, [Direction::XPlus, Direction::YMinus], [Direction::XMinus, Direction::YPlus]),
        (255, 255, [Direction::XMinus, Direction::YMinus], [Direction::XPlus, Direction::YPlus]),
    ] {
        let n = topo.node_at(x, y);
        for dir in wired {
            let end = topo.link_end(n, dir).expect("corner link inward");
            assert_eq!(end.dir, dir.opposite());
            assert_eq!(topo.link_end(end.node, end.dir).unwrap().node, n);
        }
        for dir in unwired {
            assert!(topo.link_end(n, dir).is_none());
        }
    }
    // node_at never overflows the u16 index arithmetic along the last row.
    for x in 0..256u16 {
        let n = topo.node_at(x, 255);
        assert_eq!(topo.coords(n), (x, 255));
    }
}

#[test]
fn be_offsets_span_the_i8_header_field() {
    let topo = Topology::mesh(256, 256);
    // 127 hops is the largest offset the Figure 3b header can carry.
    let src = topo.node_at(128, 255);
    let dst = topo.node_at(255, 255);
    assert_eq!(topo.be_offsets(src, dst), (127, 0));
    assert_eq!(topo.be_offsets(dst, src), (-127, 0));
    let down = topo.node_at(0, 127);
    assert_eq!(topo.be_offsets(topo.node_at(0, 0), down), (0, 127));
    // A route along both axes at the edge still walks to its destination.
    let route = topo.dor_route(topo.node_at(200, 200), topo.node_at(255, 255));
    assert_eq!(route.len(), 110);
    assert_eq!(*topo.walk(topo.node_at(200, 200), &route).last().unwrap(), topo.node_at(255, 255));
}

#[test]
fn mega_mesh_builds_and_ticks() {
    let mut sim = idle_mesh(256, 256);
    assert_eq!(sim.topology().len(), 65_536);
    // The full open mesh wires 2·(256·255·2) directed links.
    let expected_links = 2 * (256 * 255) * 2;
    let table = LinkTable::build(sim.topology(), 0);
    assert_eq!(table.len(), expected_links);
    // An idle mega-mesh leaps through time without executing node ticks.
    sim.run_leaping(1_000);
    assert_eq!(sim.now(), 1_000);
    assert!(
        sim.ticks_executed() <= 65_536,
        "idle leaping must not tick the mesh per cycle (executed {})",
        sim.ticks_executed()
    );
}

/// The footprint guardrail: an idle router costs ~4.4 KiB all in — the
/// 3.3 KiB chip struct (ports, stats, scheduler registers) plus I/O
/// staging, CSR link share, and event-core share, with *no* heap behind it
/// (packet memory, scheduler leaves, and port queues materialise on first
/// use, and the connection table and config are Arc-shared). The ceiling
/// pins that: the seed's eager layout sat several KiB of heap higher per
/// node. The bench reports the live number as a `bytes_per_node` column.
#[test]
fn bytes_per_node_stays_under_the_ceiling() {
    let sim = idle_mesh(64, 64);
    let idle = sim.bytes_per_node();
    assert!(idle > 0, "estimate must count the fixed arenas");
    assert!(idle < 5 * 1024, "idle mesh costs {idle} bytes/node, ceiling 5 KiB");

    // Driving the mesh materialises lazy state but must stay bounded too.
    let mut sim = rtr_bench::leaping::periodic_mesh_sized(64, 64, 512);
    sim.run_leaping(20_000);
    let driven = sim.bytes_per_node();
    assert!(driven < 8 * 1024, "driven mesh costs {driven} bytes/node, ceiling 8 KiB");
}

proptest! {
    /// On arbitrary irregular topologies (random meshes with random links
    /// torn out) the CSR adjacency agrees link-for-link with the dense
    /// wiring table in both directions: every wired `(node, dir)` appears
    /// exactly once with the right endpoint, and every feeder points back
    /// at the link that drives it.
    #[test]
    fn csr_agrees_with_dense_wiring(
        w in 1u16..12,
        h in 1u16..12,
        dead in proptest::collection::vec((0u16..144, 0usize..4), 0..40),
    ) {
        let dead: Vec<(NodeId, Direction)> = dead
            .into_iter()
            .map(|(n, d)| (NodeId(n % (w * h)), Direction::ALL[d]))
            .collect();
        let topo = Topology::mesh(w, h).without_links(&dead);
        let table = LinkTable::build(&topo, 0);

        let mut wired = 0usize;
        for node in topo.nodes() {
            for dir in Direction::ALL {
                match topo.link_end(node, dir) {
                    Some(end) => {
                        wired += 1;
                        let li = table
                            .out_index(node.index(), dir)
                            .expect("wired link present in CSR");
                        prop_assert_eq!(table.dir(li), dir);
                        prop_assert_eq!(table.dst(li).node, end.node);
                        prop_assert_eq!(table.dst(li).dir, end.dir);
                        prop_assert_eq!(table.owner_of(li), node);
                    }
                    None => prop_assert_eq!(table.out_index(node.index(), dir), None),
                }
            }
        }
        prop_assert_eq!(table.len(), wired, "CSR holds exactly the wired links");

        // Reverse map: each node's feeders are exactly the links that land
        // on it, and each names the link that drives the input port.
        let mut feeders = 0usize;
        for node in topo.nodes() {
            let (start, end) = table.in_bounds(node.index());
            feeders += end - start;
            for fi in start..end {
                let li = table.in_link(fi);
                prop_assert_eq!(table.dst(li).node, node);
                prop_assert_eq!(table.dst(li).dir, table.in_dir(fi));
            }
        }
        prop_assert_eq!(feeders, wired, "every link feeds exactly one input port");
    }
}
