//! Chaos: the scripted fault plane is deterministic across every drive
//! mode, and conservation still balances with loss columns included.
//!
//! A seeded [`FaultSchedule`] is part of the simulation's initial state,
//! so a mid-run link kill, a flaky regime, or a node crash must produce
//! byte-identical outcomes whether the mesh is stepped cycle-by-cycle,
//! leapt serially or in parallel over the event queue, or leapt under
//! scan quiescence — and the leaper must never leap *across* a fault
//! epoch (the clamp is load-bearing: a fault applied late would tick
//! routers against a stale topology).

use realtime_router::channels::establish::{EstablishedChannel, Hop};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::mesh::{FaultSchedule, NetworkReport, Quiescence, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, NodeId, Port};
use realtime_router::workloads::tc::PeriodicTcSource;

const DELAY: u32 = 6;

/// Adds a one-hop periodic TC channel from `(0, y)` to `(1, y)` by
/// programming the tables directly (no admission round-trip, so builds
/// stay cheap and identical).
fn add_channel(sim: &mut Simulator<RealTimeRouter>, y: u16, index: usize, period_slots: u64) {
    let config = RouterConfig::default();
    let topo = sim.topology().clone();
    let conn = ConnectionId(10 + index as u16);
    let src = topo.node_at(0, y);
    let dst = topo.node_at(1, y);
    sim.chip_mut(src)
        .apply_control(ControlCommand::SetConnection {
            incoming: conn,
            outgoing: conn,
            delay: DELAY,
            out_mask: Port::Dir(Direction::XPlus).mask(),
        })
        .unwrap();
    sim.chip_mut(dst)
        .apply_control(ControlCommand::SetConnection {
            incoming: conn,
            outgoing: conn,
            delay: DELAY,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
    let channel = EstablishedChannel {
        id: u64::from(conn.0),
        ingress: conn,
        depth: 2,
        guaranteed: 2 * DELAY,
        hops: vec![
            Hop {
                node: src,
                conn,
                out_conn: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
                buffers: 2,
            },
            Hop {
                node: dst,
                conn,
                out_conn: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
                buffers: 2,
            },
        ],
        request: ChannelRequest::unicast(
            src,
            dst,
            TrafficSpec::periodic(period_slots as u32, 18),
            2 * DELAY,
        ),
    };
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            period_slots,
            0,
            config.slot_bytes,
            vec![0xB0 + index as u8; config.tc_data_bytes()],
        )),
    );
}

/// The chaos scenario: a sparse 8×8 mesh (long quiet spans, so leaping
/// really leaps) with every fault kind landing mid-run, several of them
/// inside spans that would otherwise be leapt over.
fn build_chaos_mesh() -> Simulator<RealTimeRouter> {
    let config = RouterConfig::default();
    let mut sim =
        Simulator::build(Topology::mesh(8, 8), |_| RealTimeRouter::new(config.clone())).unwrap();
    sim.enable_gauge_sampling(50);
    // Row 5 runs dense (period 8) so the flaky regime sees enough packet
    // heads to both drop and corrupt; the rest stay sparse so the mesh
    // still has long quiet spans to leap.
    for (i, (y, period)) in [(0u16, 64u64), (2, 64), (5, 8), (7, 64)].into_iter().enumerate() {
        add_channel(&mut sim, y, i, period);
    }
    let topo = sim.topology().clone();
    let schedule = FaultSchedule::new()
        .with_seed(0xC4A05)
        .link_down(3_000, topo.node_at(0, 2), Direction::XPlus)
        .link_up(6_000, topo.node_at(0, 2), Direction::XPlus)
        .link_flaky(8_000, topo.node_at(0, 5), Direction::XPlus, 256, 128)
        .link_stable(12_500, topo.node_at(0, 5), Direction::XPlus)
        .node_crash(13_000, topo.node_at(1, 7))
        .node_restore(15_000, topo.node_at(1, 7));
    sim.set_fault_schedule(schedule);
    sim
}

const SPAN: u64 = 20_000;

fn fingerprint(sim: &Simulator<RealTimeRouter>) -> String {
    let mut out = String::new();
    for node in sim.topology().nodes() {
        let log = sim.log(node);
        out.push_str(&format!("{node}: tc {:?} be {:?}\n", log.tc, log.be));
    }
    out.push_str(&format!("faults {:?}\n", sim.fault_stats()));
    for node in sim.topology().nodes() {
        for dir in Direction::ALL {
            if sim.topology().link_end(node, dir).is_some() {
                out.push_str(&format!("{node}/{dir:?}: {:?}\n", sim.link_ledger(node, dir)));
            }
        }
    }
    out
}

#[test]
fn all_four_drive_modes_agree_under_chaos() {
    let mut stepped = build_chaos_mesh();
    stepped.run(SPAN);
    stepped.check_conservation().unwrap();
    let reference = fingerprint(&stepped);
    let reference_report =
        format!("{:?}", NetworkReport::capture(&stepped, RouterConfig::default().slot_bytes));

    let mut serial = build_chaos_mesh();
    serial.run_leaping(SPAN);
    serial.check_conservation().unwrap();
    assert_eq!(reference, fingerprint(&serial), "serial leaping diverged");
    assert!(
        serial.ticks_executed() * 2 < stepped.ticks_executed(),
        "the sparse chaos scenario must still leap: {} vs {} ticks",
        serial.ticks_executed(),
        stepped.ticks_executed()
    );

    let mut parallel = build_chaos_mesh();
    parallel.set_parallelism(4);
    parallel.run_leaping(SPAN);
    parallel.check_conservation().unwrap();
    assert_eq!(reference, fingerprint(&parallel), "parallel leaping diverged");

    let mut scanned = build_chaos_mesh();
    scanned.set_quiescence(Quiescence::Scan);
    scanned.run_leaping(SPAN);
    scanned.check_conservation().unwrap();
    assert_eq!(reference, fingerprint(&scanned), "scan quiescence diverged");

    // Full network reports agree too (the report holds per-router stats
    // and link usage, not drive-mode internals like tick counts).
    for sim in [&serial, &parallel, &scanned] {
        let report =
            format!("{:?}", NetworkReport::capture(sim, RouterConfig::default().slot_bytes));
        assert_eq!(reference_report, report, "network reports diverged");
    }

    // The chaos really happened: the outage blackholed symbols, the flaky
    // regime corrupted some, the crash aged arrivals into drops.
    let stats = stepped.fault_stats();
    assert_eq!(stats.link_down_events, 1);
    assert_eq!(stats.node_crash_events, 1);
    assert!(stats.symbols_lost > 0, "outage must lose symbols: {stats:?}");
    assert!(stats.symbols_corrupted > 0, "flaky regime must corrupt symbols: {stats:?}");
}

#[test]
fn faults_inside_quiet_spans_fire_at_their_exact_cycle() {
    // Nothing is scheduled anywhere near the fault: a lone periodic
    // channel sleeps 64 slots between packets, and the link kill lands
    // mid-slumber. The leaper must split its quiet span at the epoch (the
    // debug assert in `leap_to` would abort the test otherwise) and the
    // downed link must blackhole the very next head that touches it.
    let build = || {
        let config = RouterConfig::default();
        let mut sim =
            Simulator::build(Topology::mesh(4, 1), |_| RealTimeRouter::new(config.clone()))
                .unwrap();
        add_channel(&mut sim, 0, 0, 64);
        sim
    };
    let span = 12_000;
    let broken = (NodeId(0), Direction::XPlus);

    let mut stepped = build();
    stepped.schedule_fault(
        5_555,
        realtime_router::mesh::FaultKind::LinkDown { node: broken.0, dir: broken.1 },
    );
    stepped.run(span);

    let mut leaping = build();
    leaping.schedule_fault(
        5_555,
        realtime_router::mesh::FaultKind::LinkDown { node: broken.0, dir: broken.1 },
    );
    leaping.run_leaping(span);

    assert_eq!(fingerprint(&stepped), fingerprint(&leaping));
    assert!(
        leaping.ticks_executed() * 2 < stepped.ticks_executed(),
        "quiet spans on both sides of the fault must still be leapt: {} vs {}",
        leaping.ticks_executed(),
        stepped.ticks_executed()
    );
    assert_eq!(leaping.downed_links(), vec![broken]);
    // Deliveries stop after the kill: the last arrival predates the fault
    // plus one in-flight packet's worth of slack.
    let dst = leaping.topology().node_at(1, 0);
    let last = leaping.log(dst).tc.last().map(|(cycle, _)| *cycle).unwrap_or(0);
    assert!(last < 5_555 + 2_000, "no deliveries long after the kill (last {last})");
    let ledger = leaping.link_ledger(broken.0, broken.1);
    assert!(ledger.symbols_lost > 0, "the dead link blackholed traffic: {ledger:?}");
    leaping.check_conservation().unwrap();
}

#[test]
fn crash_and_restore_balance_the_ledger_in_every_mode() {
    // A node crash stops the chip dead: arrivals age past their delivery
    // cycle and are dropped-and-counted, credits deliver late, and the
    // restore aborts half-received packets (refunding their flit-buffer
    // credits). The conservation check must balance in all modes, with
    // the losses showing up in the fault columns rather than vanishing.
    let build = || {
        let config = RouterConfig::default();
        let mut sim =
            Simulator::build(Topology::mesh(4, 1), |_| RealTimeRouter::new(config.clone()))
                .unwrap();
        // Period 8: dense enough that symbols are mid-link when the
        // crash lands.
        add_channel(&mut sim, 0, 0, 8);
        let schedule =
            FaultSchedule::new().node_crash(2_003, NodeId(1)).node_restore(4_007, NodeId(1));
        sim.set_fault_schedule(schedule);
        sim
    };
    let span = 10_000;

    let mut stepped = build();
    stepped.run(span);
    stepped.check_conservation().unwrap();
    let reference = fingerprint(&stepped);

    type Configure = fn(&mut Simulator<RealTimeRouter>);
    let modes: [(&str, Configure); 3] = [
        ("serial", |_s| {}),
        ("parallel", |s| s.set_parallelism(3)),
        ("scan", |s| s.set_quiescence(Quiescence::Scan)),
    ];
    for (label, configure) in modes {
        let mut sim = build();
        configure(&mut sim);
        sim.run_leaping(span);
        sim.check_conservation().unwrap();
        assert_eq!(reference, fingerprint(&sim), "{label} diverged under crash/restore");
    }

    let stats = stepped.fault_stats();
    assert_eq!(stats.node_crash_events, 1);
    assert_eq!(stats.node_restore_events, 1);
    assert!(
        stats.late_arrivals_dropped > 0,
        "arrivals must age out while the node is dark: {stats:?}"
    );
    assert!(!stepped.is_crashed(NodeId(1)), "restored");
    // Service resumed after the restore.
    let dst = stepped.topology().node_at(1, 0);
    let after = stepped.log(dst).tc.iter().filter(|(cycle, _)| *cycle > 4_007).count();
    assert!(after > 20, "deliveries resumed after restore: {after}");
}
