//! Churn: the live control plane is deterministic across every drive
//! mode, recycled connection ids never collide with their past lives,
//! and teardown losses are ledgered rather than leaked.
//!
//! Establish/teardown requests land through
//! [`SignalingEngine`](realtime_router::channels::control_plane::SignalingEngine)
//! while the mesh runs: admission consults the live reservation books and
//! accepted channels' table writes are timed control ops, so a mid-run
//! establishment must produce byte-identical outcomes whether the mesh is
//! stepped cycle-by-cycle, leapt serially or in parallel, or leapt under
//! scan quiescence — and the leaper must never leap *across* a pending
//! table write (a late write would tick routers against stale tables).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use realtime_router::channels::control_plane::{SignalingEngine, TeardownStyle};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Quiescence, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::Direction;
use realtime_router::types::time::{cycle_to_slot, slot_to_cycle, Cycle};
use realtime_router::workloads::churn::{churn_schedule, ChurnConfig, WindowedSource};
use realtime_router::workloads::tc::PeriodicTcSource;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Stepped,
    Serial,
    Parallel,
    Scan,
}

fn configure(sim: &mut Simulator<RealTimeRouter>, mode: Mode) {
    match mode {
        Mode::Stepped | Mode::Serial => {}
        Mode::Parallel => sim.set_parallelism(4),
        Mode::Scan => sim.set_quiescence(Quiescence::Scan),
    }
}

fn advance(sim: &mut Simulator<RealTimeRouter>, mode: Mode, cycles: Cycle) {
    if cycles == 0 {
        return;
    }
    match mode {
        Mode::Stepped => sim.run(cycles),
        _ => sim.run_leaping(cycles),
    }
}

/// Everything observable about a finished run: per-node delivery logs,
/// control-op and signaling counters, and per-link conservation ledgers.
fn fingerprint(sim: &Simulator<RealTimeRouter>, engine: &SignalingEngine) -> String {
    let mut out = String::new();
    for node in sim.topology().nodes() {
        let log = sim.log(node);
        out.push_str(&format!("{node}: tc {:?} be {:?}\n", log.tc, log.be));
    }
    out.push_str(&format!("controls {:?}\n", sim.control_stats()));
    out.push_str(&format!("signaling {:?}\n", engine.stats()));
    for node in sim.topology().nodes() {
        for dir in Direction::ALL {
            if sim.topology().link_end(node, dir).is_some() {
                out.push_str(&format!("{node}/{dir:?}: {:?}\n", sim.link_ledger(node, dir)));
            }
        }
    }
    out
}

enum Action {
    Establish(usize),
    Teardown(u64, TeardownStyle),
}

/// Replays one seeded establish/teardown interleaving on a loaded 8×8
/// mesh under `mode` and returns the run's fingerprint plus the tick
/// count (so callers can assert leaping really leapt).
fn run_interleaving(seed: u64, arrivals: usize, mode: Mode) -> (String, u64) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(8, 8);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    configure(&mut sim, mode);
    let mut engine = SignalingEngine::new(&config);

    // A long-lived bystander keeps the mesh loaded: its reservations sit
    // in the books every churn admission runs against, and its deadline
    // must survive any interleaving.
    let bystander_dst = topo.node_at(7, 7);
    let request = ChannelRequest::unicast(
        topo.node_at(0, 0),
        bystander_dst,
        TrafficSpec::periodic(16, 18),
        96,
    );
    let ticket = engine.request_establish(&topo, request, &mut sim).unwrap();
    let sender = ChannelSender::new(
        &ticket.channel,
        sim.chip(topo.node_at(0, 0)).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        topo.node_at(0, 0),
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1,
            config.slot_bytes,
            vec![0x55; config.tc_data_bytes()],
        )),
    );

    let churn = ChurnConfig {
        seed,
        arrivals,
        mean_interarrival_slots: 16.0,
        mean_lifetime_slots: 160.0,
        min_lifetime_slots: 48,
    };
    let events = churn_schedule(&churn, &topo);

    let mut actions: Vec<Action> = Vec::new();
    let mut due: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::new();
    for (i, event) in events.iter().enumerate() {
        let at = slot_to_cycle(event.start_slot, config.slot_bytes).max(1);
        due.push(Reverse((at, actions.len())));
        actions.push(Action::Establish(i));
    }

    let mut last_clear = 0;
    while let Some(Reverse((at, seq))) = due.pop() {
        let gap = at.saturating_sub(sim.now());
        advance(&mut sim, mode, gap);
        match actions[seq] {
            Action::Establish(i) => {
                let event = events[i];
                let (sx, sy) = topo.coords(event.src);
                let (dx, dy) = topo.coords(event.dst);
                let dist = u32::from(sx.abs_diff(dx) + sy.abs_diff(dy));
                let request = ChannelRequest::unicast(
                    event.src,
                    event.dst,
                    TrafficSpec::periodic(8, 18),
                    6 * (dist + 1),
                );
                let Ok(ticket) = engine.request_establish(&topo, request, &mut sim) else {
                    continue;
                };
                let stop = slot_to_cycle(event.stop_slot(), config.slot_bytes);
                let style = if i % 2 == 0 { TeardownStyle::Abort } else { TeardownStyle::Drain };
                due.push(Reverse((stop.max(ticket.ready_at + 1), actions.len())));
                actions.push(Action::Teardown(ticket.channel.id, style));

                let sender = ChannelSender::new(
                    &ticket.channel,
                    sim.chip(event.src).clock(),
                    config.slot_bytes,
                    config.tc_data_bytes(),
                );
                let source = PeriodicTcSource::new(
                    sender,
                    8,
                    cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1,
                    config.slot_bytes,
                    vec![0x80 ^ i as u8; config.tc_data_bytes()],
                )
                .with_limit((event.lifetime_slots / 8).max(1));
                sim.add_source(
                    event.src,
                    Box::new(WindowedSource::new(source, ticket.ready_at, stop)),
                );
            }
            Action::Teardown(id, style) => {
                let ticket = engine.request_teardown(id, style, &mut sim).unwrap();
                last_clear = last_clear.max(ticket.cleared_at);
            }
        }
    }
    let tail = last_clear.saturating_sub(sim.now()) + 6_000;
    advance(&mut sim, mode, tail);

    sim.check_conservation().expect("churn losses must be ledgered, not leaked");
    assert_eq!(
        sim.log(bystander_dst).tc_deadline_misses(config.slot_bytes),
        0,
        "the admitted bystander must never miss under churn"
    );
    (fingerprint(&sim, &engine), sim.ticks_executed())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 3, // each case replays a full churn run in all four drive modes
        ..ProptestConfig::default()
    })]

    /// Random establish/teardown interleavings on a loaded mesh produce
    /// byte-identical delivery logs, control counters, and link ledgers
    /// in every drive mode.
    #[test]
    fn random_churn_interleavings_are_drive_mode_invariant(
        seed in any::<u64>(),
        arrivals in 6usize..12,
    ) {
        let (reference, _) = run_interleaving(seed, arrivals, Mode::Stepped);
        for mode in [Mode::Serial, Mode::Parallel, Mode::Scan] {
            let (fp, _) = run_interleaving(seed, arrivals, mode);
            prop_assert_eq!(&reference, &fp, "{:?} diverged for seed {:#x}", mode, seed);
        }
    }
}

#[test]
fn the_bench_churn_scenario_agrees_in_every_drive_mode() {
    use rtr_bench::churn::{run_churn, DriveMode};
    let reference = format!("{:?}", run_churn(DriveMode::Stepped));
    for mode in [DriveMode::SerialLeaping, DriveMode::ParallelLeaping, DriveMode::ScanQuiescence] {
        assert_eq!(reference, format!("{:?}", run_churn(mode)), "{mode:?} diverged");
    }
}

#[test]
fn table_writes_inside_quiet_spans_land_at_their_exact_cycle() {
    // Nothing is scheduled anywhere near the writes: the only resident
    // channel sleeps 256 slots between packets, and the establishment's
    // table writes are spread 1 500 cycles apart by an exaggerated write
    // cost, landing mid-slumber. The leaper must split its quiet span at
    // every write epoch (the debug assert in `leap_to` aborts the test
    // otherwise) and still leap the spans between them.
    let config = RouterConfig::default();
    let build = |mode: Mode| {
        let topo = Topology::mesh(4, 1);
        let mut sim =
            Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
        configure(&mut sim, mode);
        let mut engine = SignalingEngine::with_write_cost(&config, 1_500);
        let request = ChannelRequest::unicast(
            topo.node_at(0, 0),
            topo.node_at(1, 0),
            TrafficSpec::periodic(256, 18),
            2_048,
        );
        let ticket = engine.request_establish(&topo, request, &mut sim).unwrap();
        let sender = ChannelSender::new(
            &ticket.channel,
            sim.chip(topo.node_at(0, 0)).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            topo.node_at(0, 0),
            Box::new(PeriodicTcSource::new(
                sender,
                256,
                cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1,
                config.slot_bytes,
                vec![0xA5; config.tc_data_bytes()],
            )),
        );
        (sim, engine, topo)
    };
    let span = 40_000;

    let (mut stepped, engine, _) = build(Mode::Stepped);
    stepped.run(span);
    stepped.check_conservation().unwrap();
    let reference = fingerprint(&stepped, &engine);
    // Both writes landed even though the run started with empty tables.
    assert_eq!(stepped.control_stats().ops_applied, 2);
    assert_eq!(stepped.control_stats().ops_rejected, 0);

    for mode in [Mode::Serial, Mode::Parallel, Mode::Scan] {
        let (mut sim, engine, topo) = build(mode);
        sim.run_leaping(span);
        sim.check_conservation().unwrap();
        assert_eq!(reference, fingerprint(&sim, &engine), "{mode:?} diverged");
        assert!(
            sim.ticks_executed() * 2 < stepped.ticks_executed(),
            "{mode:?} must still leap the quiet spans between writes: {} vs {} ticks",
            sim.ticks_executed(),
            stepped.ticks_executed()
        );
        // The channel went live: the writes were applied, not skipped.
        assert!(!sim.log(topo.node_at(1, 0)).tc.is_empty(), "{mode:?} delivered nothing");
    }
}

#[test]
fn recycled_connection_ids_never_collide_with_their_predecessors() {
    // Exhaust a two-id space so the third establishment *must* reuse the
    // first channel's id. The generation-ordered allocator hands back the
    // least-recently-released id, and by the time it returns, every
    // in-flight packet from its previous life has been aborted into the
    // teardown ledger — none may be delivered onto the new channel.
    let config = RouterConfig { connections: 2, ..RouterConfig::default() };
    let topo = Topology::mesh(2, 1);
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(1, 0);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut engine = SignalingEngine::new(&config);

    let establish = |engine: &mut SignalingEngine,
                     sim: &mut Simulator<RealTimeRouter>,
                     payload: u8,
                     stop: Cycle| {
        let request = ChannelRequest::unicast(src, dst, TrafficSpec::periodic(4, 18), 64);
        let ticket = engine.request_establish(&topo, request, sim).unwrap();
        let sender = ChannelSender::new(
            &ticket.channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        let source = PeriodicTcSource::new(
            sender,
            2,
            cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1,
            config.slot_bytes,
            vec![payload; config.tc_data_bytes()],
        );
        sim.add_source(src, Box::new(WindowedSource::new(source, ticket.ready_at, stop)));
        ticket
    };

    // Life one of id A: dense traffic, torn down abruptly while its
    // source is still firing, so late injections hit the tombstone.
    let a = establish(&mut engine, &mut sim, 0xAA, 3_000);
    let a_id = a.channel.ingress;
    sim.run(2_000);
    engine.request_teardown(a.channel.id, TeardownStyle::Abort, &mut sim).unwrap();
    sim.run(1_000);

    // A fresh channel prefers the never-released id.
    let b = establish(&mut engine, &mut sim, 0xBB, 5_000);
    assert_ne!(b.channel.ingress, a_id, "a just-released id must go to the back of the queue");
    sim.run(2_000);
    engine.request_teardown(b.channel.id, TeardownStyle::Abort, &mut sim).unwrap();
    sim.run(1_000);

    // The id space is exhausted: the next establishment must recycle, and
    // the least-recently-released id is A's.
    let c = establish(&mut engine, &mut sim, 0xCC, 12_000);
    assert_eq!(c.channel.ingress, a_id, "recycling must pick the least-recently-released id");
    sim.run(6_000);

    // A's late injections were aborted into the ledger, not delivered.
    let aborted: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_aborted_teardown).sum();
    assert!(aborted > 0, "the abort teardown must have ledgered in-flight packets");
    sim.check_conservation().unwrap();
    // Every delivery on the recycled id belongs to its current life: no
    // 0xAA payload lands after C's tables went live.
    let stale = sim
        .log(dst)
        .tc
        .iter()
        .filter(|(cycle, p)| *cycle >= c.ready_at && p.payload.as_slice()[0] != 0xCC)
        .count();
    assert_eq!(stale, 0, "a recycled id delivered a predecessor's packet");
    let current = sim
        .log(dst)
        .tc
        .iter()
        .filter(|(_, p)| p.conn == a_id && p.payload.as_slice()[0] == 0xCC)
        .count();
    assert!(current > 0, "the recycled id must carry its new channel's traffic");
}

#[test]
fn drain_teardown_delivers_everything_abort_ledgers_the_rest() {
    let config = RouterConfig::default();
    let run = |style: TeardownStyle, stop: Cycle, teardown_at: Cycle| {
        let topo = Topology::mesh(4, 1);
        let src = topo.node_at(0, 0);
        let dst = topo.node_at(3, 0);
        let mut sim =
            Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
        let mut engine = SignalingEngine::new(&config);
        let request = ChannelRequest::unicast(src, dst, TrafficSpec::periodic(4, 18), 96);
        let ticket = engine.request_establish(&topo, request, &mut sim).unwrap();
        let sender = ChannelSender::new(
            &ticket.channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        let source = PeriodicTcSource::new(
            sender,
            4,
            cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1,
            config.slot_bytes,
            vec![0xD0; config.tc_data_bytes()],
        )
        .with_limit(16);
        sim.add_source(src, Box::new(WindowedSource::new(source, ticket.ready_at, stop)));
        sim.run(teardown_at);
        let teardown = engine.request_teardown(ticket.channel.id, style, &mut sim).unwrap();
        let tail = teardown.cleared_at.saturating_sub(sim.now()) + 4_000;
        sim.run(tail);
        sim.check_conservation().expect("teardown must keep the ledger balanced");
        let aborted: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_aborted_teardown).sum();
        (sim.log(dst).tc.len(), aborted, teardown.cleared_at)
    };

    // Drain: the clear waits out the guaranteed bound, so all 16 packets
    // land and nothing is aborted.
    let (delivered, aborted, cleared_at) = run(TeardownStyle::Drain, 1_800, 2_000);
    assert_eq!(delivered, 16, "a drained teardown must deliver every in-flight packet");
    assert_eq!(aborted, 0, "a drained teardown aborts nothing");
    assert!(cleared_at > 2_000, "the drain margin must defer the clear");

    // Abort mid-stream: the source is still firing when the tables clear,
    // so late packets hit the tombstone and are counted, and the
    // conservation check above proves they were ledgered rather than
    // leaked.
    let (delivered, aborted, _) = run(TeardownStyle::Abort, 4_000, 600);
    assert!(delivered < 16, "the abrupt clear must cut deliveries short: {delivered}");
    assert!(aborted > 0, "aborted packets must land in the teardown ledger");
}
