//! Integration: full channel lifecycle across the mesh — establishment,
//! traffic, guarantees, teardown, and capacity reuse.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::workloads::tc::PeriodicTcSource;

fn build(side: u16) -> (RouterConfig, Topology, Simulator<RealTimeRouter>, ChannelManager) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(side, side);
    let sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let manager = ChannelManager::new(&config);
    (config, topo, sim, manager)
}

#[test]
fn single_channel_end_to_end_guarantee() {
    let (config, topo, mut sim, mut manager) = build(4);
    let src = topo.node_at(0, 3);
    let dst = topo.node_at(3, 0);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 56),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![9; config.tc_data_bytes()],
        )),
    );
    sim.run(60_000);
    let log = sim.log(dst);
    assert!(log.tc.len() > 150, "delivered {}", log.tc.len());
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
    // All intermediate routers forwarded without drops.
    for node in topo.nodes() {
        assert_eq!(sim.chip(node).stats().tc_dropped(), 0);
        assert_eq!(sim.chip(node).stats().aliased_keys, 0);
    }
}

#[test]
fn many_channels_coexist_without_misses() {
    let (config, topo, mut sim, mut manager) = build(4);
    // A ring of channels around the mesh edge plus two diagonals.
    let pairs = [
        ((0u16, 0u16), (3u16, 0u16)),
        ((3, 0), (3, 3)),
        ((3, 3), (0, 3)),
        ((0, 3), (0, 0)),
        ((0, 0), (3, 3)),
        ((3, 0), (0, 3)),
        ((1, 1), (2, 2)),
        ((2, 1), (1, 2)),
    ];
    let mut channels = Vec::new();
    for (s, d) in pairs {
        let src = topo.node_at(s.0, s.1);
        let dst = topo.node_at(d.0, d.1);
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let channel = manager
            .establish(
                &topo,
                ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), depth * 7),
                &mut sim,
            )
            .unwrap();
        channels.push(channel);
    }
    for channel in &channels {
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                16,
                channel.id % 16,
                config.slot_bytes,
                vec![channel.id as u8; config.tc_data_bytes()],
            )),
        );
    }
    sim.run(80_000);
    let mut total = 0;
    for channel in &channels {
        let dst = channel.request.destinations[0];
        let log = sim.log(dst);
        assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
        total += log.tc.len();
    }
    assert!(total > 1500, "delivered {total}");
}

#[test]
fn teardown_frees_capacity_and_clears_tables() {
    let (_config, topo, mut sim, mut manager) = build(2);
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(1, 0);
    let spec = TrafficSpec::periodic(4, 18);
    let request = || ChannelRequest::unicast(src, dst, spec, 8);
    let a = manager.establish(&topo, request(), &mut sim).unwrap();
    let _b = manager.establish(&topo, request(), &mut sim).unwrap();
    assert!(manager.establish(&topo, request(), &mut sim).is_err());
    let a_conn = a.ingress;
    manager.teardown(a.id, &mut sim).unwrap();
    assert!(
        sim.chip(src).connection_table().lookup(a_conn).is_none(),
        "teardown clears the table entry"
    );
    // The freed capacity is available again, but the freed *identifier*
    // goes to the back of the generation-ordered reuse queue: a fresh
    // establishment prefers a never-released id, so a recycled id cannot
    // meet its predecessor's in-flight packets (tests/churn.rs pins the
    // forced-exhaustion case where reuse actually happens).
    let c = manager.establish(&topo, request(), &mut sim).unwrap();
    assert_ne!(c.ingress, a_conn, "freed identifier must not be reused while fresh ids remain");
}

#[test]
fn connection_ids_are_reused_across_disjoint_channels() {
    let (_config, topo, mut sim, mut manager) = build(4);
    // Two channels in disjoint regions can share numeric identifiers.
    let a = manager
        .establish(
            &topo,
            ChannelRequest::unicast(
                topo.node_at(0, 0),
                topo.node_at(1, 0),
                TrafficSpec::periodic(16, 18),
                16,
            ),
            &mut sim,
        )
        .unwrap();
    let b = manager
        .establish(
            &topo,
            ChannelRequest::unicast(
                topo.node_at(3, 3),
                topo.node_at(2, 3),
                TrafficSpec::periodic(16, 18),
                16,
            ),
            &mut sim,
        )
        .unwrap();
    assert_eq!(a.ingress, b.ingress, "identifiers are per-node, not global");
}
