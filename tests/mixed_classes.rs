//! Integration: the two traffic classes share links the way §3.2
//! prescribes — on-time time-constrained packets always win, best-effort
//! consumes exactly the excess, and neither starves the other.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::stats::LatencySummary;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::workloads::be::BackloggedBeSource;
use realtime_router::workloads::tc::BackloggedTcSource;

/// Builds a 2-node link with one TC channel (utilisation `1/i_min`) and a
/// saturating best-effort stream; returns (sim, config, dst).
fn shared_link(i_min: u32) -> (Simulator<RealTimeRouter>, RouterConfig, rtr_types::ids::NodeId) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(2, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(1, 0);
    let mut manager = ChannelManager::new(&config);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(i_min, 18),
                (2 * i_min).min(32),
            ),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(BackloggedTcSource::new(
            sender,
            i_min,
            3,
            config.slot_bytes,
            vec![1; config.tc_data_bytes()],
        )),
    );
    sim.add_source(src, Box::new(BackloggedBeSource::new(&topo, src, dst, 92, 2)));
    (sim, config, dst)
}

#[test]
fn tc_guarantees_hold_under_be_saturation() {
    let (mut sim, config, dst) = shared_link(8);
    sim.run(60_000);
    let log = sim.log(dst);
    assert!(log.tc.len() > 300);
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);
}

#[test]
fn be_receives_exactly_the_excess_bandwidth() {
    let (mut sim, _config, dst) = shared_link(8);
    sim.run(60_000);
    let log = sim.log(dst);
    let tc_bytes: u64 = log.tc.iter().map(|(_, p)| p.wire_len() as u64).sum();
    let be_bytes: u64 = log.be.iter().map(|(_, p)| p.wire_len() as u64).sum();
    let total = (tc_bytes + be_bytes) as f64 / 60_000.0;
    // TC reserved 1/8 of the link; BE takes most of the rest (bounded
    // below 7/8 by per-packet pipeline bubbles).
    assert!(
        (0.115..=0.135).contains(&(tc_bytes as f64 / 60_000.0)),
        "tc share {}",
        tc_bytes as f64 / 60_000.0
    );
    assert!(be_bytes as f64 / 60_000.0 > 0.6, "be share {}", be_bytes as f64 / 60_000.0);
    assert!(total > 0.75, "combined utilisation {total}");
}

#[test]
fn be_latency_grows_with_tc_load_but_never_starves() {
    let measure = |i_min: u32| {
        let (mut sim, _config, dst) = shared_link(i_min);
        sim.run(40_000);
        let lat = LatencySummary::of(&sim.log(dst).be_latencies());
        (lat.mean, sim.log(dst).be.len())
    };
    let (lat_light, n_light) = measure(32); // TC uses 1/32 of the link
    let (lat_heavy, n_heavy) = measure(4); // TC uses 1/4 of the link
    assert!(n_light > 0 && n_heavy > 0, "best-effort never starves");
    assert!(
        lat_heavy > lat_light,
        "heavier reserved load must slow best-effort: {lat_heavy} vs {lat_light}"
    );
    assert!(
        n_heavy as f64 > n_light as f64 * 0.5,
        "even at 1/4 reservation, best-effort keeps most of its throughput"
    );
}

#[test]
fn tc_packets_never_interleave_with_be_bytes_on_the_wire() {
    // The §3.2 property exercised at the delivery level: every TC packet's
    // 20 bytes occupy consecutive link cycles. Delivered payloads intact
    // implies framing held; additionally check packet count consistency.
    let (mut sim, config, dst) = shared_link(8);
    sim.run(30_000);
    for (_, p) in &sim.log(dst).tc {
        assert_eq!(p.payload.len(), config.tc_data_bytes());
        assert!(p.payload.iter().all(|&b| b == 1), "payload intact");
    }
    for (_, p) in &sim.log(dst).be {
        assert!(p.payload.iter().all(|&b| b == 0xBE), "BE payload intact");
    }
}
