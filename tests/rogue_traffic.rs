//! Robustness: garbage traffic cannot crash routers or break other
//! channels' guarantees.
//!
//! A rogue host blasts time-constrained packets with random connection
//! identifiers, random (often aliasing) timestamps, and wrong payload
//! sizes into the network while a legitimate admitted channel runs. The
//! invariants: no panics, every rogue packet is accounted for in the drop
//! counters or delivered harmlessly, and the legitimate channel never
//! misses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::source::FnSource;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::tc::PeriodicTcSource;

#[test]
fn rogue_injections_are_contained() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);

    // The legitimate channel crosses the rogue's node.
    let src = topo.node_at(0, 1);
    let dst = topo.node_at(2, 1);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 48),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![0x60; config.tc_data_bytes()],
        )),
    );

    // The rogue sits mid-route and injects garbage every few cycles.
    let rogue = topo.node_at(1, 1);
    let clock = sim.chip(rogue).clock();
    let _data_bytes = config.tc_data_bytes();
    let mut rng = StdRng::seed_from_u64(0xBAD);
    sim.add_source(
        rogue,
        Box::new(FnSource(move |now: u64, _node, io: &mut rtr_types::chip::ChipIo| {
            if now.is_multiple_of(7) && io.inject_tc.len() < 8 {
                let payload_len = *[0usize, 3, 18, 18, 18].get(rng.gen_range(0..5usize)).unwrap();
                io.inject_tc.push_back(TcPacket {
                    conn: ConnectionId(rng.gen_range(0..256)),
                    arrival: clock.wrap(rng.gen_range(0..100_000)),
                    payload: vec![0xEE; payload_len].into(),
                    trace: PacketTrace::default(),
                });
            }
        })),
    );

    sim.run(100_000);

    // The legitimate channel is untouched.
    let log = sim.log(dst);
    assert!(log.tc.len() > 280, "delivered {}", log.tc.len());
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);

    // Every rogue packet is accounted for: malformed or unknown-connection
    // drops at the rogue's own router (garbage conn ids may rarely hit the
    // legitimate entry installed there and be forwarded — those appear as
    // deliveries or downstream drops, never as corruption).
    let stats = sim.chip(rogue).stats();
    assert!(stats.tc_malformed > 0, "wrong-size payloads rejected");
    assert!(stats.tc_dropped_no_conn > 0, "unknown connections dropped");
    let injected_attempts = stats.tc_injected + stats.tc_malformed;
    // The injection port drains one packet per 20-cycle slot, so ~5 000
    // attempts reach the router over 100 000 cycles.
    assert!(injected_attempts > 3_000, "the rogue really was blasting: {injected_attempts}");
    // Memory never leaks slots.
    for node in topo.nodes() {
        let chip = sim.chip(node);
        assert!(chip.memory_occupied() <= chip.config().packet_slots);
    }
}
