//! Robustness: garbage traffic cannot crash routers or break other
//! channels' guarantees.
//!
//! A rogue host blasts time-constrained packets with random connection
//! identifiers, random (often aliasing) timestamps, and wrong payload
//! sizes into the network while a legitimate admitted channel runs. The
//! invariants: no panics, every rogue packet is accounted for in the drop
//! counters or delivered harmlessly, and the legitimate channel never
//! misses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::source::FnSource;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::tc::PeriodicTcSource;

#[test]
fn rogue_injections_are_contained() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);

    // The legitimate channel crosses the rogue's node.
    let src = topo.node_at(0, 1);
    let dst = topo.node_at(2, 1);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 48),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![0x60; config.tc_data_bytes()],
        )),
    );

    // The rogue sits mid-route and injects garbage every few cycles.
    let rogue = topo.node_at(1, 1);
    let clock = sim.chip(rogue).clock();
    let _data_bytes = config.tc_data_bytes();
    let mut rng = StdRng::seed_from_u64(0xBAD);
    sim.add_source(
        rogue,
        Box::new(FnSource(move |now: u64, _node, io: &mut rtr_types::chip::ChipIo| {
            if now.is_multiple_of(7) && io.inject_tc.len() < 8 {
                let payload_len = *[0usize, 3, 18, 18, 18].get(rng.gen_range(0..5usize)).unwrap();
                io.inject_tc.push_back(TcPacket {
                    conn: ConnectionId(rng.gen_range(0..256)),
                    arrival: clock.wrap(rng.gen_range(0..100_000)),
                    payload: vec![0xEE; payload_len].into(),
                    trace: PacketTrace::default(),
                });
            }
        })),
    );

    sim.run(100_000);

    // The legitimate channel is untouched.
    let log = sim.log(dst);
    assert!(log.tc.len() > 280, "delivered {}", log.tc.len());
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);

    // Every rogue packet is accounted for: malformed or unknown-connection
    // drops at the rogue's own router (garbage conn ids may rarely hit the
    // legitimate entry installed there and be forwarded — those appear as
    // deliveries or downstream drops, never as corruption).
    let stats = sim.chip(rogue).stats();
    assert!(stats.tc_malformed > 0, "wrong-size payloads rejected");
    assert!(stats.tc_dropped_no_conn > 0, "unknown connections dropped");
    let injected_attempts = stats.tc_injected + stats.tc_malformed;
    // The injection port drains one packet per 20-cycle slot, so ~5 000
    // attempts reach the router over 100 000 cycles.
    assert!(injected_attempts > 3_000, "the rogue really was blasting: {injected_attempts}");
    // Memory never leaks slots.
    for node in topo.nodes() {
        let chip = sim.chip(node);
        assert!(chip.memory_occupied() <= chip.config().packet_slots);
    }
}

#[test]
fn over_rate_source_is_regulated_and_cannot_starve_a_well_behaved_channel() {
    // A host violates its own traffic contract: it declared one message
    // every 16 slots but sends every 4. The logical-arrival recurrence
    // ℓ = max(ℓ_prev + I_min, t) stamps the excess further and further
    // into the future, so it travels as *early* traffic: a
    // work-conserving router may forward it in otherwise-idle slots (or
    // park it in the channel's own reserved buffers until its stamp),
    // but it can never claim another channel's reserved slots. The
    // invariant under test is that a co-resident well-behaved channel
    // sharing both links keeps its guarantee in full while the cheater
    // blasts at 4x.
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);

    let src = topo.node_at(0, 0);
    let greedy_dst = topo.node_at(2, 0);
    let honest_dst = topo.node_at(2, 1);
    // Both channels leave the same source and share the two row-0 links
    // (dimension-order: the honest route turns south only at the last
    // column).
    let greedy = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, greedy_dst, TrafficSpec::periodic(16, 18), 60),
            &mut sim,
        )
        .unwrap();
    let honest = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, honest_dst, TrafficSpec::periodic(16, 18), 80),
            &mut sim,
        )
        .unwrap();

    let greedy_sender = ChannelSender::new(
        &greedy,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    // Period 4 on a contract of 16: four times the declared rate.
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            greedy_sender,
            4,
            0,
            config.slot_bytes,
            vec![0x6E; config.tc_data_bytes()],
        )),
    );
    let honest_sender = ChannelSender::new(
        &honest,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            honest_sender,
            16,
            7,
            config.slot_bytes,
            vec![0x61; config.tc_data_bytes()],
        )),
    );

    sim.run(60_000);

    // The honest channel keeps its guarantee in full.
    let honest_log = sim.log(honest_dst);
    assert!(honest_log.tc.len() > 150, "honest delivered {}", honest_log.tc.len());
    assert_eq!(honest_log.tc_deadline_misses(config.slot_bytes), 0);

    // The greedy channel's deliveries are early, never late: whatever the
    // mesh chose to carry met the stamps the contract recurrence issued.
    let greedy_log = sim.log(greedy_dst);
    assert!(greedy_log.tc.len() > 150, "greedy delivered {}", greedy_log.tc.len());
    assert_eq!(greedy_log.tc_deadline_misses(config.slot_bytes), 0);

    // The mesh is work-conserving about the excess: far-future stamps
    // alias into the §4.3 wrapped clock window (the paper assumes policed
    // entry — `PolicedSender` is the designed countermeasure), so the
    // cheater's packets travel in slack slots at roughly the send rate
    // rather than being queued for hours. What matters is that this slack
    // service never displaced the honest channel's reserved slots, which
    // the zero-miss assertion above already proves at full blast.
    assert!(
        greedy_log.tc.len() > 600,
        "slack bandwidth carried the aliased excess: {}",
        greedy_log.tc.len()
    );
    for node in topo.nodes() {
        let chip = sim.chip(node);
        assert!(chip.memory_occupied() <= chip.config().packet_slots);
    }
}

#[test]
fn byzantine_neighbor_credits_cannot_corrupt_or_starve_the_tc_class() {
    // A compromised router lies to its upstream neighbour: it manufactures
    // best-effort flow-control credits it never earned, inviting the
    // neighbour to overrun its input buffer. The overflow must be absorbed
    // (dropped and counted) by the fault-tolerant ingest path, and the
    // time-constrained class — whose bandwidth is reserved, not
    // credit-governed — must keep every guarantee.
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);

    let src = topo.node_at(0, 0);
    let liar = topo.node_at(1, 0);
    let dst = topo.node_at(2, 0);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
            &mut sim,
        )
        .unwrap();
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            16,
            0,
            config.slot_bytes,
            vec![0x42; config.tc_data_bytes()],
        )),
    );

    // A best-effort flood keeps the upstream transmitter busy enough for
    // the bogus credits to matter.
    let (bx, by) = topo.be_offsets(src, dst);
    sim.add_source(
        src,
        Box::new(FnSource(move |_now: u64, node, io: &mut rtr_types::chip::ChipIo| {
            if io.inject_be.len() < 4 {
                io.inject_be.push_back(BePacket::new(
                    bx,
                    by,
                    vec![0xBE; 48],
                    PacketTrace { source: node, injected_at: 0, ..PacketTrace::default() },
                ));
            }
        })),
    );

    // The liar duplicates credits on its upstream-facing input port every
    // cycle, far beyond anything it actually freed.
    let upstream_port = Port::Dir(Direction::XMinus).index();
    sim.add_source(
        liar,
        Box::new(FnSource(move |_now: u64, _node, io: &mut rtr_types::chip::ChipIo| {
            io.credit_out[upstream_port] += 2;
        })),
    );

    sim.run(40_000);

    // The reserved class never misses, byzantine credits or not.
    let log = sim.log(dst);
    assert!(log.tc.len() > 100, "tc delivered {}", log.tc.len());
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);

    // The invited overrun really happened and was absorbed as counted
    // drops at the liar's ingest, not a crash and not corruption.
    let liar_stats = sim.chip(liar).stats();
    assert!(
        liar_stats.be_dropped_faulty > 0 || liar_stats.be_truncated > 0,
        "the overrun must surface in the tolerant-ingest counters"
    );
    // Best-effort service degrades but the mesh keeps forwarding; nothing
    // leaks router memory.
    assert!(sim.log(dst).be.len() > 10, "be still flows: {}", sim.log(dst).be.len());
    for node in topo.nodes() {
        let chip = sim.chip(node);
        assert!(chip.memory_occupied() <= chip.config().packet_slots);
    }
}
