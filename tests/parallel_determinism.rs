//! Integration: parallel chip ticking is bit-for-bit deterministic.
//!
//! Within a cycle every chip touches only its own state and its own
//! [`ChipIo`] bundle, so distributing the tick phase over the persistent
//! worker pool must not change a single delivered byte. These tests drive
//! a loaded, seeded 8×8 mesh (time-constrained channels plus best-effort
//! background traffic at every node) serially and across worker counts
//! {1, 2, 4, 7} — including a mid-run parallelism change — comparing every
//! node's delivery log and the full network report, and check that the
//! pool's threads are joined when the simulator is dropped.
//!
//! [`ChipIo`]: realtime_router::types::chip::ChipIo

use realtime_router::channels::establish::{EstablishedChannel, Hop};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, Port};
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

const PERIOD: u32 = 8;
const DELAY: u32 = 6;

/// Serialises the tests in this binary. The thread-census test counts the
/// pool's worker threads process-wide via `/proc`, so no other test may be
/// spinning a pool up or down while it reads.
static PROCESS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialised() -> std::sync::MutexGuard<'static, ()> {
    PROCESS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counts this process's live pool worker threads by kernel thread name
/// (`rtr-mesh-worker-*`, truncated by the 15-byte `comm` limit).
fn pool_worker_threads() -> usize {
    std::fs::read_dir("/proc/self/task")
        .expect("procfs task directory")
        .filter(|entry| {
            let Ok(entry) = entry else { return false };
            std::fs::read_to_string(entry.path().join("comm"))
                .is_ok_and(|name| name.trim_end().starts_with("rtr-mesh-worker"))
        })
        .count()
}

/// Per-node delivery logs plus the full network report, rendered to owned
/// strings so runs can be compared after the simulators are gone.
fn fingerprint(sim: &Simulator<RealTimeRouter>, slot_bytes: usize) -> (Vec<String>, String) {
    let logs = sim
        .topology()
        .nodes()
        .map(|node| format!("{:?}|{:?}", sim.log(node).tc, sim.log(node).be))
        .collect();
    (logs, format!("{:?}", NetworkReport::capture(sim, slot_bytes)))
}

/// Builds the reference workload: four one-hop TC channels along the west
/// edge and a seeded Bernoulli BE source at every node. Every run of this
/// function produces an identical simulator apart from the worker count.
fn build(workers: usize) -> Simulator<RealTimeRouter> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(8, 8);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    sim.set_parallelism(workers);
    sim.enable_gauge_sampling(50);

    for (i, y) in [0u16, 2, 5, 7].into_iter().enumerate() {
        let conn = ConnectionId(10 + i as u16);
        let src = topo.node_at(0, y);
        let dst = topo.node_at(1, y);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let channel = EstablishedChannel {
            id: u64::from(conn.0),
            ingress: conn,
            depth: 2,
            guaranteed: 2 * DELAY,
            hops: vec![
                Hop {
                    node: src,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Dir(Direction::XPlus).mask(),
                    buffers: 2,
                },
                Hop {
                    node: dst,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Local.mask(),
                    buffers: 2,
                },
            ],
            request: ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(PERIOD, 18),
                2 * DELAY,
            ),
        };
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(PERIOD),
                0,
                config.slot_bytes,
                vec![0xA0 + i as u8; config.tc_data_bytes()],
            )),
        );
    }

    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.05,
                    SizeDist::Fixed(16),
                    0xC0FF_EE00 ^ u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
    sim
}

#[test]
fn parallel_mesh_stepping_is_deterministic() {
    let _guard = serialised();
    let cycles = 4_000;
    let config = RouterConfig::default();

    let mut serial = build(1);
    serial.run(cycles);

    let mut parallel = build(4);
    assert_eq!(parallel.parallelism(), 4);
    parallel.run_parallel(cycles);

    // Byte-identical delivery logs at every node: same packets, same
    // payload bytes, same delivery cycles, same order.
    let mut tc_total = 0;
    let mut be_total = 0;
    for node in serial.topology().nodes() {
        let (s, p) = (serial.log(node), parallel.log(node));
        assert_eq!(s.tc, p.tc, "TC deliveries diverged at {node}");
        assert_eq!(s.be, p.be, "BE deliveries diverged at {node}");
        tc_total += s.tc.len();
        be_total += s.be.len();
    }
    // 4000 cycles = 200 slots = 25 messages per period-8 channel.
    assert!(tc_total >= 4 * 20, "TC load too light to trust: {tc_total}");
    assert!(be_total > 500, "BE load too light to trust: {be_total}");

    // Identical network reports, occupancy time series included. The
    // report has float fields without `PartialEq` across the board, so
    // compare the exhaustive debug rendering.
    let s = format!("{:?}", NetworkReport::capture(&serial, config.slot_bytes));
    let p = format!("{:?}", NetworkReport::capture(&parallel, config.slot_bytes));
    assert_eq!(s, p, "network reports diverged between serial and parallel runs");
}

#[test]
fn pool_stepping_matches_serial_at_every_worker_count() {
    let _guard = serialised();
    let cycles = 4_000;
    let slot_bytes = RouterConfig::default().slot_bytes;

    let mut serial = build(1);
    serial.run(cycles);
    let (serial_logs, serial_report) = fingerprint(&serial, slot_bytes);

    for workers in [1, 2, 4, 7] {
        let mut sim = build(workers);
        sim.run_parallel(cycles);
        let (logs, report) = fingerprint(&sim, slot_bytes);
        for (node, (s, p)) in serial_logs.iter().zip(&logs).enumerate() {
            assert_eq!(s, p, "deliveries diverged at node {node} with {workers} workers");
        }
        assert_eq!(
            serial_report, report,
            "network report diverged from serial with {workers} workers"
        );
    }
}

#[test]
fn mid_run_parallelism_change_is_deterministic() {
    let _guard = serialised();
    let slot_bytes = RouterConfig::default().slot_bytes;

    let mut serial = build(1);
    serial.run(4_000);
    let reference = fingerprint(&serial, slot_bytes);

    // Resize the pool twice mid-flight; the chunk hand-off must re-bucket
    // without disturbing a single delivery.
    let mut sim = build(2);
    sim.run_parallel(1_500);
    sim.set_parallelism(5);
    sim.run_parallel(1_000);
    sim.set_parallelism(3);
    sim.run_parallel(1_500);
    assert_eq!(
        fingerprint(&sim, slot_bytes),
        reference,
        "mid-run parallelism changes altered observable behaviour"
    );
}

#[test]
fn dropping_the_simulator_joins_its_pool_threads() {
    let _guard = serialised();
    let before = pool_worker_threads();
    {
        let mut sim = build(4);
        sim.run_parallel(50);
        assert!(
            pool_worker_threads() >= before + 3,
            "a 4-way simulator should keep 3 pool workers parked between steps"
        );
    }
    assert_eq!(pool_worker_threads(), before, "simulator drop leaked pool worker threads");
}
