//! Integration: parallel chip ticking is bit-for-bit deterministic.
//!
//! Within a cycle every chip touches only its own state and its own
//! [`ChipIo`] bundle, so distributing the tick phase over worker threads
//! must not change a single delivered byte. This test drives a loaded,
//! seeded 8×8 mesh (time-constrained channels plus best-effort background
//! traffic at every node) serially and with four workers, then compares
//! every node's delivery log and the full network report.
//!
//! [`ChipIo`]: realtime_router::types::chip::ChipIo

use realtime_router::channels::establish::{EstablishedChannel, Hop};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, Port};
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

const PERIOD: u32 = 8;
const DELAY: u32 = 6;

/// Builds the reference workload: four one-hop TC channels along the west
/// edge and a seeded Bernoulli BE source at every node. Every run of this
/// function produces an identical simulator apart from the worker count.
fn build(workers: usize) -> Simulator<RealTimeRouter> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(8, 8);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    sim.set_parallelism(workers);
    sim.enable_gauge_sampling(50);

    for (i, y) in [0u16, 2, 5, 7].into_iter().enumerate() {
        let conn = ConnectionId(10 + i as u16);
        let src = topo.node_at(0, y);
        let dst = topo.node_at(1, y);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let channel = EstablishedChannel {
            id: u64::from(conn.0),
            ingress: conn,
            depth: 2,
            guaranteed: 2 * DELAY,
            hops: vec![
                Hop {
                    node: src,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Dir(Direction::XPlus).mask(),
                    buffers: 2,
                },
                Hop {
                    node: dst,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Local.mask(),
                    buffers: 2,
                },
            ],
            request: ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(PERIOD, 18),
                2 * DELAY,
            ),
        };
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(PERIOD),
                0,
                config.slot_bytes,
                vec![0xA0 + i as u8; config.tc_data_bytes()],
            )),
        );
    }

    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.05,
                    SizeDist::Fixed(16),
                    0xC0FF_EE00 ^ u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
    sim
}

#[test]
fn parallel_mesh_stepping_is_deterministic() {
    let cycles = 4_000;
    let config = RouterConfig::default();

    let mut serial = build(1);
    serial.run(cycles);

    let mut parallel = build(4);
    assert_eq!(parallel.parallelism(), 4);
    parallel.run_parallel(cycles);

    // Byte-identical delivery logs at every node: same packets, same
    // payload bytes, same delivery cycles, same order.
    let mut tc_total = 0;
    let mut be_total = 0;
    for node in serial.topology().nodes() {
        let (s, p) = (serial.log(node), parallel.log(node));
        assert_eq!(s.tc, p.tc, "TC deliveries diverged at {node}");
        assert_eq!(s.be, p.be, "BE deliveries diverged at {node}");
        tc_total += s.tc.len();
        be_total += s.be.len();
    }
    // 4000 cycles = 200 slots = 25 messages per period-8 channel.
    assert!(tc_total >= 4 * 20, "TC load too light to trust: {tc_total}");
    assert!(be_total > 500, "BE load too light to trust: {be_total}");

    // Identical network reports, occupancy time series included. The
    // report has float fields without `PartialEq` across the board, so
    // compare the exhaustive debug rendering.
    let s = format!("{:?}", NetworkReport::capture(&serial, config.slot_bytes));
    let p = format!("{:?}", NetworkReport::capture(&parallel, config.slot_bytes));
    assert_eq!(s, p, "network reports diverged between serial and parallel runs");
}
