//! Integration: the word-level control interface (Table 3) drives real
//! traffic — programming a route through raw register writes only.

use realtime_router::core::{ControlReg, RealTimeRouter};
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, NodeId, Port};
use realtime_router::types::packet::{PacketTrace, TcPacket};

#[test]
fn word_level_writes_program_a_working_route() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(2, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = NodeId(0);
    let dst = topo.node_at(1, 0);

    // Source: conn 5 → +x as conn 9, d = 6 — the four-write sequence.
    let chip = sim.chip_mut(src);
    chip.control_write(ControlReg::OutConn, 9).unwrap();
    chip.control_write(ControlReg::Delay, 6).unwrap();
    chip.control_write(ControlReg::PortMask, u16::from(Port::Dir(Direction::XPlus).mask()))
        .unwrap();
    chip.control_write(ControlReg::InConnCommit, 5).unwrap();
    // Horizon for all ports — the two-write sequence.
    chip.control_write(ControlReg::HorizonMask, 0b1_1111).unwrap();
    chip.control_write(ControlReg::HorizonCommit, 4).unwrap();
    assert_eq!(chip.horizon(Port::Dir(Direction::XPlus)), 4);

    // Destination: conn 9 → reception, d = 6.
    let chip = sim.chip_mut(dst);
    chip.control_write(ControlReg::OutConn, 9).unwrap();
    chip.control_write(ControlReg::Delay, 6).unwrap();
    chip.control_write(ControlReg::PortMask, u16::from(Port::Local.mask())).unwrap();
    chip.control_write(ControlReg::InConnCommit, 9).unwrap();

    let clock = sim.chip(src).clock();
    sim.inject_tc(
        src,
        TcPacket {
            conn: ConnectionId(5),
            arrival: clock.wrap(0),
            payload: vec![0xAD; config.tc_data_bytes()].into(),
            trace: PacketTrace { deadline: 12, ..PacketTrace::default() },
        },
    );
    assert!(sim.run_until(5_000, |s| !s.log(dst).tc.is_empty()));
    assert_eq!(sim.log(dst).tc_deadline_misses(config.slot_bytes), 0);
}

#[test]
fn table_rewrite_redirects_in_flight_connections() {
    // Reprogramming an entry between packets changes the route — the
    // "protocol software can edit this table" behaviour of §3.3.
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = NodeId(0);
    let near = topo.node_at(1, 0);
    let far = topo.node_at(2, 0);
    use realtime_router::core::ControlCommand;

    // Initially: conn 1 delivers at the near node.
    sim.chip_mut(src)
        .apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 6,
            out_mask: Port::Dir(Direction::XPlus).mask(),
        })
        .unwrap();
    sim.chip_mut(near)
        .apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 6,
            out_mask: Port::Local.mask(),
        })
        .unwrap();

    let clock = sim.chip(src).clock();
    let packet = |slot: u64| TcPacket {
        conn: ConnectionId(1),
        arrival: clock.wrap(slot),
        payload: vec![1; config.tc_data_bytes()].into(),
        trace: PacketTrace::default(),
    };
    sim.inject_tc(src, packet(0));
    assert!(sim.run_until(5_000, |s| !s.log(near).tc.is_empty()));

    // Rewrite the near node: forward to the far node instead.
    sim.chip_mut(near)
        .apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 6,
            out_mask: Port::Dir(Direction::XPlus).mask(),
        })
        .unwrap();
    sim.chip_mut(far)
        .apply_control(ControlCommand::SetConnection {
            incoming: ConnectionId(1),
            outgoing: ConnectionId(1),
            delay: 6,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
    let t = sim.now() / config.slot_bytes as u64;
    sim.inject_tc(src, packet(t));
    assert!(sim.run_until(5_000, |s| !s.log(far).tc.is_empty()));
    assert_eq!(sim.log(near).tc.len(), 1, "no further near deliveries");
}

#[test]
fn word_level_plane_establishment_matches_typed() {
    // Establish the same channel twice — once through the typed control
    // plane, once through the raw pin protocol — and compare the tables.
    use realtime_router::channels::{ChannelManager, ChannelRequest, TrafficSpec, WordLevelPlane};
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let request =
        || ChannelRequest::unicast(NodeId(0), NodeId(2), TrafficSpec::periodic(16, 18), 30);

    let mut typed_sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut m1 = ChannelManager::new(&config);
    let a = m1.establish(&topo, request(), &mut typed_sim).unwrap();

    let mut word_sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut m2 = ChannelManager::new(&config);
    let b = {
        let mut plane = WordLevelPlane(&mut word_sim);
        m2.establish(&topo, request(), &mut plane).unwrap()
    };
    assert_eq!(a.hops, b.hops, "identical plans");
    for hop in &a.hops {
        assert_eq!(
            typed_sim.chip(hop.node).connection_table().lookup(hop.conn),
            word_sim.chip(hop.node).connection_table().lookup(hop.conn),
            "identical programmed tables at {}",
            hop.node
        );
    }
    // And the word-programmed network actually delivers.
    let clock = word_sim.chip(NodeId(0)).clock();
    word_sim.inject_tc(
        NodeId(0),
        TcPacket {
            conn: b.ingress,
            arrival: clock.wrap(0),
            payload: vec![1; config.tc_data_bytes()].into(),
            trace: PacketTrace { deadline: 30, ..PacketTrace::default() },
        },
    );
    assert!(word_sim.run_until(5_000, |s| !s.log(NodeId(2)).tc.is_empty()));
    assert_eq!(word_sim.log(NodeId(2)).tc_deadline_misses(config.slot_bytes), 0);
}

#[test]
fn unprogrammed_connections_drop_cleanly_everywhere() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(2, 2);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let clock = sim.chip(NodeId(0)).clock();
    for node in topo.nodes() {
        sim.inject_tc(
            node,
            TcPacket {
                conn: ConnectionId(77),
                arrival: clock.wrap(0),
                payload: vec![0; config.tc_data_bytes()].into(),
                trace: PacketTrace::default(),
            },
        );
    }
    sim.run(3_000);
    for node in topo.nodes() {
        assert_eq!(sim.chip(node).stats().tc_dropped_no_conn, 1);
        assert!(sim.log(node).tc.is_empty());
        assert_eq!(sim.chip(node).memory_occupied(), 0, "drops must not leak slots");
    }
}
