//! Integration: the simulator's structured symbols are losslessly
//! representable in the paper's exact wire formats (Figure 3) — i.e. the
//! simulation never smuggles information a real chip would not have.

use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;

#[test]
fn delivered_tc_packets_survive_a_wire_round_trip() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(2, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = NodeId(0);
    let dst = topo.node_at(1, 0);
    for (node, mask) in [(src, Port::Dir(Direction::XPlus).mask()), (dst, Port::Local.mask())] {
        sim.chip_mut(node)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(3),
                outgoing: ConnectionId(3),
                delay: 5,
                out_mask: mask,
            })
            .unwrap();
    }
    let clock = sim.chip(src).clock();
    sim.inject_tc(
        src,
        TcPacket {
            conn: ConnectionId(3),
            arrival: clock.wrap(0),
            payload: (0..18).collect(),
            trace: PacketTrace::default(),
        },
    );
    assert!(sim.run_until(3_000, |s| !s.log(dst).tc.is_empty()));
    let (_, delivered) = &sim.log(dst).tc[0];
    // Encode on the paper's 20-byte wire format and decode: identical
    // modulo the simulation-only trace.
    let wire = delivered.to_wire().unwrap();
    assert_eq!(wire.len(), config.slot_bytes);
    let decoded = TcPacket::from_wire(&wire, &clock).unwrap();
    assert_eq!(decoded.conn, delivered.conn);
    assert_eq!(decoded.arrival, delivered.arrival);
    assert_eq!(decoded.payload, delivered.payload);
}

#[test]
fn delivered_be_packets_survive_a_wire_round_trip() {
    let topo = Topology::mesh(2, 1);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(RouterConfig::default())).unwrap();
    let dst = topo.node_at(1, 0);
    let payload: Vec<u8> = (0..100).collect();
    sim.inject_be(NodeId(0), BePacket::new(1, 0, payload.clone(), PacketTrace::default()));
    assert!(sim.run_until(3_000, |s| !s.log(dst).be.is_empty()));
    let (_, delivered) = &sim.log(dst).be[0];
    assert_eq!(delivered.header.x_off, 0, "offsets consumed in flight");
    assert_eq!(delivered.header.y_off, 0);
    assert_eq!(delivered.header.length as usize, payload.len());
    let decoded = BePacket::from_wire(&delivered.to_wire()).unwrap();
    assert_eq!(decoded.payload, payload);
}

#[test]
fn tc_header_fields_fit_the_one_byte_wire_fields_on_the_paper_chip() {
    // The paper's chip: 256 connections and an 8-bit clock — every header
    // a router can produce must encode. Exhaustively check the corners.
    let clock = realtime_router::types::clock::SlotClock::new(8);
    for conn in [0u16, 1, 127, 255] {
        for slot in [0u64, 1, 128, 255, 256, 100_000] {
            let p = TcPacket {
                conn: ConnectionId(conn),
                arrival: clock.wrap(slot),
                payload: vec![0; 18].into(),
                trace: PacketTrace::default(),
            };
            let wire = p.to_wire().expect("paper-chip headers always encode");
            let q = TcPacket::from_wire(&wire, &clock).unwrap();
            assert_eq!(q.conn, p.conn);
            assert_eq!(q.arrival, p.arrival);
        }
    }
}
