//! Integration: the calendar-queue event core is bit-identical to stepping.
//!
//! PR 4 proved scan-based leaping equivalent to plain stepping; this suite
//! proves the same for the registered-wake event core that replaced the
//! O(components) quiescence scan — across **three** execution modes now:
//! plain stepping, serial event-queue leaping, and 4-worker parallel
//! event-queue leaping (workers drain wake re-polls into per-worker buffers
//! merged at the barrier). Every scenario diffs delivery logs byte-for-byte
//! and the full `Debug` rendering of [`NetworkReport`]. A separate test
//! pins the queue and the scan to identical observables, and the mid-leap
//! predicate test locks [`Simulator::run_until_leaping`] to stepped
//! `run_until` semantics. The conservation test closes the per-node packet
//! ledger under all four drive modes (stepped, serial leaping, parallel
//! leaping, scan quiescence), and the warm-queue test pins the newer
//! contract that plain `step` drives a primed event queue instead of
//! staling it. The wake-queue unit tests (stale-wake invalidation,
//! same-cycle re-registration, wheel rollover) exercise the public
//! `events` API directly.

use realtime_router::channels::establish::{EstablishedChannel, Hop};
use realtime_router::channels::sender::ChannelSender;
use realtime_router::channels::spec::{ChannelRequest, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::events::{WakeHandle, WakeQueue};
use realtime_router::mesh::{NetworkReport, Quiescence, Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::ids::{ConnectionId, Direction, Port};
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

const DELAY: u32 = 6;

/// Adds a one-hop periodic TC channel from `(0, y)` to `(1, y)`.
fn add_channel(sim: &mut Simulator<RealTimeRouter>, y: u16, index: usize, period_slots: u64) {
    let config = RouterConfig::default();
    let topo = sim.topology().clone();
    let conn = ConnectionId(10 + index as u16);
    let src = topo.node_at(0, y);
    let dst = topo.node_at(1, y);
    sim.chip_mut(src)
        .apply_control(ControlCommand::SetConnection {
            incoming: conn,
            outgoing: conn,
            delay: DELAY,
            out_mask: Port::Dir(Direction::XPlus).mask(),
        })
        .unwrap();
    sim.chip_mut(dst)
        .apply_control(ControlCommand::SetConnection {
            incoming: conn,
            outgoing: conn,
            delay: DELAY,
            out_mask: Port::Local.mask(),
        })
        .unwrap();
    let channel = EstablishedChannel {
        id: u64::from(conn.0),
        ingress: conn,
        depth: 2,
        guaranteed: 2 * DELAY,
        hops: vec![
            Hop {
                node: src,
                conn,
                out_conn: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
                buffers: 2,
            },
            Hop {
                node: dst,
                conn,
                out_conn: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
                buffers: 2,
            },
        ],
        request: ChannelRequest::unicast(
            src,
            dst,
            TrafficSpec::periodic(period_slots as u32, 18),
            2 * DELAY,
        ),
    };
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            period_slots,
            0,
            config.slot_bytes,
            vec![0xA0 + index as u8, config.tc_data_bytes() as u8]
                .into_iter()
                .cycle()
                .take(config.tc_data_bytes())
                .collect(),
        )),
    );
}

/// Adds a seeded Bernoulli BE source at every node.
fn add_be_background(sim: &mut Simulator<RealTimeRouter>, rate: f64) {
    let topo = sim.topology().clone();
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    rate,
                    SizeDist::Fixed(16),
                    0xC0FF_EE00 ^ u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
}

/// Builds an 8×8 mesh with four periodic channels and optional BE load.
fn build_mesh(tc_period_slots: u64, be_rate: f64) -> Simulator<RealTimeRouter> {
    let config = RouterConfig::default();
    let mut sim =
        Simulator::build(Topology::mesh(8, 8), |_| RealTimeRouter::new(config.clone())).unwrap();
    sim.enable_gauge_sampling(50);
    for (i, y) in [0u16, 2, 5, 7].into_iter().enumerate() {
        add_channel(&mut sim, y, i, tc_period_slots);
    }
    if be_rate > 0.0 {
        add_be_background(&mut sim, be_rate);
    }
    sim
}

/// Full observable fingerprint of a finished run: every node's delivery
/// log plus the `Debug` rendering of the captured [`NetworkReport`].
fn fingerprint(sim: &Simulator<RealTimeRouter>) -> String {
    let config = RouterConfig::default();
    let mut out = String::new();
    for node in sim.topology().nodes() {
        let log = sim.log(node);
        out.push_str(&format!("{node}: tc={:?} be={:?}\n", log.tc, log.be));
    }
    out.push_str(&format!("{:?}", NetworkReport::capture(sim, config.slot_bytes)));
    out
}

/// Runs one scenario stepped, serial event-queue leaping, and 4-worker
/// parallel event-queue leaping, and asserts byte-identical observables.
/// Returns `(stepped, serial_leaping)` for follow-up assertions.
fn assert_three_way(
    mut build: impl FnMut() -> Simulator<RealTimeRouter>,
    cycles: u64,
) -> (Simulator<RealTimeRouter>, Simulator<RealTimeRouter>) {
    let mut stepped = build();
    stepped.run(cycles);
    let mut serial = build();
    serial.run_leaping(cycles);
    let mut parallel = build();
    parallel.set_parallelism(4);
    parallel.run_leaping(cycles);

    assert_eq!(stepped.now(), serial.now(), "serial leaping covered a different span");
    assert_eq!(stepped.now(), parallel.now(), "parallel leaping covered a different span");
    let f_stepped = fingerprint(&stepped);
    assert_eq!(f_stepped, fingerprint(&serial), "stepped vs serial event-queue leaping");
    assert_eq!(f_stepped, fingerprint(&parallel), "stepped vs 4-worker event-queue leaping");
    (stepped, serial)
}

/// Sparse load: long-period channels, no best-effort traffic. The event
/// queue must leap most cycles and stay byte-identical in all three modes.
#[test]
fn event_core_equivalence_sparse_load() {
    let (stepped, leaping) = assert_three_way(|| build_mesh(64, 0.0), 20_000);
    let tc_total: usize = stepped.topology().nodes().map(|n| stepped.log(n).tc.len()).sum();
    assert!(tc_total >= 40, "sparse TC load too light to trust: {tc_total}");
    assert!(
        leaping.ticks_executed() * 2 < stepped.ticks_executed(),
        "sparse load must leap most cycles: {} vs {} ticks",
        leaping.ticks_executed(),
        stepped.ticks_executed()
    );
}

/// Mixed load: period-8 channels plus 5% Bernoulli BE background. Random
/// sources draw every cycle, so the queue never leaps whole cycles — but
/// sparse ticking still runs only the chips each cycle actually touches,
/// so the event path must execute strictly fewer ticks while staying
/// byte-identical.
#[test]
fn event_core_equivalence_mixed_load() {
    let (stepped, leaping) = assert_three_way(|| build_mesh(8, 0.05), 4_000);
    let be_total: usize = stepped.topology().nodes().map(|n| stepped.log(n).be.len()).sum();
    assert!(be_total > 500, "mixed BE load too light to trust: {be_total}");
    assert!(
        leaping.ticks_executed() < stepped.ticks_executed(),
        "sparse ticking must skip quiet chips even when no cycle leaps: {} vs {} ticks",
        leaping.ticks_executed(),
        stepped.ticks_executed()
    );
    assert!(leaping.ticks_executed() > 0, "something must still tick under mixed load");
}

/// Saturating load: period-8 channels plus 35% Bernoulli BE background —
/// heavy contention and credit stalls with the event core armed throughout.
#[test]
fn event_core_equivalence_saturating_load() {
    let (stepped, _) = assert_three_way(|| build_mesh(8, 0.35), 3_000);
    let be_total: usize = stepped.topology().nodes().map(|n| stepped.log(n).be.len()).sum();
    assert!(be_total > 1_000, "saturating BE load too light to trust: {be_total}");
}

/// The event queue and the original O(components) scan must agree exactly
/// on observables: same deliveries, same report. Tick counts differ by
/// design — scan mode ticks every chip on every stepped cycle, while the
/// event queue ticks only the due chips — so the queue must do no more
/// ticks than the scan (and strictly fewer on this sparse load).
#[test]
fn event_queue_agrees_with_scan_mode() {
    let cycles = 20_000;
    let mut queued = build_mesh(64, 0.0);
    assert_eq!(queued.quiescence(), Quiescence::EventQueue, "event queue must be the default");
    queued.run_leaping(cycles);
    let mut scanned = build_mesh(64, 0.0);
    scanned.set_quiescence(Quiescence::Scan);
    scanned.run_leaping(cycles);
    assert_eq!(fingerprint(&queued), fingerprint(&scanned));
    assert!(
        queued.ticks_executed() < scanned.ticks_executed(),
        "sparse event-queue ticking must beat the dense scan: {} vs {} ticks",
        queued.ticks_executed(),
        scanned.ticks_executed()
    );
    let stats = queued.event_core_stats().expect("event core must be live after leaping");
    assert!(stats.fired > 0, "wakes must actually fire: {stats:?}");
}

/// A predicate that becomes true in the middle of a leapable quiet span
/// must stop `run_until_leaping` at exactly the cycle stepped `run_until`
/// stops at — not at the span's end — with identical logs either way.
#[test]
fn run_until_predicate_fires_mid_leap() {
    // In the sparse mesh, cycle 1_000 sits inside a long quiet span
    // (period-64 channels fire every 1_280 cycles).
    let target = 1_000;
    let budget = 20_000;
    let mut stepped = build_mesh(64, 0.0);
    let hit_stepped = stepped.run_until(budget, |s| s.now() >= target);
    let mut leaping = build_mesh(64, 0.0);
    let hit_leaping = leaping.run_until_leaping(budget, |s| s.now() >= target);
    assert_eq!(hit_stepped, hit_leaping, "predicate outcome diverged");
    assert!(hit_leaping, "the predicate must fire within the budget");
    assert_eq!(stepped.now(), leaping.now(), "mid-leap predicate must stop at its true cycle");
    assert_eq!(leaping.now(), target, "s.now() >= {target} first holds at cycle {target}");
    assert_eq!(fingerprint(&stepped), fingerprint(&leaping));
    assert!(
        leaping.ticks_executed() < stepped.ticks_executed(),
        "the quiet prefix must still be leaped"
    );
}

/// Budget semantics must match stepped `run_until` exactly when the
/// predicate never fires: same `false` result, same final cycle.
#[test]
fn run_until_budget_exhaustion_matches_stepped() {
    let budget = 5_000;
    let mut stepped = build_mesh(64, 0.0);
    assert!(!stepped.run_until(budget, |_| false));
    let mut leaping = build_mesh(64, 0.0);
    assert!(!leaping.run_until_leaping(budget, |_| false));
    assert_eq!(stepped.now(), leaping.now(), "budget must bound both runs identically");
    assert_eq!(fingerprint(&stepped), fingerprint(&leaping));
}

/// The per-node conservation ledger (arrived = buffered + delivered +
/// dropped + forwarded, memory occupancy consistent) must close under every
/// drive mode: plain stepping, serial event-queue leaping, 4-worker
/// parallel leaping, and the legacy O(components) quiescence scan.
#[test]
fn conservation_holds_across_all_drive_modes() {
    let cycles = 4_000;

    let mut stepped = build_mesh(8, 0.05);
    stepped.run(cycles);
    stepped.check_conservation().expect("stepped run must conserve packets");

    let mut serial = build_mesh(8, 0.05);
    serial.run_leaping(cycles);
    serial.check_conservation().expect("serial leaping run must conserve packets");

    let mut parallel = build_mesh(8, 0.05);
    parallel.set_parallelism(4);
    parallel.run_leaping(cycles);
    parallel.check_conservation().expect("parallel leaping run must conserve packets");

    let mut scanned = build_mesh(8, 0.05);
    scanned.set_quiescence(Quiescence::Scan);
    scanned.run_leaping(cycles);
    scanned.check_conservation().expect("scan-quiescence run must conserve packets");
}

/// Interleaving plain `run` between leaping runs must keep the event queue
/// warm (no teardown, no re-poll storm) and stay byte-identical to a pure
/// stepped run: plain `step` now drives the live queue instead of staling
/// it, so only explicit mutation (`chip_mut`, `add_source`) forces a
/// re-prime.
#[test]
fn plain_stepping_keeps_event_queue_warm() {
    let mut cold = build_mesh(64, 0.0);
    cold.run(2_000);
    assert!(
        cold.event_core_stats().is_none(),
        "a never-leaped sim must not have built the event core"
    );

    let mut interleaved = build_mesh(64, 0.0);
    interleaved.run_leaping(6_000);
    assert!(interleaved.event_core_stats().is_some(), "leaping must build the queue");
    interleaved.run(6_000); // plain stepped segment in the middle
    assert!(
        interleaved.event_core_stats().is_some(),
        "plain stepping must keep the primed queue warm, not tear it down"
    );
    interleaved.run_leaping(8_000);

    let mut stepped = build_mesh(64, 0.0);
    stepped.run(20_000);
    assert_eq!(stepped.now(), interleaved.now());
    assert_eq!(
        fingerprint(&stepped),
        fingerprint(&interleaved),
        "stepped vs leap/step/leap interleave"
    );
    assert!(
        interleaved.ticks_executed() < stepped.ticks_executed(),
        "the leaping segments must still skip quiet cycles"
    );
}

/// Stale wakes never fire: re-registering at a later cycle invalidates the
/// earlier wheel entry lazily, and only the live wake pops.
#[test]
fn stale_wakes_are_invalidated() {
    let mut q = WakeQueue::new();
    let h = q.register();
    q.set_wake(h, 10);
    q.set_wake(h, 500); // the entry filed for cycle 10 is now stale
    let mut due = Vec::new();
    q.pop_due(10, &mut due);
    assert!(due.is_empty(), "stale wake at 10 must not fire: {due:?}");
    q.pop_due(500, &mut due);
    assert_eq!(due, vec![h]);
    assert_eq!(q.stats().stale_discarded, 1);
}

/// Re-registering the *same* cycle is idempotent: one firing, no
/// duplicate wheel entries.
#[test]
fn same_cycle_reregistration_is_idempotent() {
    let mut q = WakeQueue::new();
    let h = q.register();
    q.set_wake(h, 42);
    q.set_wake(h, 42);
    q.set_wake(h, 42);
    let mut due = Vec::new();
    q.pop_due(100, &mut due);
    assert_eq!(due, vec![h], "exactly one firing");
    assert_eq!(q.stats().filed, 1, "same-cycle re-registration must not re-file");
}

/// The wheel survives horizons and wakes near `Cycle::MAX`: top-level
/// slots cover the full 64-bit range without overflow.
#[test]
fn wheel_rollover_near_cycle_max() {
    let mut q = WakeQueue::new();
    let a = q.register();
    let b = q.register();
    q.pop_due(u64::MAX - 4_000, &mut Vec::new());
    q.set_wake(a, u64::MAX - 1);
    q.set_wake(b, u64::MAX);
    assert_eq!(q.next_wake(), Some(u64::MAX - 1));
    let mut due = Vec::new();
    q.pop_due(u64::MAX - 2, &mut due);
    assert!(due.is_empty());
    q.pop_due(u64::MAX, &mut due);
    assert_eq!(due, vec![a, b], "both extreme wakes fire, sorted by handle");
    assert_eq!(WakeHandle(0), a);
}
