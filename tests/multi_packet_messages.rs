//! Integration: messages larger than one packet (`S_max` beyond the
//! 18-byte payload, §2's `S_max` parameter) — admission charges multiple
//! packet slots per period, the sender splits, and every fragment meets
//! the message deadline.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;

#[test]
fn large_messages_split_travel_and_arrive_on_time() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    let mut manager = ChannelManager::new(&config);

    // 50-byte messages → 3 packets each, every 16 slots.
    let spec = TrafficSpec { i_min: 16, s_max_bytes: 50, b_max: 0 };
    assert_eq!(spec.packets_per_message(config.tc_data_bytes()), 3);
    let channel =
        manager.establish(&topo, ChannelRequest::unicast(src, dst, spec, 45), &mut sim).unwrap();

    let mut sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    let messages = 30u64;
    for k in 0..messages {
        let now = sim.now();
        let payload: Vec<u8> = (0..50).map(|i| (k as u8) ^ i).collect();
        for packet in sender.make_message(now, &payload) {
            sim.inject_tc(src, packet);
        }
        sim.run(16 * config.slot_bytes as u64);
    }
    sim.run(10_000);

    let log = sim.log(dst);
    assert_eq!(log.tc.len() as u64, messages * 3, "every fragment delivered");
    assert_eq!(log.tc_deadline_misses(config.slot_bytes), 0);

    // Reassemble: fragments of one message share a logical arrival time
    // and arrive in order; the payload reconstructs.
    for k in 0..messages as usize {
        let frags = &log.tc[k * 3..k * 3 + 3];
        let l0 = frags[0].1.trace.logical_arrival;
        assert!(frags.iter().all(|(_, p)| p.trace.logical_arrival == l0));
        let mut payload = Vec::new();
        for (_, p) in frags {
            payload.extend_from_slice(&p.payload);
        }
        let expect: Vec<u8> = (0..50).map(|i| (k as u8) ^ i).collect();
        assert_eq!(&payload[..50], &expect[..], "message {k} reassembles");
    }
}

#[test]
fn admission_charges_multi_packet_messages_properly() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(2, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);
    // 3 packets per message every 12 slots = 1/4 of the link each; the
    // demand test with η = 2 fits two such channels in the 6-slot window
    // (2 + 3 + 3 ≥ ... it does not — so exactly ONE is admitted at d = 6).
    let spec = TrafficSpec { i_min: 12, s_max_bytes: 50, b_max: 0 };
    let request = || ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 12);
    assert!(manager.establish(&topo, request(), &mut sim).is_ok());
    // The second channel's three packets no longer fit the shared window.
    assert!(manager.establish(&topo, request(), &mut sim).is_err());
}
