//! Property: arbitrary establish/teardown interleavings leave the channel
//! manager's books consistent — tearing down everything restores a clean
//! slate, and mid-sequence accounting never goes negative (reservation
//! release would panic).

use proptest::prelude::*;
use realtime_router::channels::{ChannelManager, ChannelRequest, ControlPlane, TrafficSpec};
use realtime_router::core::{ControlCommand, ControlError};
use realtime_router::mesh::Topology;
use realtime_router::prelude::*;
use realtime_router::types::config::RouterConfig;

struct NullPlane;

impl ControlPlane for NullPlane {
    fn apply(&mut self, _node: NodeId, _cmd: ControlCommand) -> Result<(), ControlError> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn establish_teardown_interleavings_conserve_books(
        ops in proptest::collection::vec((any::<bool>(), 0u16..36, 0u16..36, 0usize..3), 1..40)
    ) {
        let config = RouterConfig::default();
        let topo = Topology::mesh(4, 3);
        let n = topo.len() as u16;
        let mut manager = ChannelManager::new(&config);
        let mut live: Vec<u64> = Vec::new();
        for (establish, s, d, spec_idx) in ops {
            if establish {
                let src = NodeId(s % n);
                let dst = NodeId(d % n);
                if src == dst {
                    continue;
                }
                let i_min = [8u32, 16, 32][spec_idx];
                let depth = topo.dor_route(src, dst).len() as u32 + 1;
                let request = ChannelRequest::unicast(
                    src,
                    dst,
                    TrafficSpec::periodic(i_min, 18),
                    depth * 6,
                );
                if let Ok(ch) = manager.establish(&topo, request, &mut NullPlane) {
                    live.push(ch.id);
                }
            } else if let Some(id) = live.pop() {
                manager.teardown(id, &mut NullPlane).unwrap();
            }
            // Reserved links always show sane utilisation.
            for row in manager.utilization_report() {
                prop_assert!(row.utilization > 0.0 && row.utilization <= 1.0 + 1e-9);
                prop_assert!(row.connections >= 1);
            }
        }
        // Tear everything down: a clean slate again.
        for id in live {
            manager.teardown(id, &mut NullPlane).unwrap();
        }
        prop_assert!(manager.utilization_report().is_empty());
        prop_assert!(manager.channels().is_empty());
    }
}
