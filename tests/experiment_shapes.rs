//! Integration: the paper experiments keep their published shapes
//! (abbreviated versions of the `rtr-bench` harnesses; see EXPERIMENTS.md
//! for the full regeneration).

use rtr_bench::baseline_compare::{run_one, Design};
use rtr_bench::{exp1, fig7, horizon, mesh_guarantees};

#[test]
fn e1_wormhole_latency_is_constant_plus_b() {
    let rows = exp1::run(&[16, 64, 160]);
    let c0 = rows[0].wormhole_latency - rows[0].bytes as u64;
    for r in &rows {
        assert_eq!(
            r.wormhole_latency,
            c0 + r.bytes as u64,
            "slope must be exactly one cycle per byte"
        );
        assert!(
            (30..=31).contains(&(r.wormhole_latency - r.bytes as u64)),
            "constant within one cycle of the paper's 30"
        );
        assert!(r.store_forward_latency > r.wormhole_latency);
    }
}

#[test]
fn f7_shares_and_deadlines() {
    let r = fig7::run(0, 92, 30_000, 3_000);
    assert!((r.tc_shares[0] - 0.125).abs() < 0.012);
    assert!((r.tc_shares[1] - 0.0625).abs() < 0.008);
    assert!((r.tc_shares[2] - 0.03125).abs() < 0.006);
    assert!(r.be_share > 0.5);
    assert_eq!(r.deadline_misses, 0);
}

#[test]
fn x1_horizon_trade_off_shape() {
    let rows = horizon::run(&[0, 32], 40_000);
    assert!(rows[1].mean_latency < rows[0].mean_latency);
    assert!(rows[1].dst_held_packets >= rows[0].dst_held_packets);
    assert!(rows[1].required_reservation > rows[0].required_reservation);
}

#[test]
fn x2_design_hierarchy() {
    let rt = run_one(Design::RealTime, 0.2, 40_000);
    let pv = run_one(Design::PriorityVc, 0.2, 40_000);
    let wh = run_one(Design::Wormhole, 0.2, 40_000);
    assert_eq!(rt.misses, 0, "the real-time router never misses");
    assert!(pv.misses > 0, "FIFO priority misses under bursty peers");
    assert!(wh.misses > pv.misses, "wormhole fares worst under load");
}

#[test]
fn x3_mesh_guarantees_hold() {
    let r = mesh_guarantees::run(4, 10, 0.1, 99, 50_000);
    assert!(r.admitted > 0);
    assert_eq!(r.misses, 0);
    assert_eq!(r.aliased_keys, 0);
}
