//! Integration: packet conservation — nothing is silently lost or
//! duplicated anywhere in the network.
//!
//! For every run: `injected = delivered + still buffered + still in
//! flight + dropped`, per class, summed over the network. Sequence numbers
//! of delivered packets are exactly the injected set (per source) with no
//! duplicates.

use std::collections::HashSet;

use proptest::prelude::*;
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;

fn total_be_delivered(sim: &Simulator<RealTimeRouter>, topo: &Topology) -> usize {
    topo.nodes().map(|n| sim.log(n).be.len()).sum()
}

/// Every router's own conservation ledger must balance after a mixed
/// TC + BE run: arrivals fully accounted (dropped, cut through, or
/// buffered) and buffered packets fully retired or still in memory.
#[test]
fn router_stats_conserve_under_mixed_traffic() {
    use realtime_router::workloads::tc::PeriodicTcSource;

    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);

    let pairs = [(0u16, 8u16), (2, 6), (4, 0), (7, 1)];
    for (phase, (src, dst)) in pairs.into_iter().enumerate() {
        let (src, dst) = (NodeId(src), NodeId(dst));
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let channel = manager
            .establish(
                &topo,
                ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), depth * 6),
                &mut sim,
            )
            .expect("sparse channel set admits");
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                16,
                phase as u64,
                config.slot_bytes,
                vec![0x42; config.tc_data_bytes()],
            )),
        );
    }
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.15,
                    SizeDist::Uniform(4, 40),
                    u64::from(node.0) * 31 + 5,
                )
                .with_max_queue(4),
            ),
        );
    }
    sim.run(25_000);

    let mut tc_arrived_total = 0;
    for node in topo.nodes() {
        sim.chip(node).check_conservation().unwrap_or_else(|e| panic!("node {node}: {e}"));
        tc_arrived_total += sim.chip(node).stats().tc_arrived;
    }
    assert!(tc_arrived_total > 0, "TC traffic actually flowed");
    let tc_delivered: usize = topo.nodes().map(|n| sim.log(n).tc.len()).sum();
    assert!(tc_delivered > 200, "delivered {tc_delivered}");
}

#[test]
fn be_packets_conserve_and_never_duplicate() {
    let topo = Topology::mesh(3, 3);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(RouterConfig::default())).unwrap();
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.2,
                    SizeDist::Uniform(4, 60),
                    u64::from(node.0) * 17 + 1,
                )
                .with_max_queue(6),
            ),
        );
    }
    sim.run(30_000);
    // Stop injecting; drain the network completely.
    let before_drain = total_be_delivered(&sim, &topo);
    assert!(before_drain > 1_000, "delivered {before_drain}");
    // (sources stay attached but queue caps keep injections bounded; run a
    // long drain and require strictly monotone completion)
    sim.run(30_000);

    // No duplicates: (source, sequence) pairs are unique.
    let mut seen: HashSet<(NodeId, u64)> = HashSet::new();
    for node in topo.nodes() {
        for (_, p) in &sim.log(node).be {
            assert!(
                seen.insert((p.trace.source, p.trace.sequence)),
                "duplicate delivery of {:?}#{}",
                p.trace.source,
                p.trace.sequence
            );
            assert_eq!(p.trace.destination, node, "packet delivered at the wrong node");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Deterministic replay: the same seed yields byte-identical delivery
    /// logs — the property every debugging session depends on.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let run = |seed: u64| {
            let topo = Topology::mesh(3, 2);
            let mut sim = Simulator::build(topo.clone(), |_| {
                RealTimeRouter::new(RouterConfig::default())
            })
            .unwrap();
            for node in topo.nodes() {
                sim.add_source(
                    node,
                    Box::new(
                        RandomBeSource::new(
                            topo.clone(),
                            TrafficPattern::Uniform,
                            0.3,
                            SizeDist::Uniform(4, 32),
                            seed ^ u64::from(node.0),
                        )
                        .with_max_queue(4),
                    ),
                );
            }
            sim.run(5_000);
            let mut out = Vec::new();
            for node in topo.nodes() {
                for (cycle, p) in &sim.log(node).be {
                    out.push((*cycle, p.trace.source, p.trace.sequence, p.payload.len()));
                }
            }
            out
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
