//! Integration: packet conservation — nothing is silently lost or
//! duplicated anywhere in the network.
//!
//! For every run: `injected = delivered + still buffered + still in
//! flight + dropped`, per class, summed over the network. Sequence numbers
//! of delivered packets are exactly the injected set (per source) with no
//! duplicates.

use std::collections::HashSet;

use proptest::prelude::*;
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;

fn total_be_delivered(sim: &Simulator<RealTimeRouter>, topo: &Topology) -> usize {
    topo.nodes().map(|n| sim.log(n).be.len()).sum()
}

#[test]
fn be_packets_conserve_and_never_duplicate() {
    let topo = Topology::mesh(3, 3);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(RouterConfig::default()))
            .unwrap();
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.2,
                    SizeDist::Uniform(4, 60),
                    u64::from(node.0) * 17 + 1,
                )
                .with_max_queue(6),
            ),
        );
    }
    sim.run(30_000);
    // Stop injecting; drain the network completely.
    let before_drain = total_be_delivered(&sim, &topo);
    assert!(before_drain > 1_000, "delivered {before_drain}");
    // (sources stay attached but queue caps keep injections bounded; run a
    // long drain and require strictly monotone completion)
    sim.run(30_000);

    // No duplicates: (source, sequence) pairs are unique.
    let mut seen: HashSet<(NodeId, u64)> = HashSet::new();
    for node in topo.nodes() {
        for (_, p) in &sim.log(node).be {
            assert!(
                seen.insert((p.trace.source, p.trace.sequence)),
                "duplicate delivery of {:?}#{}",
                p.trace.source,
                p.trace.sequence
            );
            assert_eq!(
                p.trace.destination, node,
                "packet delivered at the wrong node"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Deterministic replay: the same seed yields byte-identical delivery
    /// logs — the property every debugging session depends on.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let run = |seed: u64| {
            let topo = Topology::mesh(3, 2);
            let mut sim = Simulator::build(topo.clone(), |_| {
                RealTimeRouter::new(RouterConfig::default())
            })
            .unwrap();
            for node in topo.nodes() {
                sim.add_source(
                    node,
                    Box::new(
                        RandomBeSource::new(
                            topo.clone(),
                            TrafficPattern::Uniform,
                            0.3,
                            SizeDist::Uniform(4, 32),
                            seed ^ u64::from(node.0),
                        )
                        .with_max_queue(4),
                    ),
                );
            }
            sim.run(5_000);
            let mut out = Vec::new();
            for node in topo.nodes() {
                for (cycle, p) in &sim.log(node).be {
                    out.push((*cycle, p.trace.source, p.trace.sequence, p.payload.len()));
                }
            }
            out
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
