//! Integration: cycle-accurate tracing on a 3×3 mesh (needs `--features
//! trace`).
//!
//! Runs admitted periodic channels plus background best-effort noise with
//! every router tracing into one shared ring, then checks that each
//! *delivered* time-constrained packet left a complete
//! `inject → arrive → select → transmit → deliver` chain, that cycles are
//! monotone along each chain, and that no admitted channel was ever
//! delivered late (delivery slack ≥ 0). Also exercises the
//! [`realtime_router::mesh::NetworkReport`] slack view against the trace.

#![cfg(feature = "trace")]

use std::collections::BTreeMap;

use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::types::trace::{shared, RingSink, TraceEvent, TraceRecord};
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

#[test]
fn delivered_tc_packets_leave_complete_chains() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let ring = shared(RingSink::new(1 << 20));
    for node in topo.nodes() {
        sim.chip_mut(node).set_trace_sink(node, ring.clone());
    }

    let mut manager = ChannelManager::new(&config);
    // Two channels share source node 0 on purpose: their trace provenance
    // must still stitch into distinct chains.
    let pairs = [(0u16, 8u16), (0, 2), (4, 6), (7, 1)];
    for (phase, (src, dst)) in pairs.into_iter().enumerate() {
        let (src, dst) = (NodeId(src), NodeId(dst));
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let channel = manager
            .establish(
                &topo,
                ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), depth * 6),
                &mut sim,
            )
            .expect("sparse channel set admits");
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                16,
                phase as u64 * 2,
                config.slot_bytes,
                vec![0x42; config.tc_data_bytes()],
            )),
        );
    }
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.1,
                    SizeDist::Uniform(4, 32),
                    u64::from(node.0) * 13 + 3,
                )
                .with_max_queue(4),
            ),
        );
    }
    sim.run(20_000);

    // Stitch per-packet chains from the trace by (src, seq) provenance.
    let ring = ring.lock().unwrap();
    assert_eq!(ring.dropped(), 0, "ring must be big enough for the whole run");
    let mut chains: BTreeMap<(NodeId, u64), Vec<TraceRecord>> = BTreeMap::new();
    for rec in ring.records() {
        if let Some(id) = rec.event.packet_id() {
            if !matches!(rec.event, TraceEvent::BeDeliver { .. }) {
                chains.entry(id).or_default().push(*rec);
            }
        }
    }

    let delivered: Vec<(NodeId, u64)> = topo
        .nodes()
        .flat_map(|n| {
            sim.log(n)
                .tc
                .iter()
                .map(|(_, p)| (p.trace.source, p.trace.sequence))
                .collect::<Vec<_>>()
        })
        .collect();
    assert!(delivered.len() > 200, "delivered {}", delivered.len());

    for id in &delivered {
        let chain = chains.get(id).unwrap_or_else(|| panic!("no trace chain for {id:?}"));
        let tags: Vec<&str> = chain.iter().map(|r| r.event.tag()).collect();
        for want in ["tc_inject", "tc_arrive", "sched_select", "tc_transmit", "tc_deliver"] {
            assert!(tags.contains(&want), "chain for {id:?} is missing {want}: {tags:?}");
        }
        // The lifecycle appears in causal order and cycles never go back.
        let mut expected = ["tc_inject", "tc_arrive", "sched_select", "tc_transmit", "tc_deliver"]
            .iter()
            .peekable();
        for tag in &tags {
            if expected.peek() == Some(&tag) {
                expected.next();
            }
        }
        assert_eq!(expected.count(), 0, "out-of-order chain for {id:?}: {tags:?}");
        assert!(
            chain.windows(2).all(|w| w[0].cycle <= w[1].cycle),
            "cycles regress in chain for {id:?}"
        );
        // Admission guarantees on-time delivery: slack never negative.
        for rec in chain {
            if let TraceEvent::TcDeliver { slack, .. } = rec.event {
                assert!(slack >= 0, "late delivery for {id:?}: slack {slack}");
            }
        }
    }

    // The mesh-level slack report agrees: nothing admitted ran late.
    let report = NetworkReport::capture(&sim, config.slot_bytes);
    assert!(!report.slack.is_empty(), "slack report populated");
    assert!(report.min_slack().unwrap() >= 0, "admitted channels stay on time");
    assert_eq!(report.deadline_misses, 0);
}
