//! Capstone stress test: everything at once on a 6×6 mesh — unicast and
//! multicast channels, periodic and legally-bursty senders, host policing,
//! saturating best-effort background, horizons enabled — for 200 000
//! cycles. The single invariant that matters: **zero deadline misses**.

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::{ControlCommand, RealTimeRouter};
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::{BurstyTcSource, PeriodicTcSource};

#[test]
fn everything_at_once_zero_misses() {
    let config = RouterConfig::default();
    let topo = Topology::mesh(6, 6);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);
    let horizon = 8;
    manager.set_assumed_horizon(horizon);

    // Horizons on every port of every router.
    for node in topo.nodes() {
        sim.chip_mut(node)
            .apply_control(ControlCommand::SetHorizon { port_mask: 0b1_1111, horizon })
            .unwrap();
    }

    // A dozen unicast channels criss-crossing the mesh.
    let unicast_pairs = [
        ((0u16, 0u16), (5u16, 5u16)),
        ((5, 0), (0, 5)),
        ((0, 2), (5, 2)),
        ((2, 0), (2, 5)),
        ((1, 1), (4, 4)),
        ((4, 1), (1, 4)),
        ((3, 0), (3, 5)),
        ((0, 3), (5, 3)),
        ((5, 4), (0, 1)),
        ((1, 5), (4, 0)),
        ((2, 2), (3, 3)),
        ((4, 5), (1, 0)),
    ];
    let mut channels = Vec::new();
    for (s, d) in unicast_pairs {
        let src = topo.node_at(s.0, s.1);
        let dst = topo.node_at(d.0, d.1);
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let spec = TrafficSpec { i_min: 32, s_max_bytes: 18, b_max: 3 };
        let channel = manager
            .establish(&topo, ChannelRequest::unicast(src, dst, spec, depth * 8), &mut sim)
            .expect("criss-cross set must be admissible at 1/32 each");
        channels.push(channel);
    }
    // One multicast tree from the centre to three corners.
    let mcast = manager
        .establish(
            &topo,
            ChannelRequest {
                source: topo.node_at(2, 3),
                destinations: vec![topo.node_at(5, 5), topo.node_at(5, 0), topo.node_at(0, 5)],
                spec: TrafficSpec::periodic(32, 18),
                deadline: 64,
            },
            &mut sim,
        )
        .expect("multicast admissible");

    // Senders: alternate periodic and legally-bursty.
    for (k, channel) in channels.iter().enumerate() {
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        let source: Box<dyn rtr_mesh::TrafficSource> = if k % 2 == 0 {
            Box::new(PeriodicTcSource::new(
                sender,
                32,
                k as u64 % 16,
                config.slot_bytes,
                vec![k as u8; config.tc_data_bytes()],
            ))
        } else {
            Box::new(BurstyTcSource::new(
                sender,
                4, // ≤ B_max + 1
                128,
                config.slot_bytes,
                vec![k as u8; config.tc_data_bytes()],
            ))
        };
        sim.add_source(src, source);
    }
    {
        let src = mcast.request.source;
        let sender = ChannelSender::new(
            &mcast,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                32,
                5,
                config.slot_bytes,
                vec![0xAC; config.tc_data_bytes()],
            )),
        );
    }

    // Saturating best-effort background everywhere.
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.25,
                    SizeDist::Uniform(8, 96),
                    0x51AB ^ u64::from(node.0),
                )
                .with_max_queue(10),
            ),
        );
    }

    sim.run(200_000);

    let report = NetworkReport::capture(&sim, config.slot_bytes);
    assert_eq!(report.deadline_misses, 0, "the one invariant that matters");
    assert!(report.tc_delivered > 3_000, "tc delivered {}", report.tc_delivered);
    assert!(report.be_delivered > 20_000, "be delivered {}", report.be_delivered);
    for node in topo.nodes() {
        assert_eq!(sim.chip(node).stats().tc_dropped(), 0);
        assert_eq!(sim.chip(node).stats().aliased_keys, 0);
    }
    // Every multicast destination received every message.
    let mcast_counts: Vec<usize> = mcast
        .request
        .destinations
        .iter()
        .map(|d| {
            sim.log(*d).tc.iter().filter(|(_, p)| p.trace.source == mcast.request.source).count()
        })
        .collect();
    let min = *mcast_counts.iter().min().unwrap();
    let max = *mcast_counts.iter().max().unwrap();
    assert!(min > 150, "multicast deliveries {mcast_counts:?}");
    assert!(max - min <= 2, "branches differ only by in-flight copies: {mcast_counts:?}");
}
