//! Integration: dimension-ordered wormhole routing stays deadlock-free
//! under sustained heavy best-effort load (the §3.3 property the paper
//! relies on: "dimension-ordered routing avoids packet deadlock in a
//! square mesh").
//!
//! The test saturates a 5×5 mesh with long wormhole packets (worst case
//! for buffer cycles) and asserts continued forward progress in every
//! observation window.

use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;

fn total_delivered(sim: &Simulator<RealTimeRouter>, topo: &Topology) -> usize {
    topo.nodes().map(|n| sim.log(n).be.len()).sum()
}

fn stress(pattern: TrafficPattern, seed: u64, min_total: usize) {
    let topo = Topology::mesh(5, 5);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(RouterConfig::default())).unwrap();
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    pattern,
                    0.05,
                    // Long packets: a single worm spans several routers.
                    SizeDist::Uniform(60, 200),
                    seed ^ (u64::from(node.0) << 3),
                )
                .with_max_queue(12),
            ),
        );
    }
    let mut last = 0;
    for window in 0..12 {
        sim.run(10_000);
        let now = total_delivered(&sim, &topo);
        assert!(now > last, "no forward progress in window {window}: stuck at {now} deliveries");
        last = now;
    }
    assert!(last > min_total, "sustained throughput expected, got {last}");
}

#[test]
fn uniform_heavy_load_never_deadlocks() {
    stress(TrafficPattern::Uniform, 0xD00D, 2_000);
}

#[test]
fn transpose_heavy_load_never_deadlocks() {
    // Transpose concentrates turns at the diagonal — the adversarial
    // pattern for x-then-y routing.
    stress(TrafficPattern::Transpose, 0xBEE5, 2_000);
}

#[test]
fn hotspot_heavy_load_never_deadlocks() {
    let topo = Topology::mesh(5, 5);
    // The hot node's reception port caps throughput; progress is the claim.
    stress(TrafficPattern::Hotspot(topo.node_at(2, 2)), 0xCAFE, 800);
}

#[test]
fn bit_complement_heavy_load_never_deadlocks() {
    // Every packet crosses the bisection — the heaviest legal use of the
    // x-then-y turn set.
    stress(TrafficPattern::BitComplement, 0xB17C, 1_500);
}
