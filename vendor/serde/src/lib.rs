//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io. This workspace's only
//! serde surface is the optional `#[cfg_attr(feature = "serde", ...)]`
//! derives on vocabulary types (nothing serialises through serde — JSONL
//! telemetry is hand-encoded in `rtr-types::trace`), so this stand-in
//! provides just enough for those attributes to compile: empty marker
//! traits and no-op derive macros.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize` (no methods; nothing in this
/// workspace serialises through serde).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
