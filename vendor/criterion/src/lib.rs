//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the bench-definition API the workspace's `[[bench]]` targets use
//! (`Criterion`, `criterion_group!`/`criterion_main!`, benchmark groups,
//! `iter`/`iter_batched`, `BenchmarkId`, `black_box`) backed by a simple
//! wall-clock harness: each benchmark warms up, runs a fixed number of
//! samples, and prints min/mean per-iteration times. There is no statistical
//! analysis, HTML report, or baseline storage — numbers are comparable
//! within one machine and build only.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser value passthrough.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortises setup cost (ignored by this harness; every
/// iteration reruns its setup outside the timed section).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming a function/parameter pair.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    /// Total time spent in timed sections.
    elapsed: Duration,
    /// Per-iteration durations (for min).
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(iters: u64) -> Bencher {
        Bencher { iters, elapsed: Duration::ZERO, samples: Vec::new() }
    }

    /// Times `routine`, repeated for the sample count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            let dt = start.elapsed();
            black_box(out);
            self.samples.push(dt);
            self.elapsed += dt;
        }
    }

    /// Times `routine` over fresh `setup` output each iteration; only the
    /// routine is inside the timed section.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let dt = start.elapsed();
            black_box(out);
            self.samples.push(dt);
            self.elapsed += dt;
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let mean = self.elapsed / self.samples.len() as u32;
        println!("{id:<50} min {:>12?}  mean {:>12?}  ({} samples)", min, mean, self.samples.len());
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep runs quick: benches exist to compare orders of magnitude and
        // regressions, not to do statistics.
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        // One warmup pass, then the timed samples.
        let mut warmup = Bencher::new(1);
        body(&mut warmup);
        let mut bencher = Bencher::new(self.sample_size);
        body(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string(), sample_size: None }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    fn run(&mut self, id: &str, body: &mut dyn FnMut(&mut Bencher)) {
        let iters = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut warmup = Bencher::new(1);
        body(&mut warmup);
        let mut bencher = Bencher::new(iters);
        body(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run(id, &mut body);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut wrapped = |b: &mut Bencher| body(b, input);
        self.run(&id.id, &mut wrapped);
        self
    }

    /// Ends the group (reports are printed eagerly; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, as in upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &3u64, |b, &x| {
            b.iter_batched(
                || x,
                |v| {
                    calls += v;
                    v
                },
                BatchSize::SmallInput,
            );
        });
        group.finish();
        // 1 warmup + 5 samples, each adding 3.
        assert_eq!(calls, 18);
    }
}
