//! No-op derive macros backing the offline `serde` stand-in: the derives
//! expand to nothing, which is valid for types that are never serialised
//! through serde.

use proc_macro::TokenStream;

/// Expands to nothing (see the crate docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (see the crate docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
