//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of proptest the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, integer-range and
//! tuple strategies, [`collection::vec`], [`strategy::any`], the
//! [`proptest!`] macro, and the `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with its
//! deterministic case index; re-running reproduces it exactly), and the
//! random stream is this workspace's own, not upstream proptest's.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Generates values of an output type from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Applies `f` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a second strategy from it with `f`, and
        /// draws from that.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing `f` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range");
                    // Uniform in [start, end) from 53 random mantissa bits.
                    let unit = (rng.0.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                    let v = v as $t;
                    // Rounding at the cast can land exactly on the excluded
                    // upper bound; fold that back to the lower one.
                    if v >= self.start && v < self.end { v } else { self.start }
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy over a type's whole domain; see [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod bool {
    //! Boolean strategies.

    /// Generates `true` or `false` with equal probability.
    pub const ANY: crate::strategy::Any<bool> = crate::strategy::Any(core::marker::PhantomData);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A permitted range of collection sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! Deterministic case running.

    use rand::SeedableRng;

    /// The random stream handed to strategies (wraps the workspace's
    /// deterministic generator).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub rand::rngs::StdRng);

    impl TestRng {
        /// A deterministic stream for the given test case index.
        #[must_use]
        pub fn for_case(case: u64) -> TestRng {
            TestRng(rand::rngs::StdRng::seed_from_u64(
                0x5EED_0000_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64, max_shrink_iters: 1024 }
        }
    }
}

pub mod prelude {
    //! The usual imports for property tests.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use test_runner::Config as ProptestConfig;

/// Asserts a condition inside a property; panics (failing the case) when
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::test_runner::TestRng::for_case(case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg (<$crate::test_runner::Config as ::core::default::Default>::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::test_runner::TestRng::for_case(3);
        let s = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn flat_map_feeds_first_stage_into_second() {
        let mut rng = crate::test_runner::TestRng::for_case(9);
        let s = (10u64..20).prop_flat_map(|n| crate::collection::vec(0u64..n, 1..3));
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.iter().all(|&x| x < 20));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro wires strategies to arguments.
        #[test]
        fn macro_generates_in_range(a in 1u32..5, b in any::<bool>(), v in crate::collection::vec(0i8..=3, 1..4)) {
            prop_assert!((1..5).contains(&a));
            let _ = b;
            prop_assert!(!v.is_empty());
            prop_assert_ne!(v.len(), 9);
            prop_assert_eq!(v.iter().filter(|&&x| x > 3).count(), 0);
        }
    }

    proptest! {
        /// Default-config form (no inner attribute).
        #[test]
        fn default_config_form(x in 0u8..=255) {
            let _ = x;
        }
    }
}
