//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this tiny crate
//! provides exactly the API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool` — backed
//! by a xoshiro256** generator seeded through SplitMix64. Streams are
//! deterministic per seed (every simulation result is reproducible) but do
//! not match upstream `rand` byte-for-byte.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                self.start + v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                lo + v as $t
            }
        }
    )*};
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);
impl_sample_range_int!(i8, i16, i32, i64, isize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 high bits → uniform in [0, 1).
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng { s: core::array::from_fn(|_| splitmix64(&mut sm)) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3u16..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-3i8..=3);
            assert!((-3..=3).contains(&w));
            let x = r.gen_range(4u32..=8);
            assert!((4..=8).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
