//! Quickstart: build a 4×4 mesh of real-time routers, establish one
//! real-time channel, send periodic messages, and watch every one arrive
//! by its deadline while best-effort traffic shares the wires.
//!
//! Run with: `cargo run --example quickstart`

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::packet::{BePacket, PacketTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 4×4 mesh of the paper's router chip (Table 4a parameters).
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;

    // 2. Establish a real-time channel: source (0,0) → destination (3,2),
    //    one 18-byte message every 16 slots, end-to-end bound 60 slots.
    //    Admission reserves link bandwidth and packet buffers at every hop
    //    and programs the connection tables through the Table 3 interface.
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(3, 2);
    let mut manager = ChannelManager::new(&config);
    let channel = manager.establish(
        &topo,
        ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
        &mut sim,
    )?;
    println!(
        "channel established: {} hops, ingress id {}, per-hop delay bounds {:?}",
        channel.hops.len(),
        channel.ingress,
        channel.hops.iter().map(|h| h.delay).collect::<Vec<_>>()
    );

    // 3. Send 50 periodic messages; the sender stamps logical arrival
    //    times so deadlines are end-to-end auditable.
    let mut sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    // Also drop a best-effort packet in: it shares the wires without a
    // reservation.
    let (x, y) = topo.be_offsets(src, dst);
    sim.inject_be(
        src,
        BePacket::new(
            x,
            y,
            b"hello best effort".to_vec(),
            PacketTrace { source: src, destination: dst, ..PacketTrace::default() },
        ),
    );

    for k in 0..50u64 {
        let now = sim.now();
        for packet in sender.make_message(now, format!("msg {k:03}").as_bytes()) {
            sim.inject_tc(src, packet);
        }
        sim.run(16 * config.slot_bytes as u64); // one period
    }
    sim.run(5_000); // drain

    // 4. Audit the deliveries.
    let log = sim.log(dst);
    let misses = log.tc_deadline_misses(config.slot_bytes);
    let slacks = log.tc_slack_slots(config.slot_bytes);
    println!("delivered {} time-constrained messages, {} deadline misses", log.tc.len(), misses);
    println!(
        "worst-case remaining slack: {} slots (deadline bound was {} slots)",
        slacks.iter().min().unwrap(),
        channel.request.deadline
    );
    println!(
        "best-effort delivered: {} packet(s), payload {:?}",
        log.be.len(),
        String::from_utf8_lossy(&log.be[0].1.payload)
    );
    assert_eq!(misses, 0);
    Ok(())
}
