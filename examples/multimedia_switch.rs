//! Multimedia scenario (paper §7: the router as "a building block for
//! constructing large, high-speed switches that support the
//! quality-of-service requirements of real-time and multimedia
//! applications").
//!
//! Three service classes share a 4×4 mesh:
//!
//! * **video** — multi-packet messages (50-byte frames → 3 packets) on
//!   reserved channels with moderate deadlines,
//! * **audio** — small messages on tight-deadline reserved channels,
//! * **bulk** — best-effort file transfer soaking up the leftovers.
//!
//! The reservation report shows where the network is loaded; every
//! reserved stream meets every deadline while bulk throughput fills the
//! rest.
//!
//! Run with: `cargo run --example multimedia_switch`

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::stats::LatencySummary;
use realtime_router::mesh::{NetworkReport, Simulator, Topology};
use realtime_router::prelude::*;
use realtime_router::workloads::be::BackloggedBeSource;
use realtime_router::workloads::tc::PeriodicTcSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;
    let mut manager = ChannelManager::new(&config);

    // Video: camera (0,0) → display (3,3), one 50-byte frame per 32 slots.
    let video_spec = TrafficSpec { i_min: 32, s_max_bytes: 50, b_max: 0 };
    let video = manager.establish(
        &topo,
        ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(3, 3), video_spec, 96),
        &mut sim,
    )?;
    // Audio: microphone (0,3) → speaker (3,0), small messages, tight bound.
    let audio_spec = TrafficSpec::periodic(8, 18);
    let audio = manager.establish(
        &topo,
        ChannelRequest::unicast(topo.node_at(0, 3), topo.node_at(3, 0), audio_spec, 28),
        &mut sim,
    )?;

    for (label, channel, period, payload) in
        [("video", &video, 32u64, 50usize), ("audio", &audio, 8, 12)]
    {
        println!(
            "{label}: {} packets/message, depth {}, guaranteed {} slots",
            channel.request.spec.packets_per_message(config.tc_data_bytes()),
            channel.depth,
            channel.guaranteed_bound()
        );
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                period,
                0,
                config.slot_bytes,
                vec![0xAB; payload],
            )),
        );
    }

    // Bulk transfer: (1,1) → (2,2), backlogged 200-byte packets.
    sim.add_source(
        topo.node_at(1, 1),
        Box::new(BackloggedBeSource::new(&topo, topo.node_at(1, 1), topo.node_at(2, 2), 200, 2)),
    );

    sim.run(150_000);

    println!();
    println!("reserved-link report (densest first):");
    for row in manager.utilization_report().iter().take(5) {
        println!(
            "  node {:>3} port {:<5}  {} connection(s)  utilisation {:.4}  headroom {} slots",
            row.node,
            row.port.to_string(),
            row.connections,
            row.utilization,
            row.headroom_slots
        );
    }

    println!();
    let report = NetworkReport::capture(&sim, config.slot_bytes);
    let video_log = sim.log(topo.node_at(3, 3));
    let audio_log = sim.log(topo.node_at(3, 0));
    let bulk_log = sim.log(topo.node_at(2, 2));
    let audio_lat = LatencySummary::of(&audio_log.tc_latencies());
    println!(
        "video: {} fragments, {} misses",
        video_log.tc.len(),
        video_log.tc_deadline_misses(config.slot_bytes)
    );
    println!(
        "audio: {} messages, {} misses, mean latency {:.0} cycles",
        audio_log.tc.len(),
        audio_log.tc_deadline_misses(config.slot_bytes),
        audio_lat.mean
    );
    println!(
        "bulk:  {} packets ({} bytes) delivered best-effort",
        bulk_log.be.len(),
        bulk_log.be.iter().map(|(_, p)| p.payload.len()).sum::<usize>()
    );
    println!("network-wide misses: {}", report.deadline_misses);

    assert!(video_log.tc.len() >= 3 * 140, "≈150 frames × 3 fragments");
    assert_eq!(report.deadline_misses, 0);
    assert!(bulk_log.be.len() > 300, "bulk kept flowing underneath");
    println!();
    println!("all reserved streams on time; bulk transfer absorbed the slack.");
    Ok(())
}
