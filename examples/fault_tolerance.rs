//! Fault tolerance: re-establishing a real-time channel around a failed
//! link (the paper's §1 motivation — multi-hop meshes have "several
//! disjoint routes between each pair of processing nodes, improving the
//! application's resilience to link and node failures" — made concrete
//! through §3.3's table-driven routing).
//!
//! Phase 1 runs a channel over its direct route. Then the route's first
//! link "fails": the channel is torn down, a detour is computed with
//! `Topology::route_avoiding`, and the channel is re-established over it.
//! Guarantees hold in both phases, and the dead link is verifiably silent
//! in phase 2.
//!
//! Run with: `cargo run --example fault_tolerance`

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;
    let mut manager = ChannelManager::new(&config);

    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    let spec = TrafficSpec::periodic(16, 18);

    // Phase 1: the direct route.
    let direct = manager.establish(&topo, ChannelRequest::unicast(src, dst, spec, 60), &mut sim)?;
    println!(
        "phase 1: direct route over {} hops, guaranteed bound {} slots",
        direct.depth,
        direct.guaranteed_bound()
    );
    let mut sender = ChannelSender::new(
        &direct,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    for _ in 0..40 {
        let now = sim.now();
        for p in sender.make_message(now, b"direct") {
            sim.inject_tc(src, p);
        }
        sim.run(16 * config.slot_bytes as u64);
    }
    sim.run(3_000);
    let phase1 = sim.log(dst).tc.len();
    let phase1_misses = sim.log(dst).tc_deadline_misses(config.slot_bytes);
    println!("phase 1: delivered {phase1}, misses {phase1_misses}");

    // The first +x link fails. Tear down and re-establish over a detour.
    let dead = [(src, Direction::XPlus)];
    manager.teardown(direct.id, &mut sim)?;
    let detour_route =
        topo.route_avoiding(src, dst, &dead).expect("the mesh has disjoint alternatives");
    let detour = manager.establish_routed(
        &topo,
        ChannelRequest::unicast(src, dst, spec, 60),
        std::slice::from_ref(&detour_route),
        &mut sim,
    )?;
    println!(
        "phase 2: detour {:?} over {} hops, guaranteed bound {} slots",
        detour_route,
        detour.depth,
        detour.guaranteed_bound()
    );

    let dead_before = sim.link_usage(src, Direction::XPlus).tc_symbols;
    let mut sender = ChannelSender::new(
        &detour,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    for _ in 0..40 {
        let now = sim.now();
        for p in sender.make_message(now, b"detour") {
            sim.inject_tc(src, p);
        }
        sim.run(16 * config.slot_bytes as u64);
    }
    sim.run(3_000);

    let phase2 = sim.log(dst).tc.len() - phase1;
    let misses = sim.log(dst).tc_deadline_misses(config.slot_bytes);
    let dead_after = sim.link_usage(src, Direction::XPlus).tc_symbols;
    println!("phase 2: delivered {phase2}, total misses {misses}");
    println!(
        "failed link carried {} time-constrained symbols during phase 2",
        dead_after - dead_before
    );

    assert_eq!(phase1, 40);
    assert_eq!(phase2, 40);
    assert_eq!(misses, 0, "guarantees hold on both routes");
    assert_eq!(dead_after, dead_before, "the failed link stayed silent");
    println!();
    println!("the channel survived the link failure with guarantees intact.");
    Ok(())
}
