//! Isolation demo (paper §2): "basing performance guarantees on logical
//! arrival times limits the influence an ill-behaving or malicious
//! connection can have on other traffic in the network."
//!
//! Two channels share every link of a 3-node chain. One behaves; the other
//! tries to flood at four times its contract. Two mechanisms contain it:
//!
//! 1. **Host policing** — the source's protocol software runs the linear
//!    bounded arrival process check (`Policer`); non-conforming messages
//!    never reach the network. (The §4.3 clock windows assume logical
//!    arrival times stay near real time, so sustained overload *must* be
//!    policed at the host.)
//! 2. **Logical-arrival regulation** — what does get through is stamped
//!    with logical times spaced `I_min`, so in-contract bursts wait in the
//!    early queue instead of stealing the other channel's slots.
//!
//! Run with: `cargo run --example overload_isolation`

use realtime_router::channels::{
    ChannelManager, ChannelRequest, ChannelSender, Policer, TrafficSpec,
};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::stats::LatencySummary;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::types::time::cycle_to_slot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;
    let mut manager = ChannelManager::new(&config);

    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    // Identical contracts: one message per 16 slots, burst tolerance 2.
    let spec = TrafficSpec { i_min: 16, s_max_bytes: 18, b_max: 2 };
    let good = manager.establish(&topo, ChannelRequest::unicast(src, dst, spec, 48), &mut sim)?;
    let evil = manager.establish(&topo, ChannelRequest::unicast(src, dst, spec, 48), &mut sim)?;

    let clock = sim.chip(src).clock();
    let mut good_sender =
        ChannelSender::new(&good, clock, config.slot_bytes, config.tc_data_bytes());
    let mut evil_sender =
        ChannelSender::new(&evil, clock, config.slot_bytes, config.tc_data_bytes());
    let mut evil_policer = Policer::new(spec);

    let mut evil_generated = 0u64;
    let mut evil_admitted = 0u64;
    let total_slots = 2_000u64;
    for slot in 0..total_slots {
        let now = sim.now();
        if slot % 16 == 0 {
            for p in good_sender.make_message(now, b"on contract") {
                sim.inject_tc(src, p);
            }
        }
        // The flooder generates 4× its contract; the host's policer gates
        // injection.
        if slot % 4 == 0 {
            evil_generated += 1;
            if evil_policer.conforms(slot) {
                evil_admitted += 1;
                for p in evil_sender.make_message(now, b"flooding!!!") {
                    sim.inject_tc(src, p);
                }
            }
        }
        sim.run(config.slot_bytes as u64);
    }
    sim.run(20_000);

    let log = sim.log(dst);
    let slot_bytes = config.slot_bytes;
    let audit = |tag: &[u8]| {
        let packets: Vec<_> = log.tc.iter().filter(|(_, p)| p.payload.starts_with(tag)).collect();
        let misses = packets
            .iter()
            .filter(|(c, p)| cycle_to_slot(*c, slot_bytes) > p.trace.deadline)
            .count();
        let lat = LatencySummary::of(
            &packets.iter().map(|(c, p)| c.saturating_sub(p.trace.injected_at)).collect::<Vec<_>>(),
        );
        (packets.len(), misses, lat.mean)
    };

    let (good_n, good_misses, good_mean) = audit(b"on contract");
    let (evil_n, evil_misses, evil_mean) = audit(b"flooding!!!");

    println!(
        "well-behaved channel: {good_n} delivered, {good_misses} misses, mean latency {good_mean:.0} cycles"
    );
    println!(
        "flooding channel:     generated {evil_generated}, policed down to {evil_admitted} \
         ({}% dropped at the host), {evil_n} delivered, {evil_misses} misses, mean latency {evil_mean:.0} cycles",
        100 * (evil_generated - evil_admitted) / evil_generated
    );
    println!("aliased sorting keys in the network: {}", sim.chip(src).stats().aliased_keys);

    assert_eq!(good_misses, 0, "the flooder must not hurt the conforming channel");
    assert_eq!(evil_misses, 0, "what the policer admits is still guaranteed");
    assert!(
        evil_admitted <= total_slots / 16 + u64::from(spec.b_max) + 1,
        "the policer holds the flooder to its contract"
    );
    println!();
    println!("the conforming channel kept every deadline; the flood never left the host.");
    Ok(())
}
