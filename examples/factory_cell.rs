//! Automated-manufacturing scenario: a cell controller multicasts
//! synchronized motion commands to a group of robot axes (the paper's
//! table-driven multicast, §3.3), with monitoring traffic best-effort.
//!
//! A single injected packet fans out inside the network — each router on
//! the tree forwards one copy per masked output port — so all axes receive
//! the command within the same delay bound.
//!
//! Run with: `cargo run --example factory_cell`

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::workloads::be::BackloggedBeSource;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;
    let mut manager = ChannelManager::new(&config);

    // Cell controller at (0,0); three robot axes across the cell.
    let controller = topo.node_at(0, 0);
    let axes = vec![topo.node_at(3, 0), topo.node_at(2, 2), topo.node_at(3, 3)];

    // One multicast channel: a 20 Hz command burst (every 32 slots) that
    // every axis must receive within 64 slots of its logical arrival.
    let channel = manager.establish(
        &topo,
        ChannelRequest::multicast(controller, axes.clone(), TrafficSpec::periodic(32, 18), 64),
        &mut sim,
    )?;
    println!("multicast tree ({} routers):", channel.hops.len());
    for hop in &channel.hops {
        println!(
            "  node {:>3}  conn {}  d = {:2} slots  out mask {:#07b}",
            hop.node, hop.conn, hop.delay, hop.out_mask
        );
    }

    // Monitoring camera stream (best-effort) from an axis back to the
    // controller — it must not disturb the command channel.
    sim.add_source(axes[1], Box::new(BackloggedBeSource::new(&topo, axes[1], controller, 120, 2)));

    // Send 40 command messages.
    let mut sender = ChannelSender::new(
        &channel,
        sim.chip(controller).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    for k in 0..40u64 {
        let now = sim.now();
        for packet in sender.make_message(now, &[k as u8; 18]) {
            sim.inject_tc(controller, packet);
        }
        sim.run(32 * config.slot_bytes as u64);
    }
    sim.run(5_000);

    println!();
    let mut worst_skew = 0i64;
    for (i, axis) in axes.iter().enumerate() {
        let log = sim.log(*axis);
        let misses = log.tc_deadline_misses(config.slot_bytes);
        println!(
            "axis {} (node {:>3}): received {:2} commands, {} deadline misses",
            i + 1,
            axis,
            log.tc.len(),
            misses
        );
        assert_eq!(misses, 0);
        assert_eq!(log.tc.len(), 40, "every copy of every command arrives");
    }
    // Command skew: the spread of delivery times of the same message
    // across axes (all bounded by the common deadline).
    for k in 0..40usize {
        let times: Vec<i64> = axes.iter().map(|a| sim.log(*a).tc[k].0 as i64).collect();
        worst_skew = worst_skew.max(times.iter().max().unwrap() - times.iter().min().unwrap());
    }
    println!(
        "worst inter-axis command skew: {} cycles ({} slots; bound was {} slots)",
        worst_skew,
        worst_skew / config.slot_bytes as i64,
        channel.request.deadline
    );
    let monitor = sim.log(controller).be.len();
    println!("monitoring stream delivered {monitor} best-effort packets alongside");
    assert!(monitor > 0);
    Ok(())
}
