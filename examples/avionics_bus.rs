//! Avionics scenario (the paper's motivating domain): a flight-control
//! computer exchanges periodic command/status messages with sensor and
//! actuator nodes at different rates and latency bounds, while telemetry
//! and maintenance traffic runs best-effort underneath.
//!
//! Run with: `cargo run --example avionics_bus`

use realtime_router::channels::{ChannelManager, ChannelRequest, ChannelSender, TrafficSpec};
use realtime_router::core::RealTimeRouter;
use realtime_router::mesh::stats::LatencySummary;
use realtime_router::mesh::{Simulator, Topology};
use realtime_router::types::config::RouterConfig;
use realtime_router::workloads::be::{RandomBeSource, SizeDist};
use realtime_router::workloads::patterns::TrafficPattern;
use realtime_router::workloads::tc::PeriodicTcSource;

/// One control loop: name, peer node, message period (slots), end-to-end
/// bound (slots).
struct Loop {
    name: &'static str,
    peer: (u16, u16),
    period: u32,
    bound: u32,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;
    let mut manager = ChannelManager::new(&config);

    // The flight-control computer sits at (1,1); peripherals around it.
    let fcc = topo.node_at(1, 1);
    let loops = [
        Loop { name: "inertial sensor ", peer: (0, 0), period: 8, bound: 24 },
        Loop { name: "elevator actuator", peer: (3, 1), period: 8, bound: 24 },
        Loop { name: "rudder actuator ", peer: (1, 3), period: 16, bound: 40 },
        Loop { name: "engine controller", peer: (3, 3), period: 16, bound: 48 },
        Loop { name: "air-data computer", peer: (0, 2), period: 32, bound: 64 },
    ];

    // Each loop is a channel FCC → peer (commands) established up front —
    // "in most cases, the network can create the required channels before
    // data transfer commences" (§4.1).
    let mut channels = Vec::new();
    for l in &loops {
        let dst = topo.node_at(l.peer.0, l.peer.1);
        let channel = manager.establish(
            &topo,
            ChannelRequest::unicast(fcc, dst, TrafficSpec::periodic(l.period, 18), l.bound),
            &mut sim,
        )?;
        println!(
            "{}  period {:2} slots  bound {:2} slots  route depth {}",
            l.name, l.period, l.bound, channel.depth
        );
        channels.push((l, dst, channel));
    }

    // Periodic command traffic on every loop.
    for (l, _dst, channel) in &channels {
        let sender = ChannelSender::new(
            channel,
            sim.chip(fcc).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            fcc,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(l.period),
                0,
                config.slot_bytes,
                vec![0xC0; config.tc_data_bytes()],
            )),
        );
    }

    // Best-effort telemetry from every node (uniform destinations).
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.15,
                    SizeDist::Uniform(16, 80),
                    0xA1 ^ u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }

    sim.run(120_000); // 6 000 slots ≈ 2.4 ms at the paper's 50 MHz

    println!();
    println!("after 120 000 cycles:");
    let mut total_misses = 0;
    for (l, dst, _) in &channels {
        let log = sim.log(*dst);
        let misses = log.tc_deadline_misses(config.slot_bytes);
        let lat = LatencySummary::of(&log.tc_latencies());
        println!(
            "{}  delivered {:4}  misses {}  latency mean {:6.1} max {:4} cycles",
            l.name,
            log.tc.len(),
            misses,
            lat.mean,
            lat.max
        );
        total_misses += misses;
    }
    let telemetry: usize = topo.nodes().map(|n| sim.log(n).be.len()).sum();
    println!("telemetry (best-effort) packets delivered: {telemetry}");
    assert_eq!(total_misses, 0, "every control loop met every deadline");
    println!("every control loop met every deadline.");
    Ok(())
}
