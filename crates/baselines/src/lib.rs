//! Baseline router designs for comparison (paper §6 "Related Work").
//!
//! Three points on the design spectrum the paper positions itself against:
//!
//! * [`wormhole::WormholeRouter`] — a classic single-class wormhole router
//!   with dimension-ordered routing and round-robin arbitration: the
//!   "modern parallel machine" design with no real-time support at all.
//!   Deadline traffic rides the same best-effort channel as everything
//!   else.
//! * [`priority_vc::PriorityVcRouter`] — two classes with fixed priority:
//!   the high class is packet-switched and always beats best-effort bytes
//!   (flit-level preemption), but within the class service is FIFO — no
//!   deadlines, no logical-arrival regulation. This isolates the value of
//!   the real-time router's deadline scheduling from mere class priority.
//! * [`fifo_sf::FifoSfRouter`] — store-and-forward FIFO for *all* traffic:
//!   the packet-switching strawman of §3.1 ("packet switching would
//!   introduce additional delay to buffer the packet at each hop").
//!
//! All three implement [`rtr_types::chip::Chip`] and run unmodified in the
//! mesh simulator, so every experiment can swap routers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fifo_sf;
pub mod priority_vc;
pub mod wormhole;

pub use fifo_sf::FifoSfRouter;
pub use priority_vc::PriorityVcRouter;
pub use wormhole::WormholeRouter;
