//! A classic single-class wormhole router (baseline).
//!
//! Dimension-ordered routing on header offsets, small per-input flit
//! buffers, round-robin arbitration over the input links, credit-based flow
//! control — and nothing else. Everything travels on the one wormhole
//! channel; packets with deadlines get no preferential treatment, which is
//! exactly what the baseline-comparison experiments measure.

use rtr_core::ports::input::InputPort;
use std::cell::Cell;

use rtr_types::chip::{Chip, ChipIo, WakeStats};
use rtr_types::config::RouterConfig;
use rtr_types::error::ConfigError;
use rtr_types::flit::{BeByte, LinkSymbol};
use rtr_types::ids::{Port, PORT_COUNT};
use rtr_types::packet::{BePacket, PacketTrace};
use rtr_types::time::Cycle;

/// Per-output-port state of the wormhole router.
#[derive(Debug)]
struct Out {
    be_bound: Option<usize>,
    rr_next: usize,
    credits: u32,
    infinite_credit: bool,
}

/// Counters for the wormhole baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct WormholeStats {
    /// Bytes transmitted per output port.
    pub bytes: [u64; PORT_COUNT],
    /// Packets delivered locally.
    pub delivered: u64,
    /// Time-constrained injections rejected (this router has no
    /// time-constrained channel; the harness must encode such traffic as
    /// best-effort packets).
    pub tc_rejected: u64,
}

/// The single-class wormhole baseline router.
#[derive(Debug)]
pub struct WormholeRouter {
    config: RouterConfig,
    inputs: [InputPort; PORT_COUNT],
    outputs: [Out; PORT_COUNT],
    be_inject: Option<(Vec<u8>, usize, PacketTrace)>,
    rx_buf: Vec<u8>,
    rx_trace: Option<PacketTrace>,
    stats: WormholeStats,
    /// `next_event` poll counters (`Cell`: polling takes `&self`).
    wake_polls: Cell<u64>,
    wake_short: Cell<u64>,
}

impl WormholeRouter {
    /// Builds a wormhole router sharing the real-time router's datapath
    /// geometry (flit buffers, pipeline timing).
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RouterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let t = &config.timing;
        let latency =
            t.sync_cycles + t.header_cycles + config.chunk_bytes as u64 + t.bus_grant_cycles;
        let flit = config.be_path_bytes();
        Ok(WormholeRouter {
            inputs: std::array::from_fn(|_| InputPort::new(latency, latency, flit)),
            outputs: std::array::from_fn(|i| Out {
                be_bound: None,
                rr_next: 0,
                credits: flit as u32,
                infinite_credit: i == 0,
            }),
            be_inject: None,
            rx_buf: Vec::new(),
            rx_trace: None,
            stats: WormholeStats::default(),
            wake_polls: Cell::new(0),
            wake_short: Cell::new(0),
            config,
        })
    }

    /// Statistics counters.
    #[must_use]
    pub fn stats(&self) -> &WormholeStats {
        &self.stats
    }

    fn be_pick(&mut self, out_idx: usize, now: Cycle) -> Option<usize> {
        let port = Port::from_index(out_idx);
        if let Some(bound) = self.outputs[out_idx].be_bound {
            return self.inputs[bound].be_front_for(port, now).map(|_| bound);
        }
        let start = self.outputs[out_idx].rr_next;
        for k in 0..PORT_COUNT {
            let i = (start + k) % PORT_COUNT;
            if self.inputs[i].be_front_for(port, now).is_some() {
                self.outputs[out_idx].rr_next = (i + 1) % PORT_COUNT;
                return Some(i);
            }
        }
        None
    }

    fn deliver_byte(&mut self, now: Cycle, byte: BeByte, io: &mut ChipIo) {
        if byte.head {
            self.rx_buf.clear();
            self.rx_trace = byte.trace;
        }
        self.rx_buf.push(byte.byte);
        if byte.tail {
            if let Ok(mut packet) = BePacket::from_wire(&self.rx_buf) {
                packet.trace = self.rx_trace.take().unwrap_or_default();
                self.stats.delivered += 1;
                io.delivered_be.push((now, packet));
            }
            self.rx_buf.clear();
        }
    }
}

impl Chip for WormholeRouter {
    fn tick(&mut self, now: Cycle, io: &mut ChipIo) {
        for idx in 0..PORT_COUNT {
            let bytes = io.credit_in[idx];
            if bytes > 0 && !self.outputs[idx].infinite_credit {
                self.outputs[idx].credits += u32::from(bytes);
            }
        }
        for idx in 1..PORT_COUNT {
            if let Some(symbol) = io.rx[idx].take() {
                match symbol {
                    LinkSymbol::Be(byte) => {
                        self.inputs[idx].push_be(now, byte);
                    }
                    _ => panic!("wormhole baseline received a time-constrained symbol"),
                }
            }
        }
        // This router has no time-constrained channel.
        while io.inject_tc.pop_front().is_some() {
            self.stats.tc_rejected += 1;
        }
        // Injection: one byte per cycle through the local input port.
        if self.be_inject.is_none() {
            if let Some(packet) = io.inject_be.pop_front() {
                self.be_inject = Some((packet.to_wire(), 0, packet.trace));
            }
        }
        if let Some((wire, pos, trace)) = &mut self.be_inject {
            if self.inputs[0].be_free_space() > 0 {
                let head = *pos == 0;
                let tail = *pos == wire.len() - 1;
                let byte = BeByte { byte: wire[*pos], head, tail, trace: head.then_some(*trace) };
                self.inputs[0].push_be(now, byte);
                *pos += 1;
                if *pos == wire.len() {
                    self.be_inject = None;
                }
            }
        }
        // Outputs: round-robin wormhole service.
        for out_idx in 0..PORT_COUNT {
            let has_credit =
                self.outputs[out_idx].infinite_credit || self.outputs[out_idx].credits > 0;
            if !has_credit {
                continue;
            }
            let Some(in_idx) = self.be_pick(out_idx, now) else {
                continue;
            };
            let routed = self.inputs[in_idx].pop_be();
            self.outputs[out_idx].be_bound = (!routed.byte.tail).then_some(in_idx);
            if !self.outputs[out_idx].infinite_credit {
                self.outputs[out_idx].credits -= 1;
            }
            if in_idx != 0 {
                io.credit_out[in_idx] += 1;
            }
            self.stats.bytes[out_idx] += 1;
            if out_idx == 0 {
                self.deliver_byte(now, routed.byte, io);
            } else {
                io.tx[out_idx] = Some(LinkSymbol::Be(routed.byte));
            }
        }
    }

    fn flit_buffer_bytes(&self) -> usize {
        self.config.be_path_bytes()
    }

    fn set_output_credits(&mut self, port: Port, bytes: u32) {
        let out = &mut self.outputs[port.index()];
        if !out.infinite_credit {
            out.credits = bytes;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.wake_polls.set(self.wake_polls.get() + 1);
        if self.be_inject.is_some() {
            self.wake_short.set(self.wake_short.get() + 1);
            return Some(now + 1);
        }
        let mut earliest: Option<Cycle> = None;
        for input in &self.inputs {
            if let Some(head) = input.be_head() {
                let out = &self.outputs[head.out.index()];
                if head.ready_at > now {
                    let at = head.ready_at;
                    earliest = Some(earliest.map_or(at, |e: Cycle| e.min(at)));
                } else if out.infinite_credit || out.credits > 0 {
                    // Ready and sendable next cycle; a credit-starved byte
                    // stays frozen until an external credit arrives.
                    self.wake_short.set(self.wake_short.get() + 1);
                    return Some(now + 1);
                }
            }
        }
        if earliest == Some(now + 1) {
            self.wake_short.set(self.wake_short.get() + 1);
        }
        earliest
    }

    fn skip_quiet(&mut self, _from: Cycle, _to: Cycle) {
        // Sparse ticking and leaps skip this chip's quiet cycles entirely;
        // every counter here is event-based (delivered/bytes), so a skipped
        // span needs no reconciliation.
    }

    fn wake_stats(&self) -> Option<WakeStats> {
        Some(WakeStats {
            polls: self.wake_polls.get(),
            short_polls: self.wake_short.get(),
            ..Default::default()
        })
    }

    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("wormhole.bytes", self.stats.bytes.iter().sum());
        emit("wormhole.delivered", self.stats.delivered);
        emit("wormhole.tc_rejected", self.stats.tc_rejected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_mesh::{Simulator, Topology};
    use rtr_types::ids::NodeId;

    #[test]
    fn forwards_across_a_mesh() {
        let topo = Topology::mesh(3, 3);
        let mut sim =
            Simulator::build(topo.clone(), |_| WormholeRouter::new(RouterConfig::default()))
                .unwrap();
        let src = topo.node_at(0, 0);
        let dst = topo.node_at(2, 2);
        let (x, y) = topo.be_offsets(src, dst);
        sim.inject_be(
            src,
            BePacket::new(
                x,
                y,
                vec![0x77; 40],
                PacketTrace {
                    source: src,
                    destination: dst,
                    injected_at: 0,
                    ..PacketTrace::default()
                },
            ),
        );
        assert!(sim.run_until(5000, |s| !s.log(dst).be.is_empty()));
        assert_eq!(sim.log(dst).be[0].1.payload.len(), 40);
    }

    #[test]
    fn latency_is_linear_in_packet_length() {
        // Same shape as the paper's Experiment 1, on the plain wormhole
        // baseline: latency = overhead + b.
        let measure = |b: usize| -> Cycle {
            let topo = Topology::mesh(2, 1);
            let mut sim =
                Simulator::build(topo.clone(), |_| WormholeRouter::new(RouterConfig::default()))
                    .unwrap();
            let dst = topo.node_at(1, 0);
            sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![0; b], PacketTrace::default()));
            assert!(sim.run_until(10_000, |s| !s.log(dst).be.is_empty()));
            sim.log(dst).be[0].0
        };
        let l16 = measure(16);
        let l64 = measure(64);
        assert_eq!(l64 - l16, 48, "one extra cycle per extra byte");
    }

    #[test]
    fn tc_injections_are_rejected() {
        let mut r = WormholeRouter::new(RouterConfig::default()).unwrap();
        let mut io = ChipIo::new();
        io.inject_tc.push_back(rtr_types::packet::TcPacket {
            conn: rtr_types::ids::ConnectionId(0),
            arrival: rtr_types::clock::SlotClock::new(8).wrap(0),
            payload: vec![0; 18].into(),
            trace: PacketTrace::default(),
        });
        io.begin_cycle();
        r.tick(0, &mut io);
        assert_eq!(r.stats().tc_rejected, 1);
        assert!(io.inject_tc.is_empty());
    }
}
