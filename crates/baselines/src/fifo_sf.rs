//! A store-and-forward FIFO router (baseline; the §3.1 strawman).
//!
//! Every packet — both classes — is fully buffered at each hop, then queued
//! FIFO at its output port and retransmitted. This is the design the paper
//! contrasts wormhole switching against: per-hop latency grows by the full
//! packet length, and intermediate nodes need whole-packet buffers (this
//! model advertises a large input buffer so long packets fit).

use std::collections::VecDeque;

use rtr_core::conn_table::{ConnEntry, ConnectionTable, TableError};
use std::cell::Cell;

use rtr_types::chip::{Chip, ChipIo, WakeStats};
use rtr_types::clock::SlotClock;
use rtr_types::config::RouterConfig;
use rtr_types::error::ConfigError;
use rtr_types::flit::{BeByte, LinkSymbol};
use rtr_types::ids::{ConnectionId, Port, PORT_COUNT};
use rtr_types::packet::{BeHeader, BePacket, PacketTrace, TcPacket};
use rtr_types::time::Cycle;

/// A packet queued at an output port.
#[derive(Debug, Clone)]
enum Queued {
    Tc(TcPacket),
    Be(BePacket),
}

/// A transmission in progress.
#[derive(Debug)]
struct InFlight {
    packet: Queued,
    wire: Vec<u8>,
    sent: usize,
}

/// Per-input best-effort reassembly.
#[derive(Debug, Default)]
struct BeAssembly {
    buf: Vec<u8>,
    trace: Option<PacketTrace>,
}

/// Counters for the store-and-forward baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoSfStats {
    /// Packets transmitted per output port (both classes).
    pub transmitted: [u64; PORT_COUNT],
    /// Packets delivered locally (both classes).
    pub delivered: u64,
    /// Packets dropped (no table entry or malformed).
    pub dropped: u64,
}

/// The store-and-forward FIFO baseline router.
#[derive(Debug)]
pub struct FifoSfRouter {
    config: RouterConfig,
    clock: SlotClock,
    table: ConnectionTable,
    input_buffer_bytes: usize,
    /// Per-hop processing latency applied after full reception.
    hop_latency: Cycle,
    /// Time-constrained reassembly per input: packet and remaining symbols.
    tc_rx: [Option<(TcPacket, usize)>; PORT_COUNT],
    be_rx: [BeAssembly; PORT_COUNT],
    /// Packets waiting out the hop latency before queueing: (ready, port
    /// mask or DOR target, packet).
    pending: VecDeque<(Cycle, Queued)>,
    queues: [VecDeque<Queued>; PORT_COUNT],
    tx: [Option<InFlight>; PORT_COUNT],
    credits: [u32; PORT_COUNT],
    tc_inject_remaining: Option<usize>,
    be_inject: Option<(Vec<u8>, usize, PacketTrace)>,
    stats: FifoSfStats,
    /// `next_event` poll counters (`Cell`: polling takes `&self`).
    wake_polls: Cell<u64>,
    wake_short: Cell<u64>,
}

impl FifoSfRouter {
    /// Builds a store-and-forward router. Inputs buffer whole packets, so
    /// the advertised flit buffer is `input_buffer_bytes` (default 4096).
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RouterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let t = &config.timing;
        let hop_latency = t.sync_cycles + t.header_cycles + t.bus_grant_cycles;
        Ok(FifoSfRouter {
            clock: SlotClock::new(config.clock_bits),
            table: ConnectionTable::new(config.connections),
            input_buffer_bytes: 4096,
            hop_latency,
            tc_rx: Default::default(),
            be_rx: Default::default(),
            pending: VecDeque::new(),
            queues: std::array::from_fn(|_| VecDeque::new()),
            tx: Default::default(),
            credits: [4096; PORT_COUNT],
            tc_inject_remaining: None,
            be_inject: None,
            stats: FifoSfStats::default(),
            wake_polls: Cell::new(0),
            wake_short: Cell::new(0),
            config,
        })
    }

    /// Installs a routing-table entry for time-constrained connections.
    ///
    /// # Errors
    ///
    /// Propagates the table's validation error.
    pub fn install(
        &mut self,
        incoming: ConnectionId,
        outgoing: ConnectionId,
        out_mask: u8,
    ) -> Result<(), TableError> {
        self.table.install(incoming, ConnEntry { outgoing, delay: 0, out_mask }, &self.clock)
    }

    /// Statistics counters.
    #[must_use]
    pub fn stats(&self) -> &FifoSfStats {
        &self.stats
    }

    /// The router's architectural parameters.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    fn finish_tc_rx(&mut self, now: Cycle, packet: TcPacket) {
        self.pending.push_back((now + self.hop_latency, Queued::Tc(packet)));
    }

    fn ingest_be_byte(&mut self, now: Cycle, idx: usize, byte: BeByte) {
        let asm = &mut self.be_rx[idx];
        if byte.head {
            asm.buf.clear();
            asm.trace = byte.trace;
        }
        asm.buf.push(byte.byte);
        if byte.tail {
            match BePacket::from_wire(&asm.buf) {
                Ok(mut packet) => {
                    packet.trace = asm.trace.take().unwrap_or_default();
                    self.pending.push_back((now + self.hop_latency, Queued::Be(packet)));
                }
                Err(_) => self.stats.dropped += 1,
            }
            asm.buf.clear();
        }
    }

    fn route_pending(&mut self, now: Cycle) {
        while let Some((ready, _)) = self.pending.front() {
            if *ready > now {
                break;
            }
            let (_, queued) = self.pending.pop_front().unwrap();
            match queued {
                Queued::Tc(packet) => {
                    let Some(entry) = self.table.lookup(packet.conn) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    let rewritten = TcPacket { conn: entry.outgoing, ..packet };
                    for port in rtr_types::ids::ports_in_mask(entry.out_mask) {
                        self.queues[port.index()].push_back(Queued::Tc(rewritten.clone()));
                    }
                }
                Queued::Be(packet) => {
                    let (port, header) = packet.header.dimension_ordered_step();
                    let stepped = BePacket {
                        header: BeHeader { length: packet.header.length, ..header },
                        ..packet
                    };
                    self.queues[port.index()].push_back(Queued::Be(stepped));
                }
            }
        }
    }

    fn drive_output(&mut self, now: Cycle, out_idx: usize, io: &mut ChipIo) {
        if self.tx[out_idx].is_none() {
            if let Some(next) = self.queues[out_idx].pop_front() {
                // Best-effort transmissions respect downstream buffering.
                if matches!(next, Queued::Be(_)) && out_idx != 0 {
                    let len = match &next {
                        Queued::Be(p) => p.wire_len() as u32,
                        Queued::Tc(_) => unreachable!(),
                    };
                    if self.credits[out_idx] < len {
                        self.queues[out_idx].push_front(next);
                        return;
                    }
                    self.credits[out_idx] -= len;
                }
                let wire = match &next {
                    Queued::Tc(p) => p.to_wire().unwrap_or_default(),
                    Queued::Be(p) => p.to_wire(),
                };
                self.stats.transmitted[out_idx] += 1;
                self.tx[out_idx] = Some(InFlight { packet: next, wire, sent: 0 });
            } else {
                return;
            }
        }
        let inflight = self.tx[out_idx].as_mut().expect("transmission just ensured");
        let pos = inflight.sent;
        let last = pos == inflight.wire.len() - 1;
        if out_idx != 0 {
            let symbol = match &inflight.packet {
                Queued::Tc(p) => {
                    if pos == 0 {
                        LinkSymbol::TcStart(Box::new(p.clone()))
                    } else {
                        LinkSymbol::TcCont { index: pos as u8 }
                    }
                }
                Queued::Be(p) => LinkSymbol::Be(BeByte {
                    byte: inflight.wire[pos],
                    head: pos == 0,
                    tail: last,
                    trace: (pos == 0).then_some(p.trace),
                }),
            };
            io.tx[out_idx] = Some(symbol);
        }
        inflight.sent += 1;
        if last {
            let done = self.tx[out_idx].take().unwrap();
            if out_idx == 0 {
                self.stats.delivered += 1;
                match done.packet {
                    Queued::Tc(p) => io.delivered_tc.push((now, p)),
                    Queued::Be(p) => io.delivered_be.push((now, p)),
                }
            }
        }
    }
}

impl Chip for FifoSfRouter {
    fn tick(&mut self, now: Cycle, io: &mut ChipIo) {
        for idx in 0..PORT_COUNT {
            self.credits[idx] += u32::from(io.credit_in[idx]);
        }
        for idx in 1..PORT_COUNT {
            if let Some(symbol) = io.rx[idx].take() {
                match symbol {
                    LinkSymbol::TcStart(packet) => {
                        let remaining = packet.wire_len() - 1;
                        if remaining == 0 {
                            self.finish_tc_rx(now, *packet);
                        } else {
                            self.tc_rx[idx] = Some((*packet, remaining));
                        }
                        // Return whole-packet credit on receipt completion
                        // (below) — head bytes carry no credit.
                    }
                    LinkSymbol::TcCont { .. } => {
                        if let Some((packet, remaining)) = self.tc_rx[idx].take() {
                            if remaining == 1 {
                                self.finish_tc_rx(now, packet);
                            } else {
                                self.tc_rx[idx] = Some((packet, remaining - 1));
                            }
                        }
                    }
                    LinkSymbol::Be(byte) => {
                        let was_tail = byte.tail;
                        let len_hint = self.be_rx[idx].buf.len() as u16 + 1;
                        self.ingest_be_byte(now, idx, byte);
                        if was_tail {
                            // Free the whole packet's worth of buffer.
                            io.credit_out[idx] += len_hint;
                        }
                    }
                }
            }
        }
        // Injection (one byte per cycle per class, like the other routers).
        if let Some(remaining) = self.tc_inject_remaining {
            self.tc_inject_remaining = if remaining == 1 { None } else { Some(remaining - 1) };
        } else if let Some(packet) = io.inject_tc.pop_front() {
            let remaining = packet.wire_len() - 1;
            // Model the serial transfer then hand the whole packet over.
            self.pending
                .push_back((now + remaining as Cycle + self.hop_latency, Queued::Tc(packet)));
            self.tc_inject_remaining = (remaining > 0).then_some(remaining);
        }
        if self.be_inject.is_none() {
            if let Some(packet) = io.inject_be.pop_front() {
                let wire_len = packet.wire_len();
                self.pending.push_back((
                    now + wire_len as Cycle - 1 + self.hop_latency,
                    Queued::Be(packet),
                ));
                self.be_inject = Some((vec![0; wire_len], 1, PacketTrace::default()));
            }
        }
        if let Some((wire, pos, _)) = &mut self.be_inject {
            *pos += 1;
            if *pos >= wire.len() {
                self.be_inject = None;
            }
        }
        self.route_pending(now);
        for out_idx in 0..PORT_COUNT {
            self.drive_output(now, out_idx, io);
        }
    }

    fn flit_buffer_bytes(&self) -> usize {
        self.input_buffer_bytes
    }

    fn set_output_credits(&mut self, port: Port, bytes: u32) {
        if port != Port::Local {
            self.credits[port.index()] = bytes;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.wake_polls.set(self.wake_polls.get() + 1);
        // In-progress injections, receptions, transmissions, and queued
        // packets all make (or may make) progress every cycle. Partial
        // best-effort reassembly waits on the next link byte, so it is not
        // an event source.
        let active = self.tc_inject_remaining.is_some()
            || self.be_inject.is_some()
            || self.tc_rx.iter().any(Option::is_some)
            || self.tx.iter().any(Option::is_some)
            || self.queues.iter().any(|q| !q.is_empty());
        if active {
            self.wake_short.set(self.wake_short.get() + 1);
            return Some(now + 1);
        }
        // Only the hop-latency pipeline remains: its FIFO head gates.
        let wake = self.pending.front().map(|(ready, _)| (*ready).max(now + 1));
        if wake == Some(now + 1) {
            self.wake_short.set(self.wake_short.get() + 1);
        }
        wake
    }

    fn skip_quiet(&mut self, _from: Cycle, _to: Cycle) {
        // Sparse ticking and leaps skip this chip's quiet cycles entirely;
        // every counter here is event-based (transmitted/delivered/
        // dropped), so a skipped span needs no reconciliation.
    }

    fn wake_stats(&self) -> Option<WakeStats> {
        Some(WakeStats {
            polls: self.wake_polls.get(),
            short_polls: self.wake_short.get(),
            ..Default::default()
        })
    }

    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("fifo_sf.transmitted", self.stats.transmitted.iter().sum());
        emit("fifo_sf.delivered", self.stats.delivered);
        emit("fifo_sf.dropped", self.stats.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_mesh::{Simulator, Topology};
    use rtr_types::ids::{Direction, NodeId};

    #[test]
    fn be_store_and_forward_latency_grows_per_hop() {
        // Measure a b-byte packet over 1 hop vs 2 hops: store-and-forward
        // adds ≈ b cycles per extra hop (the §3.1 contrast with wormhole's
        // constant per-hop cost).
        let measure = |hops: u16, b: usize| -> Cycle {
            let topo = Topology::mesh(hops + 1, 1);
            let mut sim =
                Simulator::build(topo.clone(), |_| FifoSfRouter::new(RouterConfig::default()))
                    .unwrap();
            let dst = topo.node_at(hops, 0);
            sim.inject_be(
                NodeId(0),
                BePacket::new(hops as i8, 0, vec![0; b], PacketTrace::default()),
            );
            assert!(sim.run_until(20_000, |s| !s.log(dst).be.is_empty()));
            sim.log(dst).be[0].0
        };
        let b = 100;
        let one = measure(1, b);
        let two = measure(2, b);
        let extra = two - one;
        assert!(
            extra as i64 >= b as i64 && extra < (b + 20) as u64,
            "store-and-forward must pay ≈ packet length per hop, paid {extra}"
        );
    }

    #[test]
    fn tc_packets_route_by_table() {
        let topo = Topology::mesh(2, 1);
        let mut sim =
            Simulator::build(topo.clone(), |_| FifoSfRouter::new(RouterConfig::default())).unwrap();
        let src = topo.node_at(0, 0);
        let dst = topo.node_at(1, 0);
        sim.chip_mut(src)
            .install(ConnectionId(1), ConnectionId(2), Port::Dir(Direction::XPlus).mask())
            .unwrap();
        sim.chip_mut(dst).install(ConnectionId(2), ConnectionId(2), Port::Local.mask()).unwrap();
        sim.inject_tc(
            src,
            TcPacket {
                conn: ConnectionId(1),
                arrival: SlotClock::new(8).wrap(0),
                payload: vec![0x42; 18].into(),
                trace: PacketTrace::default(),
            },
        );
        assert!(sim.run_until(3000, |s| !s.log(dst).tc.is_empty()));
        assert_eq!(sim.log(dst).tc[0].1.payload[0], 0x42);
    }

    #[test]
    fn fifo_has_no_deadline_awareness() {
        // Two packets with reversed deadline order still deliver FIFO.
        let mut r = FifoSfRouter::new(RouterConfig::default()).unwrap();
        r.install(ConnectionId(1), ConnectionId(1), Port::Local.mask()).unwrap();
        let mut io = ChipIo::new();
        let mk = |tag: u8| TcPacket {
            conn: ConnectionId(1),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![tag; 18].into(),
            trace: PacketTrace::default(),
        };
        io.inject_tc.push_back(mk(1)); // later deadline, injected first
        io.inject_tc.push_back(mk(2)); // earlier deadline, injected second
        for now in 0..500 {
            io.begin_cycle();
            r.tick(now, &mut io);
        }
        assert_eq!(io.delivered_tc.len(), 2);
        assert_eq!(io.delivered_tc[0].1.payload[0], 1);
    }
}
