//! A fixed-priority two-class router (baseline; §6's virtual-channel
//! priority schemes).
//!
//! Like the real-time router, the high-priority class is packet-switched
//! with table-driven routing and preempts best-effort bytes at byte
//! granularity. Unlike the real-time router, service within the class is
//! **FIFO**: no deadlines, no logical-arrival regulation, no horizon. This
//! isolates exactly what deadline-driven scheduling buys — class priority
//! alone cannot differentiate packets with different latency tolerances,
//! and unregulated high-priority traffic can starve its own class.

use std::collections::VecDeque;

use rtr_core::conn_table::{ConnEntry, ConnectionTable, TableError};
use rtr_core::memory::{PacketMemory, SlotAddr};
use rtr_core::ports::input::InputPort;
use std::cell::Cell;

use rtr_types::chip::{Chip, ChipIo, WakeStats};
use rtr_types::clock::SlotClock;
use rtr_types::config::RouterConfig;
use rtr_types::error::ConfigError;
use rtr_types::flit::{BeByte, LinkSymbol};
use rtr_types::ids::{ConnectionId, Port, PORT_COUNT};
use rtr_types::packet::{BePacket, PacketTrace, TcPacket};
use rtr_types::time::Cycle;

/// Counters for the priority-VC baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityVcStats {
    /// High-class packets transmitted per output port.
    pub tc_transmitted: [u64; PORT_COUNT],
    /// High-class packets delivered locally.
    pub tc_delivered: u64,
    /// High-class packets dropped (no table entry or no buffer).
    pub tc_dropped: u64,
    /// Best-effort bytes transmitted per output port.
    pub be_bytes: [u64; PORT_COUNT],
    /// Best-effort packets delivered locally.
    pub be_delivered: u64,
}

#[derive(Debug)]
struct Out {
    tc_tx: Option<(TcPacket, usize, usize)>, // packet, sent, total
    be_bound: Option<usize>,
    rr_next: usize,
    credits: u32,
    infinite_credit: bool,
}

/// The fixed-priority two-class baseline router.
#[derive(Debug)]
pub struct PriorityVcRouter {
    config: RouterConfig,
    clock: SlotClock,
    table: ConnectionTable,
    memory: PacketMemory,
    /// FIFO of buffered high-class packets per output port.
    queues: [VecDeque<SlotAddr>; PORT_COUNT],
    /// Remaining output-port mask per memory slot (multicast refcount).
    remaining: Vec<u8>,
    inputs: [InputPort; PORT_COUNT],
    outputs: [Out; PORT_COUNT],
    tc_inject_remaining: Option<usize>,
    be_inject: Option<(Vec<u8>, usize, PacketTrace)>,
    rx_buf: Vec<u8>,
    rx_trace: Option<PacketTrace>,
    stats: PriorityVcStats,
    /// `next_event` poll counters (`Cell`: polling takes `&self`).
    wake_polls: Cell<u64>,
    wake_short: Cell<u64>,
}

impl PriorityVcRouter {
    /// Builds a priority-VC router with the same datapath geometry as the
    /// real-time router.
    ///
    /// # Errors
    ///
    /// Returns the configuration's validation error, if any.
    pub fn new(config: RouterConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let t = &config.timing;
        let be_latency =
            t.sync_cycles + t.header_cycles + config.chunk_bytes as u64 + t.bus_grant_cycles;
        let store_chunks = config.slot_bytes.div_ceil(config.memory_chunk_bytes) as u64;
        let tc_latency = t.sync_cycles + t.header_cycles + store_chunks * t.bus_grant_cycles;
        let flit = config.be_path_bytes();
        Ok(PriorityVcRouter {
            clock: SlotClock::new(config.clock_bits),
            table: ConnectionTable::new(config.connections),
            memory: PacketMemory::new(config.packet_slots),
            queues: std::array::from_fn(|_| VecDeque::new()),
            remaining: vec![0; config.packet_slots],
            inputs: std::array::from_fn(|_| InputPort::new(be_latency, tc_latency, flit)),
            outputs: std::array::from_fn(|i| Out {
                tc_tx: None,
                be_bound: None,
                rr_next: 0,
                credits: flit as u32,
                infinite_credit: i == 0,
            }),
            tc_inject_remaining: None,
            be_inject: None,
            rx_buf: Vec::new(),
            rx_trace: None,
            stats: PriorityVcStats::default(),
            wake_polls: Cell::new(0),
            wake_short: Cell::new(0),
            config,
        })
    }

    /// Installs a routing-table entry (this baseline keeps table-driven
    /// routing but ignores delay bounds).
    ///
    /// # Errors
    ///
    /// Propagates the table's validation error.
    pub fn install(
        &mut self,
        incoming: ConnectionId,
        outgoing: ConnectionId,
        out_mask: u8,
    ) -> Result<(), TableError> {
        self.table.install(incoming, ConnEntry { outgoing, delay: 0, out_mask }, &self.clock)
    }

    /// Statistics counters.
    #[must_use]
    pub fn stats(&self) -> &PriorityVcStats {
        &self.stats
    }

    fn process_arrivals(&mut self, now: Cycle) {
        for idx in 0..PORT_COUNT {
            let Some(packet) = self.inputs[idx].take_ready_tc(now) else {
                continue;
            };
            let Some(entry) = self.table.lookup(packet.conn) else {
                self.stats.tc_dropped += 1;
                continue;
            };
            let rewritten = TcPacket { conn: entry.outgoing, ..packet };
            let addr = match self.memory.store(rewritten) {
                Ok(addr) => addr,
                Err(_) => {
                    self.stats.tc_dropped += 1;
                    continue;
                }
            };
            self.remaining[addr.index()] = entry.out_mask;
            for port in rtr_types::ids::ports_in_mask(entry.out_mask) {
                self.queues[port.index()].push_back(addr);
            }
        }
    }

    fn be_pick(&mut self, out_idx: usize, now: Cycle) -> Option<usize> {
        let port = Port::from_index(out_idx);
        if let Some(bound) = self.outputs[out_idx].be_bound {
            return self.inputs[bound].be_front_for(port, now).map(|_| bound);
        }
        let start = self.outputs[out_idx].rr_next;
        for k in 0..PORT_COUNT {
            let i = (start + k) % PORT_COUNT;
            if self.inputs[i].be_front_for(port, now).is_some() {
                self.outputs[out_idx].rr_next = (i + 1) % PORT_COUNT;
                return Some(i);
            }
        }
        None
    }

    fn deliver_be_byte(&mut self, now: Cycle, byte: BeByte, io: &mut ChipIo) {
        if byte.head {
            self.rx_buf.clear();
            self.rx_trace = byte.trace;
        }
        self.rx_buf.push(byte.byte);
        if byte.tail {
            if let Ok(mut packet) = BePacket::from_wire(&self.rx_buf) {
                packet.trace = self.rx_trace.take().unwrap_or_default();
                self.stats.be_delivered += 1;
                io.delivered_be.push((now, packet));
            }
            self.rx_buf.clear();
        }
    }

    fn drive_output(&mut self, now: Cycle, out_idx: usize, io: &mut ChipIo) {
        // Continue a high-class transmission.
        if let Some((packet, sent, total)) = self.outputs[out_idx].tc_tx.take() {
            if out_idx != 0 {
                io.tx[out_idx] = Some(LinkSymbol::TcCont { index: sent as u8 });
            }
            if sent + 1 == total {
                if out_idx == 0 {
                    self.stats.tc_delivered += 1;
                    io.delivered_tc.push((now, packet));
                }
            } else {
                self.outputs[out_idx].tc_tx = Some((packet, sent + 1, total));
            }
            return;
        }
        // Start the FIFO head, preempting best-effort traffic.
        if let Some(addr) = self.queues[out_idx].pop_front() {
            let packet =
                self.memory.peek(addr).expect("queued address points at an idle slot").clone();
            self.remaining[addr.index()] &= !Port::from_index(out_idx).mask();
            if self.remaining[addr.index()] == 0 {
                self.memory.free(addr);
            }
            self.stats.tc_transmitted[out_idx] += 1;
            let total = packet.wire_len();
            if out_idx != 0 {
                io.tx[out_idx] = Some(LinkSymbol::TcStart(Box::new(packet.clone())));
            }
            if total == 1 {
                if out_idx == 0 {
                    self.stats.tc_delivered += 1;
                    io.delivered_tc.push((now, packet));
                }
            } else {
                self.outputs[out_idx].tc_tx = Some((packet, 1, total));
            }
            return;
        }
        // Best-effort service.
        let has_credit = self.outputs[out_idx].infinite_credit || self.outputs[out_idx].credits > 0;
        if has_credit {
            if let Some(in_idx) = self.be_pick(out_idx, now) {
                let routed = self.inputs[in_idx].pop_be();
                self.outputs[out_idx].be_bound = (!routed.byte.tail).then_some(in_idx);
                if !self.outputs[out_idx].infinite_credit {
                    self.outputs[out_idx].credits -= 1;
                }
                if in_idx != 0 {
                    io.credit_out[in_idx] += 1;
                }
                self.stats.be_bytes[out_idx] += 1;
                if out_idx == 0 {
                    self.deliver_be_byte(now, routed.byte, io);
                } else {
                    io.tx[out_idx] = Some(LinkSymbol::Be(routed.byte));
                }
            }
        }
    }
}

impl Chip for PriorityVcRouter {
    fn tick(&mut self, now: Cycle, io: &mut ChipIo) {
        for idx in 0..PORT_COUNT {
            let bytes = io.credit_in[idx];
            if bytes > 0 && !self.outputs[idx].infinite_credit {
                self.outputs[idx].credits += u32::from(bytes);
            }
        }
        for idx in 1..PORT_COUNT {
            if let Some(symbol) = io.rx[idx].take() {
                // The baselines run only fault-free scenarios, so the
                // torn-frame outcomes the shared port reports are unused.
                match symbol {
                    LinkSymbol::TcStart(packet) => {
                        self.inputs[idx].push_tc_start(now, *packet);
                    }
                    LinkSymbol::TcCont { .. } => {
                        self.inputs[idx].push_tc_cont(now);
                    }
                    LinkSymbol::Be(byte) => {
                        self.inputs[idx].push_be(now, byte);
                    }
                }
            }
        }
        // High-class injection: one byte per cycle.
        if let Some(remaining) = self.tc_inject_remaining {
            self.inputs[0].push_tc_cont(now);
            self.tc_inject_remaining = if remaining == 1 { None } else { Some(remaining - 1) };
        } else if let Some(packet) = io.inject_tc.pop_front() {
            let remaining = packet.wire_len() - 1;
            self.inputs[0].push_tc_start(now, packet);
            self.tc_inject_remaining = (remaining > 0).then_some(remaining);
        }
        // Best-effort injection.
        if self.be_inject.is_none() {
            if let Some(packet) = io.inject_be.pop_front() {
                self.be_inject = Some((packet.to_wire(), 0, packet.trace));
            }
        }
        if let Some((wire, pos, trace)) = &mut self.be_inject {
            if self.inputs[0].be_free_space() > 0 {
                let head = *pos == 0;
                let tail = *pos == wire.len() - 1;
                let byte = BeByte { byte: wire[*pos], head, tail, trace: head.then_some(*trace) };
                self.inputs[0].push_be(now, byte);
                *pos += 1;
                if *pos == wire.len() {
                    self.be_inject = None;
                }
            }
        }
        self.process_arrivals(now);
        for out_idx in 0..PORT_COUNT {
            self.drive_output(now, out_idx, io);
        }
    }

    fn flit_buffer_bytes(&self) -> usize {
        self.config.be_path_bytes()
    }

    fn set_output_credits(&mut self, port: Port, bytes: u32) {
        let out = &mut self.outputs[port.index()];
        if !out.infinite_credit {
            out.credits = bytes;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.wake_polls.set(self.wake_polls.get() + 1);
        let active = self.tc_inject_remaining.is_some()
            || self.be_inject.is_some()
            || self.inputs.iter().any(InputPort::tc_rx_active)
            || self.outputs.iter().any(|out| out.tc_tx.is_some())
            || self.queues.iter().any(|q| !q.is_empty());
        if active {
            self.wake_short.set(self.wake_short.get() + 1);
            return Some(now + 1);
        }
        let mut earliest: Option<Cycle> = None;
        let mut merge = |at: Cycle| {
            let at = at.max(now + 1);
            earliest = Some(earliest.map_or(at, |e: Cycle| e.min(at)));
        };
        for input in &self.inputs {
            if let Some(ready) = input.next_tc_ready() {
                merge(ready);
            }
            if let Some(head) = input.be_head() {
                let out = &self.outputs[head.out.index()];
                if head.ready_at > now {
                    merge(head.ready_at);
                } else if out.infinite_credit || out.credits > 0 {
                    // Ready and sendable next cycle; a credit-starved byte
                    // stays frozen until an external credit arrives.
                    self.wake_short.set(self.wake_short.get() + 1);
                    return Some(now + 1);
                }
            }
        }
        if earliest == Some(now + 1) {
            self.wake_short.set(self.wake_short.get() + 1);
        }
        earliest
    }

    fn skip_quiet(&mut self, _from: Cycle, _to: Cycle) {
        // Sparse ticking and leaps skip this chip's quiet cycles entirely;
        // every counter here is event-based (delivered/dropped/bytes), so a
        // skipped span needs no reconciliation.
    }

    fn wake_stats(&self) -> Option<WakeStats> {
        Some(WakeStats {
            polls: self.wake_polls.get(),
            short_polls: self.wake_short.get(),
            ..Default::default()
        })
    }

    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("priority_vc.tc_transmitted", self.stats.tc_transmitted.iter().sum());
        emit("priority_vc.tc_delivered", self.stats.tc_delivered);
        emit("priority_vc.tc_dropped", self.stats.tc_dropped);
        emit("priority_vc.be_bytes", self.stats.be_bytes.iter().sum());
        emit("priority_vc.be_delivered", self.stats.be_delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_mesh::{Simulator, Topology};
    use rtr_types::ids::Direction;

    fn packet(conn: u16, payload: u8) -> TcPacket {
        TcPacket {
            conn: ConnectionId(conn),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![payload; 18].into(),
            trace: PacketTrace::default(),
        }
    }

    #[test]
    fn fifo_order_within_class() {
        let mut r = PriorityVcRouter::new(RouterConfig::default()).unwrap();
        r.install(ConnectionId(1), ConnectionId(1), Port::Local.mask()).unwrap();
        let mut io = ChipIo::new();
        io.inject_tc.push_back(packet(1, 0xA));
        io.inject_tc.push_back(packet(1, 0xB));
        for now in 0..400 {
            io.begin_cycle();
            r.tick(now, &mut io);
        }
        assert_eq!(io.delivered_tc.len(), 2);
        assert_eq!(io.delivered_tc[0].1.payload[0], 0xA);
        assert_eq!(io.delivered_tc[1].1.payload[0], 0xB, "FIFO preserves order");
    }

    #[test]
    fn high_class_preempts_best_effort() {
        let topo = Topology::mesh(2, 1);
        let mut sim =
            Simulator::build(topo.clone(), |_| PriorityVcRouter::new(RouterConfig::default()))
                .unwrap();
        let src = topo.node_at(0, 0);
        let dst = topo.node_at(1, 0);
        sim.chip_mut(src)
            .install(ConnectionId(1), ConnectionId(1), Port::Dir(Direction::XPlus).mask())
            .unwrap();
        sim.chip_mut(dst).install(ConnectionId(1), ConnectionId(1), Port::Local.mask()).unwrap();
        // A long best-effort stream plus one high-class packet.
        sim.inject_be(src, BePacket::new(1, 0, vec![0; 400], PacketTrace::default()));
        sim.run(100);
        sim.inject_tc(src, packet(1, 0xEE));
        assert!(sim.run_until(3000, |s| !s.log(dst).tc.is_empty()));
        let tc_cycle = sim.log(dst).tc[0].0;
        assert!(
            sim.log(dst).be.is_empty() || sim.log(dst).be[0].0 > tc_cycle,
            "the high-class packet must not wait for the 400-byte stream"
        );
    }

    #[test]
    fn multicast_shares_the_memory_slot() {
        let mut r = PriorityVcRouter::new(RouterConfig::default()).unwrap();
        let mask = Port::Dir(Direction::XPlus).mask() | Port::Local.mask();
        r.install(ConnectionId(1), ConnectionId(1), mask).unwrap();
        let mut io = ChipIo::new();
        io.inject_tc.push_back(packet(1, 0x5C));
        let mut starts = 0;
        for now in 0..400 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if matches!(io.tx[Port::Dir(Direction::XPlus).index()], Some(LinkSymbol::TcStart(_))) {
                starts += 1;
            }
            io.tx = Default::default();
        }
        assert_eq!(starts, 1, "one copy per masked port");
        assert_eq!(io.delivered_tc.len(), 1, "local copy delivered");
        assert_eq!(r.stats().tc_transmitted.iter().sum::<u64>(), 2);
    }

    #[test]
    fn credits_gate_best_effort_like_the_real_router() {
        let mut r = PriorityVcRouter::new(RouterConfig::default()).unwrap();
        r.set_output_credits(Port::Dir(Direction::XPlus), 2);
        let mut io = ChipIo::new();
        io.inject_be.push_back(BePacket::new(1, 0, vec![0; 30], PacketTrace::default()));
        let mut sent = 0;
        for now in 0..500 {
            io.begin_cycle();
            r.tick(now, &mut io);
            if matches!(io.tx[Port::Dir(Direction::XPlus).index()], Some(LinkSymbol::Be(_))) {
                sent += 1;
            }
            io.tx = Default::default();
        }
        assert_eq!(sent, 2, "only the credit pool leaves");
    }

    #[test]
    fn no_table_entry_drops() {
        let mut r = PriorityVcRouter::new(RouterConfig::default()).unwrap();
        let mut io = ChipIo::new();
        io.inject_tc.push_back(packet(9, 0));
        for now in 0..100 {
            io.begin_cycle();
            r.tick(now, &mut io);
        }
        assert_eq!(r.stats().tc_dropped, 1);
    }
}
