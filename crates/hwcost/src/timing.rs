//! Comparator-tree timing and throughput analysis (paper §5.1).
//!
//! The paper pipelines the 256-leaf tree in two ~50 ns stages so a
//! selection completes every 100 ns; with 20-byte packets at one byte per
//! 20 ns, each of the five ports needs one selection per 400 ns, so two
//! stages provide "sufficient throughput to satisfy the output ports" with
//! headroom for more packets or more ports. This module re-derives that
//! argument for any configuration.

use rtr_types::config::RouterConfig;

use crate::model::ProcessParams;

/// Timing analysis of the shared, pipelined comparator tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeTiming {
    /// Comparator levels in the tree (⌈log₂ leaves⌉).
    pub levels: u32,
    /// Pipeline stages.
    pub stages: u32,
    /// Comparator levels per stage (the critical path of a stage).
    pub levels_per_stage: u32,
    /// Delay of one pipeline stage, ns.
    pub stage_ns: f64,
    /// Latency of one full selection, ns.
    pub selection_ns: f64,
    /// Selections the pipeline completes per packet slot.
    pub selections_per_slot: f64,
    /// Output ports the tree can serve (one selection each per slot).
    pub ports_supported: u32,
}

impl TreeTiming {
    /// Analyzes the tree for a configuration.
    #[must_use]
    pub fn analyze(config: &RouterConfig, process: &ProcessParams, leaf_sharing: usize) -> Self {
        let effective_leaves = config.packet_slots.div_ceil(leaf_sharing).max(2);
        let levels = (effective_leaves as u64).next_power_of_two().ilog2();
        let stages = config.sched_pipeline_stages as u32;
        let levels_per_stage = levels.div_ceil(stages).max(1);
        // Key computation at the base adds roughly two comparator levels
        // of delay; leaf sharing serialises k keys through the base.
        let base_levels = 2 * leaf_sharing as u32;
        let stage_ns = f64::from(levels_per_stage + base_levels.div_ceil(stages))
            * process.comparator_level_ns;
        let selection_ns = stage_ns * f64::from(stages);
        let slot_ns = config.slot_bytes as f64 * process.cycle_ns;
        let selections_per_slot = slot_ns / stage_ns;
        TreeTiming {
            levels,
            stages,
            levels_per_stage,
            stage_ns,
            selection_ns,
            selections_per_slot,
            ports_supported: selections_per_slot.floor() as u32,
        }
    }

    /// Whether the pipeline meets the demand of `ports` output ports.
    #[must_use]
    pub fn sufficient_for(&self, ports: u32) -> bool {
        self.ports_supported >= ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::ids::PORT_COUNT;

    fn timing(config: &RouterConfig) -> TreeTiming {
        TreeTiming::analyze(config, &ProcessParams::default(), 1)
    }

    #[test]
    fn paper_configuration_supports_five_ports_with_two_stages() {
        let t = timing(&RouterConfig::default());
        assert_eq!(t.levels, 8, "256 leaves → 8 comparator levels");
        assert_eq!(t.stages, 2);
        // §5.1: each stage ≈ 50 ns; a selection per port per 400 ns slot.
        assert!(t.stage_ns <= 50.0 * 1.3, "stage {} ns", t.stage_ns);
        assert!(t.sufficient_for(PORT_COUNT as u32));
        // With headroom: "could effectively support a larger number of
        // packets or additional output ports".
        assert!(t.ports_supported > PORT_COUNT as u32);
    }

    #[test]
    fn deeper_pipelines_raise_throughput() {
        let two = timing(&RouterConfig::default());
        let five = timing(&RouterConfig { sched_pipeline_stages: 5, ..RouterConfig::default() });
        assert!(five.stage_ns < two.stage_ns);
        assert!(five.selections_per_slot > two.selections_per_slot);
    }

    #[test]
    fn more_leaves_need_more_levels() {
        let big = timing(&RouterConfig { packet_slots: 1024, ..RouterConfig::default() });
        assert_eq!(big.levels, 10);
        assert!(big.sufficient_for(PORT_COUNT as u32), "1024 leaves still feasible");
    }

    #[test]
    fn leaf_sharing_trades_throughput_for_cost() {
        let base = TreeTiming::analyze(&RouterConfig::default(), &ProcessParams::default(), 1);
        let shared = TreeTiming::analyze(&RouterConfig::default(), &ProcessParams::default(), 8);
        assert!(shared.levels < base.levels, "fewer comparator levels");
        assert!(
            shared.selections_per_slot < base.selections_per_slot,
            "serialised keys slow the base"
        );
    }
}
