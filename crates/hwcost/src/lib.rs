//! Analytical hardware-complexity model (paper §5.1, Table 4).
//!
//! The paper's chip evidence — 905,104 transistors in 0.5 µm CMOS,
//! 8.1 mm × 8.7 mm, 2.3 W at 50 MHz, 123 signal pins, with "the
//! link-scheduling logic accounting for the majority of the chip area,
//! with the packet memory consuming much of the remaining space" — is used
//! argumentatively: the design fits one chip, and the comparator tree
//! dominates. This crate reproduces those conclusions from first principles
//! so the same argument can be re-run for any configuration (the §5.1
//! scalability discussion and the leaf-sharing ablation).
//!
//! The model counts transistors per block from simple structural formulas
//! (6T SRAM cells, ripple comparators, subtractors, registers, muxes) and
//! converts to area/power with per-transistor constants calibrated to the
//! paper's process. Absolute numbers are estimates; *relative* conclusions
//! (which block dominates, how cost scales with leaves) are the point.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;
pub mod scaling;
pub mod timing;

pub use model::{BlockCost, CostReport, HardwareModel, ProcessParams};
pub use scaling::{scaling_table, ScalingRow};
pub use timing::TreeTiming;
