//! Scaling study (paper §5.1): how chip cost and scheduler throughput move
//! with the architectural parameters — the quantitative form of "the link
//! scheduler could effectively support a larger number of packets or
//! additional output ports".

use rtr_types::config::RouterConfig;

use crate::model::{HardwareModel, ProcessParams};
use crate::timing::TreeTiming;

/// One row of the scaling table.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Packet buffers / comparator-tree leaves.
    pub packet_slots: usize,
    /// Pipeline stages.
    pub stages: usize,
    /// Total transistors.
    pub transistors: u64,
    /// Estimated area, mm².
    pub area_mm2: f64,
    /// Output ports the tree can serve at this size.
    pub ports_supported: u32,
    /// Whether the paper's five ports are still satisfied.
    pub feasible_for_five_ports: bool,
}

/// Builds the scaling table over packet-buffer counts and pipeline depths.
#[must_use]
pub fn scaling_table(slot_counts: &[usize], stage_counts: &[usize]) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for &packet_slots in slot_counts {
        for &stages in stage_counts {
            let config = RouterConfig {
                packet_slots,
                sched_pipeline_stages: stages,
                ..RouterConfig::default()
            };
            let report = HardwareModel::new(config.clone()).report();
            let timing = TreeTiming::analyze(&config, &ProcessParams::default(), 1);
            rows.push(ScalingRow {
                packet_slots,
                stages,
                transistors: report.total_transistors,
                area_mm2: report.area_mm2,
                ports_supported: timing.ports_supported,
                feasible_for_five_ports: timing.sufficient_for(5),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_is_feasible_with_headroom() {
        let rows = scaling_table(&[256], &[2]);
        assert!(rows[0].feasible_for_five_ports);
        assert!(rows[0].ports_supported > 5);
    }

    #[test]
    fn deeper_pipelines_rescue_larger_trees() {
        let rows = scaling_table(&[4096], &[2, 5]);
        let two = &rows[0];
        let five = &rows[1];
        assert!(
            five.ports_supported > two.ports_supported,
            "more stages must raise throughput: {} vs {}",
            five.ports_supported,
            two.ports_supported
        );
        // §5.1: "the tree could incorporate up to five pipeline stages".
        assert!(five.feasible_for_five_ports, "a 4096-leaf tree works at 5 stages");
    }

    #[test]
    fn cost_grows_roughly_linearly_with_leaves() {
        let rows = scaling_table(&[128, 256, 512], &[2]);
        let ratio1 = rows[1].transistors as f64 / rows[0].transistors as f64;
        let ratio2 = rows[2].transistors as f64 / rows[1].transistors as f64;
        assert!((1.5..2.5).contains(&ratio1), "ratio {ratio1}");
        assert!((1.5..2.5).contains(&ratio2), "ratio {ratio2}");
    }
}
