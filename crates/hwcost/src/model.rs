//! Transistor, area, power and pin estimates per chip block.

use rtr_types::config::RouterConfig;
use rtr_types::ids::PORT_COUNT;

use crate::timing::TreeTiming;

/// Per-transistor process constants, calibrated to the paper's
/// three-metal 0.5 µm CMOS chip (905,104 transistors on
/// 8.1 mm × 8.7 mm ≈ 70.5 mm², 2.3 W at 50 MHz).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessParams {
    /// Average layout area per transistor, µm².
    pub um2_per_transistor: f64,
    /// Average power per transistor at the chip's clock, µW.
    pub uw_per_transistor: f64,
    /// Delay of one comparator level, ns.
    pub comparator_level_ns: f64,
    /// Clock period, ns (50 MHz → 20 ns).
    pub cycle_ns: f64,
}

impl Default for ProcessParams {
    fn default() -> Self {
        ProcessParams {
            um2_per_transistor: 70.47e6 / 905_104.0, // ≈ 77.9 µm²/T
            uw_per_transistor: 2.3e6 / 905_104.0,    // ≈ 2.54 µW/T
            comparator_level_ns: 10.0,
            cycle_ns: 20.0,
        }
    }
}

/// Transistor estimate for one chip block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCost {
    /// Block name.
    pub name: &'static str,
    /// Estimated transistors.
    pub transistors: u64,
}

/// The full cost report.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Per-block transistor estimates.
    pub blocks: Vec<BlockCost>,
    /// Total transistors.
    pub total_transistors: u64,
    /// Estimated die area, mm².
    pub area_mm2: f64,
    /// Estimated power, W.
    pub power_w: f64,
    /// Estimated signal pins.
    pub signal_pins: u32,
    /// Comparator-tree timing analysis.
    pub tree: TreeTiming,
}

impl CostReport {
    /// The transistor count of a named block.
    #[must_use]
    pub fn block(&self, name: &str) -> u64 {
        self.blocks.iter().find(|b| b.name == name).map_or(0, |b| b.transistors)
    }

    /// Whether the scheduling logic is the largest block — the paper's
    /// headline area observation.
    #[must_use]
    pub fn scheduler_dominates(&self) -> bool {
        let sched = self.block("link scheduler");
        self.blocks.iter().all(|b| b.name == "link scheduler" || b.transistors <= sched)
    }
}

/// The analytical hardware model of the router chip.
#[derive(Debug, Clone)]
pub struct HardwareModel {
    config: RouterConfig,
    process: ProcessParams,
    /// Leaves multiplexed onto one comparator at the tree base (1 = the
    /// paper's design; >1 is the §5.1 leaf-sharing cost reduction).
    leaf_sharing: usize,
}

// Structural constants (transistors), order-of-magnitude digital-design
// figures: a 6T SRAM cell, ~10 T per comparator cell and per 2:1 mux bit,
// ~28 T per full-adder bit, ~8 T per register bit.
const SRAM_CELL: u64 = 6;
const COMPARATOR_BIT: u64 = 10;
const MUX_BIT: u64 = 10;
const ADDER_BIT: u64 = 28;
const REG_BIT: u64 = 8;
const GATE: u64 = 4;

impl HardwareModel {
    /// Builds the model for a router configuration with the default
    /// (paper-calibrated) process. The configuration's own `leaf_sharing`
    /// is honoured; [`Self::with_leaf_sharing`] overrides it.
    #[must_use]
    pub fn new(config: RouterConfig) -> Self {
        let leaf_sharing = config.leaf_sharing.max(1);
        HardwareModel { config, process: ProcessParams::default(), leaf_sharing }
    }

    /// Overrides the process constants.
    #[must_use]
    pub fn with_process(mut self, process: ProcessParams) -> Self {
        self.process = process;
        self
    }

    /// Shares one base comparator among `k` leaves (the §5.1 cost
    /// reduction: "combine several leaf units into a single module with a
    /// small memory ... to serialize access to a single comparator").
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn with_leaf_sharing(mut self, k: usize) -> Self {
        assert!(k > 0, "leaf sharing factor must be positive");
        self.leaf_sharing = k;
        self
    }

    /// The configuration being modelled.
    #[must_use]
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }

    /// Produces the full cost report.
    #[must_use]
    pub fn report(&self) -> CostReport {
        let c = &self.config;
        let key_bits = u64::from(c.key_bits());
        let clock_bits = u64::from(c.clock_bits);
        let leaves = c.packet_slots as u64;
        let addr_bits = (c.packet_slots.max(2) as u64 - 1).ilog2() as u64 + 1;

        let scheduler = match c.scheduler {
            rtr_types::config::SchedulerKind::ComparatorTree => {
                self.tree_scheduler_transistors(key_bits, clock_bits, leaves, addr_bits)
            }
            rtr_types::config::SchedulerKind::Banded { band_shift } => {
                banded_scheduler_transistors(c, band_shift, addr_bits)
            }
            // The oracle is a software-only specification model; cost it as
            // the hardware it specifies (the exact tree).
            rtr_types::config::SchedulerKind::Oracle => {
                self.tree_scheduler_transistors(key_bits, clock_bits, leaves, addr_bits)
            }
        };

        // --- Packet memory (§3.4) ------------------------------------
        let mem_bits = leaves * c.slot_bytes as u64 * 8;
        let idle_fifo = leaves * addr_bits * SRAM_CELL + 200 * GATE;
        let memory = mem_bits * SRAM_CELL + idle_fifo + (c.memory_chunk_bytes as u64 * 8) * 400; // sense amps / decode periphery

        // --- Connection table (Table 3) ------------------------------
        let conn_bits = c.connections as u64 * (2 * 16.min(addr_bits + 8) + clock_bits + 5);
        let table = conn_bits * SRAM_CELL + 600 * GATE;

        // --- Datapath: ports, flit buffers, bus, control --------------
        let flit_bits = PORT_COUNT as u64 * c.be_path_bytes() as u64 * 8;
        let datapath = flit_bits * REG_BIT
            + PORT_COUNT as u64 * 2 * (c.memory_chunk_bytes as u64 * 8) * REG_BIT // staging
            + 2 * (c.memory_chunk_bytes as u64 * 8) * MUX_BIT * PORT_COUNT as u64 // bus muxing
            + 8_000 * GATE; // port FSMs, arbitration, control interface

        let blocks = vec![
            BlockCost { name: "link scheduler", transistors: scheduler },
            BlockCost { name: "packet memory", transistors: memory },
            BlockCost { name: "connection table", transistors: table },
            BlockCost { name: "datapath & control", transistors: datapath },
        ];
        let total: u64 = blocks.iter().map(|b| b.transistors).sum();

        // --- Pins ------------------------------------------------------
        // Each network link direction: 8 data + 1 virtual-channel bit +
        // 1 acknowledgement = 10; four links × 2 directions. Local: the
        // two injection ports and the reception port (9 signals each),
        // plus the control interface (~12) and a few global signals.
        let signal_pins = 4 * 2 * 10 + 3 * 9 + 12 + 4;

        CostReport {
            total_transistors: total,
            area_mm2: total as f64 * self.process.um2_per_transistor / 1e6,
            power_w: total as f64 * self.process.uw_per_transistor / 1e6,
            signal_pins,
            tree: TreeTiming::analyze(c, &self.process, self.leaf_sharing),
            blocks,
        }
    }

    /// Transistor estimate of the Figure 5 comparator-tree scheduler.
    fn tree_scheduler_transistors(
        &self,
        key_bits: u64,
        clock_bits: u64,
        leaves: u64,
        addr_bits: u64,
    ) -> u64 {
        // --- Link scheduler (Figure 5) -------------------------------
        // Per-leaf state and key logic: registers for ℓ and ℓ+d, the
        // 5-bit port mask, two subtractors for the normalised key, the
        // early/on-time comparison, and mask/update gating.
        let leaf_t = 2 * clock_bits * REG_BIT      // ℓ, ℓ+d registers
            + 5 * REG_BIT                           // port mask
            + 2 * clock_bits * ADDER_BIT            // ℓ−t, (ℓ+d)−t subtractors
            + key_bits * MUX_BIT                    // key select
            + 20 * GATE; // eligibility / clear logic
                         // Comparator nodes: one (key compare + key/addr mux + pipeline
                         // latch allowance) per internal node; leaf sharing divides the
                         // base-level comparators and their fanout.
        let effective_leaves = leaves.div_ceil(self.leaf_sharing as u64).max(2);
        let nodes = effective_leaves - 1;
        let node_t = key_bits * COMPARATOR_BIT
            + (key_bits + addr_bits) * MUX_BIT
            + (key_bits + addr_bits) * REG_BIT / 2; // amortised stage latches
                                                    // Shared-leaf modules add a small key store + sequencer.
        let share_t = if self.leaf_sharing > 1 {
            effective_leaves
                * (self.leaf_sharing as u64 * (key_bits + addr_bits) * SRAM_CELL + 40 * GATE)
        } else {
            0
        };
        // Fanout buffer tree from the packet-control bus (§5.1) and the
        // per-port horizon comparators.
        let fanout_t = leaves * 30 * GATE / 2;
        let horizon_t = PORT_COUNT as u64 * (clock_bits * COMPARATOR_BIT + clock_bits * REG_BIT);
        leaf_t * leaves + node_t * nodes + share_t + fanout_t + horizon_t
    }
}

/// Transistor estimate of the §7 banded scheduler: per output port, one
/// FIFO of packet addresses per band plus a band-select priority encoder,
/// and an insert-time bucketizer — cost grows with the band count, not
/// with the number of buffered packets.
fn banded_scheduler_transistors(c: &RouterConfig, band_shift: u32, addr_bits: u64) -> u64 {
    let clock_bits = u64::from(c.clock_bits);
    // Usable laxity bands: half the clock range divided by the band width.
    let bands = (1u64 << (clock_bits - 1)) >> band_shift;
    let leaves = c.packet_slots as u64;
    // Address FIFOs: the packet addresses live in one shared SRAM; each
    // (port, band) queue needs head/tail pointers and a head register.
    let fifo_ptrs = PORT_COUNT as u64 * bands * (2 * addr_bits + addr_bits) * REG_BIT;
    let addr_store = PORT_COUNT as u64 * leaves * addr_bits * SRAM_CELL;
    // Priority encoder over the non-empty bands, per port.
    let encoder = PORT_COUNT as u64 * bands * 6 * GATE;
    // Insert-time bucketizer: one subtractor + shifter per input.
    let bucketizer = PORT_COUNT as u64 * clock_bits * (ADDER_BIT + MUX_BIT);
    // Early/on-time split still needs the per-packet ℓ registers for the
    // horizon check at the head of each queue.
    let head_check = PORT_COUNT as u64 * bands * clock_bits * COMPARATOR_BIT / 4;
    fifo_ptrs + addr_store + encoder + bucketizer + head_check
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_report() -> CostReport {
        HardwareModel::new(RouterConfig::default()).report()
    }

    #[test]
    fn scheduler_dominates_like_the_paper() {
        let r = default_report();
        assert!(
            r.scheduler_dominates(),
            "the paper: scheduling logic accounts for the majority of the area; got {:?}",
            r.blocks
        );
        // Packet memory second, as in the paper.
        let mut sorted = r.blocks.clone();
        sorted.sort_by_key(|b| std::cmp::Reverse(b.transistors));
        assert_eq!(sorted[1].name, "packet memory");
    }

    #[test]
    fn totals_are_in_the_papers_ballpark() {
        let r = default_report();
        // Table 4b: 905,104 transistors, 70.5 mm², 2.3 W. The analytical
        // model should land within ±35% without per-block calibration.
        assert!(
            (600_000..=1_250_000).contains(&r.total_transistors),
            "total {} transistors",
            r.total_transistors
        );
        assert!((45.0..=100.0).contains(&r.area_mm2), "area {}", r.area_mm2);
        assert!((1.5..=3.2).contains(&r.power_w), "power {}", r.power_w);
    }

    #[test]
    fn pin_count_matches_table_4b() {
        assert_eq!(default_report().signal_pins, 123);
    }

    #[test]
    fn cost_scales_with_leaves() {
        let small =
            HardwareModel::new(RouterConfig { packet_slots: 64, ..RouterConfig::default() })
                .report();
        let large = default_report();
        assert!(large.block("link scheduler") > 3 * small.block("link scheduler"));
        assert!(large.block("packet memory") > 3 * small.block("packet memory"));
    }

    #[test]
    fn leaf_sharing_cuts_comparator_cost() {
        let base = default_report();
        let shared = HardwareModel::new(RouterConfig::default()).with_leaf_sharing(4).report();
        assert!(
            shared.block("link scheduler") < base.block("link scheduler"),
            "sharing must reduce scheduler cost: {} vs {}",
            shared.block("link scheduler"),
            base.block("link scheduler")
        );
    }

    #[test]
    fn block_lookup_by_name() {
        let r = default_report();
        assert!(r.block("packet memory") > 0);
        assert_eq!(r.block("no such block"), 0);
    }
}
