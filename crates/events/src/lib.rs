//! The deterministic calendar-queue event core.
//!
//! Simulating a large mesh at a sparse load spends almost all of its time
//! proving that nothing is about to happen: the naive quiescence check
//! re-polls every chip, link, and traffic source after every cycle to find
//! the earliest next event. This crate replaces that O(components) scan
//! with a **hierarchical timing wheel** ([`WakeQueue`]): every component
//! registers the absolute cycle of its next event once, under a stable
//! [`WakeHandle`], and the simulator pops the minimum.
//!
//! Design points:
//!
//! * **Lazy invalidation.** Re-registering a handle does not search the
//!   wheel for the old entry; the authoritative wake per handle lives in a
//!   flat `scheduled` table and stale wheel entries are discarded when
//!   their slot is drained. A handle therefore fires at most once per
//!   registration even if the same wake was filed several times.
//! * **Determinism.** [`WakeQueue::pop_due`] returns due handles sorted by
//!   handle index, and every other observable (the minimum wake, the
//!   stored truth table) is independent of insertion order — so serial and
//!   worker-thread registration produce identical simulations.
//! * **Full `u64` range.** The wheel has 11 levels of 64 slots
//!   (6 bits per level, 66 bits total), so wakes anywhere in cycle space —
//!   including next to [`Cycle::MAX`] — file and fire without overflow;
//!   see the rollover tests.
//!
//! Amortised costs: `set_wake`/`clear_wake` are O(1), `pop_due` is O(due +
//! stale + cascades) with at most [`LEVELS`] cascade hops per entry over
//! its whole lifetime, and `next_wake` is O(stale scrubbed).

use rtr_types::time::Cycle;

/// Bits per wheel level: 64 slots each.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask extracting a level-local slot index.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels: 11 × 6 bits = 66 bits ≥ the full 64-bit cycle space.
pub const LEVELS: usize = 11;

/// A stable identity for one registered component (chip, link, or traffic
/// source). Handles are dense indices handed out by
/// [`WakeQueue::register`]; they are never recycled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WakeHandle(pub u32);

impl WakeHandle {
    /// The handle's dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Operation counters of a [`WakeQueue`], for the pop-vs-scan telemetry
/// (`EXPERIMENTS.md`, "Event core").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Wakes filed (initial registrations and overwrites).
    pub filed: u64,
    /// Wakes that fired (returned from [`WakeQueue::pop_due`]).
    pub fired: u64,
    /// Stale wheel entries discarded during slot drains and scrubs.
    pub stale_discarded: u64,
    /// Entries re-filed to a lower level while the horizon advanced.
    pub cascaded: u64,
}

impl QueueStats {
    /// Emits every counter under the `queue.` namespace — the shape the
    /// simulator's unified metrics registry absorbs.
    pub fn emit_counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("queue.filed", self.filed);
        emit("queue.fired", self.fired);
        emit("queue.stale_discarded", self.stale_discarded);
        emit("queue.cascaded", self.cascaded);
    }
}

/// A deterministic hierarchical-timing-wheel wake list.
///
/// Invariants (checked by the unit and property tests):
///
/// * every *valid* wake is strictly greater than the current horizon;
/// * each level-`l` wheel entry sits in the horizon's current level-`l`
///   round at a slot index strictly greater than the horizon's, so due
///   slots are exactly the occupied slots at or below the horizon's index
///   after an advance;
/// * [`WakeQueue::next_wake`] equals the minimum of the `scheduled` truth
///   table (the oracle the property tests diff against).
#[derive(Debug)]
pub struct WakeQueue {
    /// Authoritative wake per handle (`None` = not scheduled). Wheel
    /// entries disagreeing with this table are stale and are dropped when
    /// encountered.
    scheduled: Vec<Option<Cycle>>,
    /// `LEVELS × SLOTS` buckets of `(handle, wake)` entries, flattened.
    slots: Vec<Vec<(u32, Cycle)>>,
    /// Per-level occupancy bitmap (bit `i` = slot `i` non-empty).
    occupied: [u64; LEVELS],
    /// The wheel's current time: all valid wakes are `> horizon`.
    horizon: Cycle,
    /// Number of handles with a valid wake.
    valid: usize,
    stats: QueueStats,
}

impl Default for WakeQueue {
    fn default() -> Self {
        WakeQueue::new()
    }
}

impl WakeQueue {
    /// An empty queue at horizon 0.
    #[must_use]
    pub fn new() -> Self {
        WakeQueue::with_capacity(0)
    }

    /// An empty queue with space reserved for `handles` registrations —
    /// used by the simulator to build big-mesh tables without per-cell
    /// growth.
    #[must_use]
    pub fn with_capacity(handles: usize) -> Self {
        WakeQueue {
            scheduled: Vec::with_capacity(handles),
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            horizon: 0,
            valid: 0,
            stats: QueueStats::default(),
        }
    }

    /// Registers a new component and returns its handle. The component
    /// starts unscheduled.
    pub fn register(&mut self) -> WakeHandle {
        let h = WakeHandle(u32::try_from(self.scheduled.len()).expect("too many components"));
        self.scheduled.push(None);
        h
    }

    /// Handles registered so far.
    #[must_use]
    pub fn handles(&self) -> usize {
        self.scheduled.len()
    }

    /// Handles currently holding a valid wake.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// Whether no handle holds a valid wake.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// The wheel's current time.
    #[must_use]
    pub fn horizon(&self) -> Cycle {
        self.horizon
    }

    /// The registered wake of a handle, if any.
    #[must_use]
    pub fn wake_of(&self, h: WakeHandle) -> Option<Cycle> {
        self.scheduled[h.index()]
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Heap bytes behind the wheel (allocated capacities of the schedule
    /// table and every calendar slot), for footprint accounting.
    #[must_use]
    pub fn bytes_estimate(&self) -> usize {
        self.scheduled.capacity() * std::mem::size_of::<Option<Cycle>>()
            + self.slots.capacity() * std::mem::size_of::<Vec<(u32, Cycle)>>()
            + self
                .slots
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<(u32, Cycle)>())
                .sum::<usize>()
    }

    /// Registers (or re-registers) `h` to wake at cycle `at`. Any previous
    /// registration is superseded; the stale wheel entry is discarded
    /// lazily. Re-registering the same wake is a no-op.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `at` is not in the future of the horizon: a wake
    /// at or before the current horizon could never fire.
    pub fn set_wake(&mut self, h: WakeHandle, at: Cycle) {
        debug_assert!(at > self.horizon, "wake {at} not after horizon {}", self.horizon);
        let slot = &mut self.scheduled[h.index()];
        if *slot == Some(at) {
            return;
        }
        if slot.is_none() {
            self.valid += 1;
        }
        *slot = Some(at);
        self.file(h.0, at);
    }

    /// Cancels `h`'s registration, if any (lazy: the wheel entry stays
    /// until its slot drains).
    pub fn clear_wake(&mut self, h: WakeHandle) {
        if self.scheduled[h.index()].take().is_some() {
            self.valid -= 1;
        }
    }

    /// Advances the wheel to `now` and appends every handle whose wake is
    /// `≤ now` to `due`, **sorted by handle index**. Fired registrations
    /// are consumed: the component must re-register to wake again.
    ///
    /// `now` may jump arbitrarily far forward (a leap); moving backwards
    /// is a contract violation.
    pub fn pop_due(&mut self, now: Cycle, due: &mut Vec<WakeHandle>) {
        debug_assert!(now >= self.horizon, "horizon may not move backwards");
        let old = self.horizon;
        self.horizon = now;
        let first = due.len();
        for level in 0..LEVELS {
            // If the horizon crossed into a new level-(l+1) slot, every
            // entry filed at level l belongs to a finished round and is
            // due (or stale); otherwise only slots at or below the
            // horizon's index can hold the past.
            let drain_all = round_of(old, level) != round_of(now, level);
            loop {
                let pos = (shr(now, SLOT_BITS * level as u32) & SLOT_MASK) as u32;
                let mask = if drain_all { !0u64 } else { mask_through(pos) };
                let hits = self.occupied[level] & mask;
                if hits == 0 {
                    break;
                }
                let idx = hits.trailing_zeros() as usize;
                self.drain_slot(level, idx, now, due);
            }
        }
        due[first..].sort_unstable();
    }

    /// The earliest valid wake, scrubbing stale entries as a side effect.
    /// `None` means no component is scheduled — the world is silent
    /// forever (until something re-registers).
    pub fn next_wake(&mut self) -> Option<Cycle> {
        for level in 0..LEVELS {
            loop {
                let bits = self.occupied[level];
                if bits == 0 {
                    break;
                }
                let idx = bits.trailing_zeros() as usize;
                let bucket = &mut self.slots[level * SLOTS + idx];
                // Scrub: keep only entries agreeing with the truth table.
                let before = bucket.len();
                let scheduled = &self.scheduled;
                bucket.retain(|&(h, w)| scheduled[h as usize] == Some(w));
                self.stats.stale_discarded += (before - bucket.len()) as u64;
                if bucket.is_empty() {
                    self.occupied[level] &= !(1u64 << idx);
                    continue;
                }
                // Wheel slots at one level never overlap and later slots
                // hold strictly later wakes, so the earliest occupied slot
                // of the lowest occupied level decides.
                return bucket.iter().map(|&(_, w)| w).min();
            }
        }
        None
    }

    /// Files `(h, at)` into the wheel relative to the current horizon.
    fn file(&mut self, h: u32, at: Cycle) {
        let level = level_for(self.horizon, at);
        let idx = (shr(at, SLOT_BITS * level as u32) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + idx].push((h, at));
        self.occupied[level] |= 1u64 << idx;
        self.stats.filed += 1;
    }

    /// Drains one slot: fires due entries, drops stale ones, cascades the
    /// rest down (they are in the horizon's slot but still in its future).
    fn drain_slot(&mut self, level: usize, idx: usize, now: Cycle, due: &mut Vec<WakeHandle>) {
        let bucket = std::mem::take(&mut self.slots[level * SLOTS + idx]);
        self.occupied[level] &= !(1u64 << idx);
        for (h, w) in bucket {
            if self.scheduled[h as usize] != Some(w) {
                self.stats.stale_discarded += 1;
            } else if w <= now {
                // Consume the registration so a duplicate wheel entry for
                // the same (handle, wake) cannot fire twice.
                self.scheduled[h as usize] = None;
                self.valid -= 1;
                self.stats.fired += 1;
                due.push(WakeHandle(h));
            } else {
                // Still in the future: re-file against the new horizon.
                // The slot contained `now`, so the entry lands strictly
                // below `level` — the cascade terminates.
                self.stats.cascaded += 1;
                self.stats.filed -= 1; // re-filing is not a new registration
                self.file(h, w);
            }
        }
    }
}

/// Right shift that saturates instead of overflowing for shifts ≥ 64 (the
/// top wheel level's "round" is the whole cycle space).
#[inline]
fn shr(v: u64, by: u32) -> u64 {
    if by >= 64 {
        0
    } else {
        v >> by
    }
}

/// The level-`l` round of a cycle: its bits above level `l`'s slot index.
#[inline]
fn round_of(c: Cycle, level: usize) -> u64 {
    shr(c, SLOT_BITS * (level as u32 + 1))
}

/// Bitmask of slots `0..=pos`.
#[inline]
fn mask_through(pos: u32) -> u64 {
    if pos >= 63 {
        !0
    } else {
        (1u64 << (pos + 1)) - 1
    }
}

/// The wheel level whose slot width covers the highest bit in which `when`
/// differs from `horizon` (level 0 when they agree).
#[inline]
fn level_for(horizon: Cycle, when: Cycle) -> usize {
    let masked = (horizon ^ when) | SLOT_MASK;
    let significant = 63 - masked.leading_zeros();
    (significant / SLOT_BITS) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drain(q: &mut WakeQueue, now: Cycle) -> Vec<u32> {
        let mut due = Vec::new();
        q.pop_due(now, &mut due);
        due.into_iter().map(|h| h.0).collect()
    }

    #[test]
    fn wakes_fire_in_time_order() {
        let mut q = WakeQueue::new();
        let a = q.register();
        let b = q.register();
        let c = q.register();
        q.set_wake(a, 10);
        q.set_wake(b, 3);
        q.set_wake(c, 700); // level 1
        assert_eq!(q.len(), 3);
        assert_eq!(q.next_wake(), Some(3));
        assert_eq!(drain(&mut q, 2), Vec::<u32>::new());
        assert_eq!(drain(&mut q, 3), vec![b.0]);
        assert_eq!(q.next_wake(), Some(10));
        assert_eq!(drain(&mut q, 600), vec![a.0]);
        assert_eq!(drain(&mut q, 700), vec![c.0]);
        assert!(q.is_empty());
        assert_eq!(q.next_wake(), None);
    }

    #[test]
    fn due_handles_come_out_sorted_not_in_filing_order() {
        let mut q = WakeQueue::new();
        let hs: Vec<_> = (0..8).map(|_| q.register()).collect();
        for h in hs.iter().rev() {
            q.set_wake(*h, 5);
        }
        assert_eq!(drain(&mut q, 5), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn stale_entries_never_fire() {
        let mut q = WakeQueue::new();
        let a = q.register();
        q.set_wake(a, 10);
        q.set_wake(a, 20); // supersedes 10
        assert_eq!(q.next_wake(), Some(20), "the old wake is invalid");
        assert_eq!(drain(&mut q, 15), Vec::<u32>::new(), "superseded wake must not fire");
        assert_eq!(drain(&mut q, 20), vec![a.0]);
        assert!(q.stats().stale_discarded >= 1);

        // Cancel entirely: nothing ever fires.
        let b = q.register();
        q.set_wake(b, 30);
        q.clear_wake(b);
        assert_eq!(q.next_wake(), None);
        assert_eq!(drain(&mut q, 40), Vec::<u32>::new());
    }

    #[test]
    fn rescheduling_earlier_fires_earlier_and_only_once() {
        let mut q = WakeQueue::new();
        let a = q.register();
        q.set_wake(a, 500);
        q.set_wake(a, 7);
        assert_eq!(q.next_wake(), Some(7));
        assert_eq!(drain(&mut q, 7), vec![a.0]);
        // The leftover 500 entry is stale (the registration was consumed).
        assert_eq!(drain(&mut q, 500), Vec::<u32>::new());
    }

    #[test]
    fn same_cycle_re_registration_is_idempotent() {
        let mut q = WakeQueue::new();
        let a = q.register();
        q.set_wake(a, 12);
        let filed = q.stats().filed;
        q.set_wake(a, 12); // no-op: no duplicate wheel entry
        assert_eq!(q.stats().filed, filed);
        assert_eq!(drain(&mut q, 12), vec![a.0]);
        // Re-registering the *same* cycle after a fire files fresh.
        assert_eq!(q.wake_of(a), None);
    }

    #[test]
    fn firing_consumes_the_registration() {
        let mut q = WakeQueue::new();
        let a = q.register();
        q.set_wake(a, 4);
        assert_eq!(drain(&mut q, 4), vec![a.0]);
        assert_eq!(q.wake_of(a), None);
        assert_eq!(drain(&mut q, 100), Vec::<u32>::new(), "fired wakes do not repeat");
    }

    #[test]
    fn leaps_collect_everything_across_level_boundaries() {
        let mut q = WakeQueue::new();
        let hs: Vec<_> = (0..5).map(|_| q.register()).collect();
        // One entry per wheel level neighbourhood.
        q.set_wake(hs[0], 1);
        q.set_wake(hs[1], 63);
        q.set_wake(hs[2], 64);
        q.set_wake(hs[3], 64 * 64);
        q.set_wake(hs[4], 64 * 64 * 64 + 17);
        assert_eq!(drain(&mut q, 64 * 64 * 64 + 17), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn far_future_wakes_survive_a_leap_that_stops_short() {
        let mut q = WakeQueue::new();
        let near = q.register();
        let far = q.register();
        q.set_wake(near, 100);
        q.set_wake(far, 1_000_000);
        assert_eq!(drain(&mut q, 1000), vec![near.0]);
        assert_eq!(q.next_wake(), Some(1_000_000));
        assert_eq!(drain(&mut q, 999_999), Vec::<u32>::new());
        assert_eq!(drain(&mut q, 1_000_000), vec![far.0]);
    }

    #[test]
    fn wheel_rollover_near_cycle_max() {
        // Wakes at the very top of the 64-bit cycle space exercise the
        // 11th level (bits 60..63) and the saturating shifts.
        let mut q = WakeQueue::new();
        let a = q.register();
        let b = q.register();
        let c = q.register();
        q.set_wake(a, Cycle::MAX);
        q.set_wake(b, Cycle::MAX - 1);
        q.set_wake(c, 1 << 63);
        assert_eq!(q.next_wake(), Some(1 << 63));
        assert_eq!(drain(&mut q, (1 << 63) + 5), vec![c.0]);
        assert_eq!(q.next_wake(), Some(Cycle::MAX - 1));
        assert_eq!(drain(&mut q, Cycle::MAX - 2), Vec::<u32>::new());
        assert_eq!(drain(&mut q, Cycle::MAX - 1), vec![b.0]);
        assert_eq!(drain(&mut q, Cycle::MAX), vec![a.0]);
        assert!(q.is_empty());
        // The wheel is still usable at the end of time.
        let d = q.register();
        assert_eq!(q.horizon(), Cycle::MAX);
        assert_eq!(q.wake_of(d), None);
    }

    #[test]
    fn horizon_advances_through_many_rounds_between_registrations() {
        let mut q = WakeQueue::new();
        let a = q.register();
        // Fire, leap several full level-0 and level-1 rounds, re-register.
        for (reg_at, fire_at) in [(5u64, 6u64), (10_000, 70_000), (70_001, 50_000_000)] {
            let _ = reg_at;
            q.set_wake(a, fire_at);
            assert_eq!(q.next_wake(), Some(fire_at));
            assert_eq!(drain(&mut q, fire_at), vec![a.0]);
        }
    }

    proptest! {
        /// Differential test against a sorted-map oracle: arbitrary
        /// interleavings of set/clear/advance agree with the oracle on
        /// every pop's contents and on the minimum wake.
        #[test]
        fn wheel_matches_a_btreemap_oracle(ops in proptest::collection::vec((0u8..4, 0u32..12, 1u64..5_000), 1..120)) {
            let mut q = WakeQueue::new();
            let mut oracle: std::collections::BTreeMap<u32, u64> = Default::default();
            let handles: Vec<_> = (0..12).map(|_| q.register()).collect();
            let mut now = 0u64;
            for (op, h, arg) in ops {
                match op {
                    0 | 1 => {
                        let at = now + arg; // strictly future
                        q.set_wake(handles[h as usize], at);
                        oracle.insert(h, at);
                    }
                    2 => {
                        q.clear_wake(handles[h as usize]);
                        oracle.remove(&h);
                    }
                    _ => {
                        now += arg;
                        let mut due = Vec::new();
                        q.pop_due(now, &mut due);
                        let mut expect: Vec<u32> = oracle
                            .iter()
                            .filter(|&(_, &w)| w <= now)
                            .map(|(&h, _)| h)
                            .collect();
                        expect.sort_unstable();
                        oracle.retain(|_, &mut w| w > now);
                        let got: Vec<u32> = due.into_iter().map(|h| h.0).collect();
                        prop_assert_eq!(&got, &expect, "due set diverged at {}", now);
                    }
                }
                prop_assert_eq!(q.next_wake(), oracle.values().copied().min());
                prop_assert_eq!(q.len(), oracle.len());
            }
        }
    }
}
