//! Network-level instrumentation: latency histograms and whole-network
//! reports (the measurement surface the paper's §7 multicomputer-simulator
//! plans call for).

use rtr_types::chip::Chip;
use rtr_types::ids::{Direction, NodeId};
use rtr_types::time::Cycle;

use crate::sim::{LinkUsage, Simulator};

/// A fixed-width latency histogram with overflow bucket.
///
/// # Example
///
/// ```
/// use rtr_mesh::netstats::Histogram;
///
/// let mut h = Histogram::new(20, 64); // one packet slot per bucket
/// h.record_all(&[35, 41, 90]);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 90);
/// assert_eq!(h.percentile(100.0), 100); // upper bucket edge
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "histogram dimensions must be positive");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Records every sample of a slice.
    pub fn record_all(&mut self, values: &[u64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples that exceeded the bucketed range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Nearest-rank percentile (upper bucket edge; exact for the overflow
    /// bucket only via [`Histogram::max`]). `p` in `(0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 100.0, "percentile must be in (0, 100]");
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        self.max
    }

    /// Iterates `(bucket upper edge, count)` for the non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| ((i as u64 + 1) * self.bucket_width, c))
    }
}

/// A snapshot of the whole network's delivery behaviour.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Latency histogram of delivered time-constrained packets.
    pub tc_latency: Histogram,
    /// Latency histogram of delivered best-effort packets.
    pub be_latency: Histogram,
    /// Time-constrained deliveries.
    pub tc_delivered: usize,
    /// Best-effort deliveries.
    pub be_delivered: usize,
    /// End-to-end deadline misses.
    pub deadline_misses: usize,
    /// Per-link usage, densest first.
    pub links: Vec<(NodeId, Direction, LinkUsage)>,
}

impl NetworkReport {
    /// Builds a report from a simulator (bucket width 20 cycles — one
    /// packet slot — over 256 buckets).
    #[must_use]
    pub fn capture<C: Chip>(sim: &Simulator<C>, slot_bytes: usize) -> NetworkReport {
        let mut tc_latency = Histogram::new(slot_bytes as u64, 256);
        let mut be_latency = Histogram::new(slot_bytes as u64, 256);
        let mut tc_delivered = 0;
        let mut be_delivered = 0;
        let mut deadline_misses = 0;
        for node in sim.topology().nodes() {
            let log = sim.log(node);
            tc_latency.record_all(&log.tc_latencies());
            be_latency.record_all(&log.be_latencies());
            tc_delivered += log.tc.len();
            be_delivered += log.be.len();
            deadline_misses += log.tc_deadline_misses(slot_bytes);
        }
        let mut links = Vec::new();
        for node in sim.topology().nodes() {
            for dir in Direction::ALL {
                if sim.topology().link_end(node, dir).is_some() {
                    links.push((node, dir, sim.link_usage(node, dir)));
                }
            }
        }
        links.sort_by_key(|(_, _, u)| std::cmp::Reverse(u.tc_symbols + u.be_symbols));
        NetworkReport {
            cycles: sim.now(),
            tc_latency,
            be_latency,
            tc_delivered,
            be_delivered,
            deadline_misses,
            links,
        }
    }

    /// The busiest links, for quick printing.
    #[must_use]
    pub fn hottest_links(&self, n: usize) -> &[(NodeId, Direction, LinkUsage)] {
        &self.links[..n.min(self.links.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_basic_statistics() {
        let mut h = Histogram::new(10, 10);
        h.record_all(&[5, 15, 15, 95, 1000]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 226.0).abs() < 1e-9);
        // Buckets: edge 10 → 1 sample, edge 20 → 2, edge 100 → 1.
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(10, 1), (20, 2), (100, 1)]);
    }

    #[test]
    fn percentiles_use_bucket_edges() {
        let mut h = Histogram::new(10, 100);
        for v in 0..100 {
            h.record(v * 5); // 0..495
        }
        assert_eq!(h.percentile(50.0), 250);
        assert_eq!(h.percentile(100.0), 500);
        assert_eq!(Histogram::new(1, 1).percentile(99.0), 0, "empty histogram");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_width_rejected() {
        let _ = Histogram::new(0, 4);
    }

    proptest! {
        /// The histogram never loses samples and its mean matches the
        /// exact mean.
        #[test]
        fn histogram_conserves_samples(values in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut h = Histogram::new(7, 64);
            h.record_all(&values);
            prop_assert_eq!(h.count(), values.len() as u64);
            let bucketed: u64 = h.iter().map(|(_, c)| c).sum::<u64>() + h.overflow();
            prop_assert_eq!(bucketed, values.len() as u64);
            let exact = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
            prop_assert!((h.mean() - exact).abs() < 1e-6);
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        }
    }
}
