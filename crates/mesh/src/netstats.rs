//! Network-level instrumentation: latency histograms and whole-network
//! reports (the measurement surface the paper's §7 multicomputer-simulator
//! plans call for).

use std::collections::BTreeMap;

use rtr_types::chip::Chip;
use rtr_types::ids::{ConnectionId, Direction, NodeId};
use rtr_types::time::{cycle_to_slot, Cycle};

use crate::sim::{LinkUsage, Simulator};

/// A fixed-width latency histogram with overflow bucket.
///
/// # Example
///
/// ```
/// use rtr_mesh::netstats::Histogram;
///
/// let mut h = Histogram::new(20, 64); // one packet slot per bucket
/// h.record_all(&[35, 41, 90]);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.max(), 90);
/// assert_eq!(h.percentile(100.0), 100); // upper bucket edge
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram of `buckets` buckets of `bucket_width` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "histogram dimensions must be positive");
        Histogram { bucket_width, buckets: vec![0; buckets], overflow: 0, count: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Records every sample of a slice.
    pub fn record_all(&mut self, values: &[u64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded samples (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Samples that exceeded the bucketed range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Nearest-rank percentile (upper bucket edge; exact for the overflow
    /// bucket only via [`Histogram::max`]). `p` in `[0, 100]`; the 0th
    /// percentile is 0 by convention (no sample is below it).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]` or not a number.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 || p == 0.0 {
            return 0;
        }
        let rank = ((self.count as f64) * p / 100.0).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        self.max
    }

    /// Iterates `(bucket upper edge, count)` for the non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| ((i as u64 + 1) * self.bucket_width, c))
    }
}

/// End-to-end deadline-slack statistics of one connection's deliveries.
///
/// Slack is `deadline − delivery slot` in slots: positive means the packet
/// arrived with room to spare, negative means a miss. For a correctly
/// admitted channel the minimum slack is never negative.
#[derive(Debug, Clone)]
pub struct ConnSlackReport {
    /// Wire connection identifier at the delivering router.
    pub conn: ConnectionId,
    /// Deadline-bearing packets delivered on this connection.
    pub delivered: usize,
    /// Of those, deliveries past the deadline.
    pub misses: usize,
    /// Smallest slack observed (slots; negative = worst miss).
    pub min_slack: i64,
    /// Mean slack (slots).
    pub mean_slack: f64,
    /// Histogram of the non-negative slacks, one slot per bucket (misses
    /// land in bucket 0 and are counted exactly by `misses`).
    pub slack: Histogram,
}

/// Occupancy statistics aggregated over every `(sample, node)` pair of a
/// gauge-sampled run (see [`Simulator::enable_gauge_sampling`]).
#[derive(Debug, Clone)]
pub struct OccupancySummary {
    /// Samples taken (time points).
    pub samples: usize,
    /// Mean packet-memory occupancy per node (slots).
    pub mean_memory_occupied: f64,
    /// Peak sampled packet-memory occupancy of any node.
    pub peak_memory_occupied: usize,
    /// Node where that peak was sampled.
    pub peak_memory_node: NodeId,
    /// Mean scheduler backlog per node (packets).
    pub mean_sched_backlog: f64,
    /// Peak sampled per-link queue depth of any output port.
    pub peak_queue_depth: usize,
}

/// A snapshot of the whole network's delivery behaviour.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Cycles simulated.
    pub cycles: Cycle,
    /// Latency histogram of delivered time-constrained packets.
    pub tc_latency: Histogram,
    /// Latency histogram of delivered best-effort packets.
    pub be_latency: Histogram,
    /// Time-constrained deliveries.
    pub tc_delivered: usize,
    /// Best-effort deliveries.
    pub be_delivered: usize,
    /// End-to-end deadline misses.
    pub deadline_misses: usize,
    /// Per-connection deadline-slack statistics, ordered by connection id
    /// (deadline-bearing deliveries only).
    pub slack: Vec<ConnSlackReport>,
    /// Occupancy time-series summary (None unless gauge sampling was on).
    pub occupancy: Option<OccupancySummary>,
    /// Per-link usage, densest first.
    pub links: Vec<(NodeId, Direction, LinkUsage)>,
}

impl NetworkReport {
    /// Builds a report from a simulator (bucket width 20 cycles — one
    /// packet slot — over 256 buckets).
    #[must_use]
    pub fn capture<C: Chip>(sim: &Simulator<C>, slot_bytes: usize) -> NetworkReport {
        let mut tc_latency = Histogram::new(slot_bytes as u64, 256);
        let mut be_latency = Histogram::new(slot_bytes as u64, 256);
        let mut tc_delivered = 0;
        let mut be_delivered = 0;
        let mut deadline_misses = 0;
        let mut slack_by_conn: BTreeMap<u16, Vec<i64>> = BTreeMap::new();
        for node in sim.topology().nodes() {
            let log = sim.log(node);
            tc_latency.record_all(&log.tc_latencies());
            be_latency.record_all(&log.be_latencies());
            tc_delivered += log.tc.len();
            be_delivered += log.be.len();
            deadline_misses += log.tc_deadline_misses(slot_bytes);
            for (cycle, p) in log.tc.iter().filter(|(_, p)| p.trace.deadline != 0) {
                let s = p.trace.deadline as i64 - cycle_to_slot(*cycle, slot_bytes) as i64;
                slack_by_conn.entry(p.conn.0).or_default().push(s);
            }
        }
        let slack = slack_by_conn
            .into_iter()
            .map(|(conn, slacks)| {
                let mut hist = Histogram::new(1, 128);
                for &s in &slacks {
                    hist.record(s.max(0) as u64);
                }
                ConnSlackReport {
                    conn: ConnectionId(conn),
                    delivered: slacks.len(),
                    misses: slacks.iter().filter(|&&s| s < 0).count(),
                    min_slack: slacks.iter().copied().min().unwrap_or(0),
                    mean_slack: slacks.iter().sum::<i64>() as f64 / slacks.len() as f64,
                    slack: hist,
                }
            })
            .collect();
        let occupancy = Self::summarise_occupancy(sim);
        let mut links = Vec::new();
        for node in sim.topology().nodes() {
            for dir in Direction::ALL {
                if sim.topology().link_end(node, dir).is_some() {
                    links.push((node, dir, sim.link_usage(node, dir)));
                }
            }
        }
        links.sort_by_key(|(_, _, u)| std::cmp::Reverse(u.tc_symbols + u.be_symbols));
        NetworkReport {
            cycles: sim.now(),
            tc_latency,
            be_latency,
            tc_delivered,
            be_delivered,
            deadline_misses,
            slack,
            occupancy,
            links,
        }
    }

    fn summarise_occupancy<C: Chip>(sim: &Simulator<C>) -> Option<OccupancySummary> {
        let samples = sim.gauge_samples();
        if samples.is_empty() {
            return None;
        }
        let mut memory_sum = 0u64;
        let mut backlog_sum = 0u64;
        let mut point_count = 0u64;
        let mut peak_memory_occupied = 0usize;
        let mut peak_memory_node = NodeId(0);
        let mut peak_queue_depth = 0usize;
        for sample in samples {
            for (idx, g) in sample.nodes.iter().enumerate() {
                memory_sum += g.memory_occupied as u64;
                backlog_sum += g.sched_backlog as u64;
                point_count += 1;
                if g.memory_occupied > peak_memory_occupied {
                    peak_memory_occupied = g.memory_occupied;
                    peak_memory_node = NodeId(idx as u16);
                }
                peak_queue_depth = peak_queue_depth.max(*g.queue_depth.iter().max().unwrap());
            }
        }
        Some(OccupancySummary {
            samples: samples.len(),
            mean_memory_occupied: memory_sum as f64 / point_count as f64,
            peak_memory_occupied,
            peak_memory_node,
            mean_sched_backlog: backlog_sum as f64 / point_count as f64,
            peak_queue_depth,
        })
    }

    /// Slack statistics of one connection, if it delivered deadline-bearing
    /// packets.
    #[must_use]
    pub fn conn_slack(&self, conn: ConnectionId) -> Option<&ConnSlackReport> {
        self.slack.iter().find(|r| r.conn == conn)
    }

    /// The smallest per-connection slack across the whole network (None
    /// when nothing deadline-bearing was delivered).
    #[must_use]
    pub fn min_slack(&self) -> Option<i64> {
        self.slack.iter().map(|r| r.min_slack).min()
    }

    /// The busiest links, for quick printing.
    #[must_use]
    pub fn hottest_links(&self, n: usize) -> &[(NodeId, Direction, LinkUsage)] {
        &self.links[..n.min(self.links.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn histogram_basic_statistics() {
        let mut h = Histogram::new(10, 10);
        h.record_all(&[5, 15, 15, 95, 1000]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.overflow(), 1);
        assert!((h.mean() - 226.0).abs() < 1e-9);
        // Buckets: edge 10 → 1 sample, edge 20 → 2, edge 100 → 1.
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets, vec![(10, 1), (20, 2), (100, 1)]);
    }

    #[test]
    fn percentiles_use_bucket_edges() {
        let mut h = Histogram::new(10, 100);
        for v in 0..100 {
            h.record(v * 5); // 0..495
        }
        assert_eq!(h.percentile(50.0), 250);
        assert_eq!(h.percentile(100.0), 500);
        assert_eq!(Histogram::new(1, 1).percentile(99.0), 0, "empty histogram");
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_width_rejected() {
        let _ = Histogram::new(0, 4);
    }

    #[test]
    fn zeroth_percentile_is_zero() {
        let mut h = Histogram::new(10, 4);
        h.record_all(&[5, 15, 25]);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn negative_percentile_rejected() {
        let _ = Histogram::new(10, 4).percentile(-1.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be in [0, 100]")]
    fn oversized_percentile_rejected() {
        let _ = Histogram::new(10, 4).percentile(100.5);
    }

    #[test]
    fn overflow_bucket_answers_with_the_true_max() {
        let mut h = Histogram::new(10, 2); // bucketed range [0, 20)
        h.record_all(&[5, 1000, 2000]);
        assert_eq!(h.overflow(), 2);
        // Ranks landing in the overflow bucket fall back to the exact max.
        assert_eq!(h.percentile(100.0), 2000);
        assert_eq!(h.percentile(67.0), 2000);
        // Ranks inside the bucketed range still use bucket edges.
        assert_eq!(h.percentile(33.0), 10);
    }

    #[test]
    fn empty_histogram_queries_are_total() {
        let h = Histogram::new(10, 4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.overflow(), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
        assert_eq!(h.iter().count(), 0);
        for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 0, "p = {p}");
        }
    }

    proptest! {
        /// The histogram never loses samples and its mean matches the
        /// exact mean.
        #[test]
        fn histogram_conserves_samples(values in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut h = Histogram::new(7, 64);
            h.record_all(&values);
            prop_assert_eq!(h.count(), values.len() as u64);
            let bucketed: u64 = h.iter().map(|(_, c)| c).sum::<u64>() + h.overflow();
            prop_assert_eq!(bucketed, values.len() as u64);
            let exact = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
            prop_assert!((h.mean() - exact).abs() < 1e-6);
            prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        }

        /// `percentile` is monotone non-decreasing in `p`, for any sample
        /// set and any pair of valid percentiles.
        #[test]
        fn percentile_is_monotone(
            values in proptest::collection::vec(0u64..5_000, 0..100),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            let mut h = Histogram::new(13, 16);
            h.record_all(&values);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(
                h.percentile(lo) <= h.percentile(hi),
                "percentile({}) = {} > percentile({}) = {}",
                lo, h.percentile(lo), hi, h.percentile(hi)
            );
        }
    }
}
