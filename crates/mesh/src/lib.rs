//! Cycle-stepped network simulator substrate.
//!
//! The paper evaluates a single Verilog chip and defers multi-node studies
//! to a multicomputer network simulator (its §7 cites PP-MESS-SIM); this
//! crate *is* that simulator, built from scratch: a 2-D mesh (or custom
//! wiring, e.g. the single-router loop-back of the paper's §5.2
//! Experiment 1) of [`rtr_types::chip::Chip`] instances connected by links
//! that carry one byte-symbol per cycle per direction plus reverse-flowing
//! best-effort credits.
//!
//! * [`topology`] — mesh coordinates and link wiring,
//! * [`adjacency`] — the CSR link/feeder tables the simulator runs on,
//! * [`link`] — the symbol/credit pipes with configurable wire latency,
//! * [`fault`] — the scripted, seeded mid-run fault-injection plane,
//! * [`source`] — the traffic-source trait workloads implement,
//! * [`sim`] — the simulator main loop,
//! * [`stats`] — delivery logs and derived metrics.
//!
//! # Example
//!
//! ```
//! use rtr_core::RealTimeRouter;
//! use rtr_mesh::sim::Simulator;
//! use rtr_mesh::topology::Topology;
//! use rtr_types::config::RouterConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = Topology::mesh(4, 4);
//! let mut sim = Simulator::build(topo, |_| RealTimeRouter::new(RouterConfig::default()))?;
//! sim.run(100);
//! assert_eq!(sim.now(), 100);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
// `deny` rather than `forbid`: the worker pool's handoff cell and disjoint
// chunk views need a small, documented unsafe core (`pool.rs` opts in with
// a module-level allow); everything else stays unsafe-free.
#![deny(unsafe_code)]

pub mod adjacency;
pub mod fault;
pub mod link;
pub(crate) mod metrics;
pub mod netstats;
pub(crate) mod pool;
pub mod sim;
pub mod source;
pub mod stats;
pub mod topology;

pub use adjacency::LinkTable;
pub use fault::{FaultEvent, FaultKind, FaultSchedule, FaultStats};
pub use link::LinkLedger;
pub use netstats::{ConnSlackReport, Histogram, NetworkReport, OccupancySummary};
pub use sim::{ControlStats, LinkUsage, OccupancyHistory, OccupancySample, Quiescence, Simulator};
pub use source::TrafficSource;
pub use stats::DeliveryLog;
pub use topology::Topology;
