//! Persistent worker pool for parallel chip ticking.
//!
//! [`Simulator::step_parallel`] used to spawn scoped threads every stepped
//! cycle; BENCH_4's phase profile attributed 84% of the parallel step to
//! that spawn + scope-barrier overhead. This module replaces the re-spawn
//! with threads created once (lazily, on the first parallel step) and fed
//! per-cycle work through a seqlock-style epoch counter:
//!
//! 1. The coordinator writes the cycle's job (a `Fn(usize)` ticking one
//!    chunk of chips per worker index) into a shared cell, then bumps the
//!    epoch with `Release` ordering and unparks any parked worker.
//! 2. Each worker `Acquire`-loads the epoch, spinning briefly and then
//!    parking between cycles; observing a new epoch publishes the job
//!    pointer and every coordinator-side write (the pre-tick link phase)
//!    to the worker.
//! 3. Workers run the job with their index, then decrement the remaining
//!    count with `Release`; the coordinator `Acquire`-waits for zero, which
//!    publishes every chip mutation back before the post-tick link phase.
//!
//! Determinism is untouched: the pool only changes *who executes* a chunk,
//! never what a chunk contains or the order chunk results are merged (the
//! simulator still merges per-chunk wake buffers in chunk-index order).
//!
//! The job borrows the simulator's chips for the duration of one cycle;
//! [`WorkerPool::dispatch`] erases that lifetime to hand the borrow to the
//! workers, and the returned [`ActiveJob`] guard re-establishes it by
//! blocking (in `wait` or on drop, including unwinds) until every worker
//! is done. This is the same discipline as `std::thread::scope`, kept
//! sound by the guard rather than a closure scope.
//!
//! [`Simulator::step_parallel`]: crate::sim::Simulator::step_parallel

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

/// Spin iterations a worker burns on the epoch before parking. Between
/// cycles the coordinator runs the serial link phases (a few microseconds
/// on meshes worth parallelising), so a short spin usually catches the
/// next epoch without a park/unpark round trip.
const SPIN_BEFORE_PARK: u32 = 4096;

/// The type-erased per-cycle job: called once per worker with the worker's
/// index (`0..worker_threads`). The coordinator itself runs an extra chunk
/// outside the pool, so worker `w` conventionally handles chunk `w + 1`.
type Job = &'static (dyn Fn(usize) + Sync);

/// The job cell: written by the coordinator strictly before the epoch bump
/// that announces it, read by workers strictly after observing that bump
/// (`Release`/`Acquire` pairs make both visible), and cleared only after
/// every worker has checked in. No two accesses race.
struct JobCell(UnsafeCell<Option<Job>>);

// SAFETY: see the struct comment — the epoch/remaining protocol serialises
// all accesses; the cell is never read and written concurrently.
unsafe impl Sync for JobCell {}

struct Shared {
    /// Monotone job counter; a change is the "new work" signal.
    epoch: AtomicU64,
    /// The job for the current epoch.
    job: JobCell,
    /// Workers that have not finished the current job yet.
    remaining: AtomicUsize,
    /// Per-worker "I am parked" flags, so the coordinator only pays an
    /// unpark syscall for workers that actually went to sleep.
    parked: Vec<AtomicBool>,
    /// Set (with the epoch bumped) to shut the workers down.
    shutdown: AtomicBool,
    /// A worker panicked while running a job; re-raised by the coordinator.
    panicked: AtomicBool,
    /// The coordinator thread to unpark when the last worker finishes.
    /// Refreshed on every dispatch (the simulator may migrate threads).
    coordinator: Mutex<Option<Thread>>,
}

/// Long-lived worker threads fed per-cycle work by epoch handoff.
///
/// Crate-internal: the simulator owns one (lazily created) and rebuilds it
/// when [`set_parallelism`] changes the worker count.
///
/// [`set_parallelism`]: crate::sim::Simulator::set_parallelism
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("worker_threads", &self.threads.len()).finish()
    }
}

impl WorkerPool {
    /// Spawns `worker_threads` parked workers (the coordinator's own chunk
    /// does not need a thread, so a `workers = n` simulator passes `n - 1`).
    pub fn new(worker_threads: usize) -> Self {
        let shared = Arc::new(Shared {
            epoch: AtomicU64::new(0),
            job: JobCell(UnsafeCell::new(None)),
            remaining: AtomicUsize::new(0),
            parked: (0..worker_threads).map(|_| AtomicBool::new(false)).collect(),
            shutdown: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            coordinator: Mutex::new(None),
        });
        let threads = (0..worker_threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rtr-mesh-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawning a mesh worker thread")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of pool-owned threads (excludes the coordinator).
    pub fn worker_threads(&self) -> usize {
        self.threads.len()
    }

    /// Publishes `job` to every worker and returns a guard that must be
    /// waited on (or dropped) before any state the job borrows is touched
    /// again. The call itself is the handoff: job-cell write, epoch bump,
    /// unparks for sleeping workers.
    pub fn dispatch<'a>(&'a self, job: &'a (dyn Fn(usize) + Sync)) -> ActiveJob<'a> {
        debug_assert_eq!(self.shared.remaining.load(Ordering::Relaxed), 0);
        *self.shared.coordinator.lock().expect("coordinator lock") = Some(std::thread::current());
        // SAFETY: `remaining == 0` (debug-asserted above, guaranteed by
        // `ActiveJob` consuming every dispatch), so no worker is reading
        // the cell. The lifetime erasure to `'static` is sound because the
        // returned guard blocks until `remaining` returns to zero before
        // the `'a` borrow can end — workers never hold the job past their
        // check-in.
        unsafe {
            let erased: Job = std::mem::transmute::<
                &'a (dyn Fn(usize) + Sync),
                &'static (dyn Fn(usize) + Sync),
            >(job);
            *self.shared.job.0.get() = Some(erased);
        }
        self.shared.remaining.store(self.threads.len(), Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for (w, thread) in self.threads.iter().enumerate() {
            if self.shared.parked[w].swap(false, Ordering::AcqRel) {
                thread.thread().unpark();
            }
        }
        ActiveJob { pool: self, done: false, _borrow: PhantomData }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for thread in &self.threads {
            thread.thread().unpark();
        }
        for thread in self.threads.drain(..) {
            // A worker that panicked outside a job (impossible today) would
            // surface here; job panics are re-raised by `ActiveJob`.
            let _ = thread.join();
        }
    }
}

/// Guard for a dispatched job: the coordinator's half of the barrier.
#[must_use = "the job borrows simulator state; wait() before touching it"]
pub(crate) struct ActiveJob<'a> {
    pool: &'a WorkerPool,
    done: bool,
    _borrow: PhantomData<&'a ()>,
}

impl ActiveJob<'_> {
    /// Blocks until every worker has finished the job, then re-raises any
    /// worker panic on the coordinator.
    pub fn wait(mut self) {
        self.wait_inner();
        self.done = true;
        if self.pool.shared.panicked.swap(false, Ordering::AcqRel) {
            panic!("a mesh worker thread panicked while ticking chips");
        }
    }

    fn wait_inner(&self) {
        let shared = &self.pool.shared;
        let mut spins = 0u32;
        while shared.remaining.load(Ordering::Acquire) != 0 {
            if spins < SPIN_BEFORE_PARK {
                spins += 1;
                std::hint::spin_loop();
            } else {
                // The finishing worker unparks us; the timeout is a safety
                // net against a missed coordinator handle, not a poll loop.
                std::thread::park_timeout(Duration::from_micros(100));
            }
        }
        // All workers checked in (Release/Acquire above), so clearing the
        // cell cannot race a reader.
        unsafe {
            *shared.job.0.get() = None;
        }
    }
}

impl Drop for ActiveJob<'_> {
    fn drop(&mut self) {
        if !self.done {
            // Unwinding past the guard (e.g. a coordinator-side panic in
            // the local chunk): still block until workers release the
            // borrow, but swallow the flag — a double panic would abort.
            self.wait_inner();
            if !std::thread::panicking() && self.pool.shared.panicked.swap(false, Ordering::AcqRel)
            {
                panic!("a mesh worker thread panicked while ticking chips");
            }
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen = 0u64;
    // Start with the spin budget exhausted: there is no job yet at spawn
    // time, and spinning here would steal CPU from the thread that just
    // spawned us (on a fully loaded host, from the simulation itself).
    let mut spins = SPIN_BEFORE_PARK;
    loop {
        let current = loop {
            let epoch = shared.epoch.load(Ordering::Acquire);
            if epoch != seen {
                break epoch;
            }
            if spins < SPIN_BEFORE_PARK {
                spins += 1;
                std::hint::spin_loop();
            } else {
                shared.parked[index].store(true, Ordering::Release);
                // Re-check after publishing the flag so an epoch bump that
                // raced the store cannot strand us parked: either we see it
                // here, or the coordinator saw our flag and unparks us.
                if shared.epoch.load(Ordering::Acquire) != seen {
                    shared.parked[index].store(false, Ordering::Release);
                    break shared.epoch.load(Ordering::Acquire);
                }
                std::thread::park();
            }
        };
        seen = current;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: observing the new epoch (Acquire) orders this read after
        // the coordinator's job write (before its Release bump), and the
        // cell is not cleared until after our check-in below.
        let job = unsafe { *shared.job.0.get() };
        if let Some(job) = job {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(index)));
            if outcome.is_err() {
                shared.panicked.store(true, Ordering::Release);
            }
        }
        if shared.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            if let Some(coordinator) = shared.coordinator.lock().expect("coordinator lock").as_ref()
            {
                coordinator.unpark();
            }
        }
        // Fresh spin budget between jobs: the next dispatch usually lands
        // within the serial link phases, so spinning catches it cheaply.
        spins = 0;
    }
}

/// A slice of work items claimable by index from any thread, each at most
/// once — the safe bridge between one shared job closure and the disjoint
/// `&mut` chunks it hands to workers.
///
/// Memory safety is enforced at runtime: claiming an index twice panics
/// (it would alias a `&mut`), and out-of-range claims return `None` so a
/// pool with more workers than chunks degrades gracefully.
pub(crate) struct ClaimSlice<'a, T> {
    ptr: *mut T,
    claimed: Box<[AtomicBool]>,
    _borrow: PhantomData<&'a mut [T]>,
}

// SAFETY: `claim` hands each element to exactly one thread (enforced by
// the `claimed` flags), so sending/sharing the view is as safe as sending
// the elements themselves.
unsafe impl<T: Send> Sync for ClaimSlice<'_, T> {}
unsafe impl<T: Send> Send for ClaimSlice<'_, T> {}

impl<'a, T> ClaimSlice<'a, T> {
    pub fn new(items: &'a mut [T]) -> Self {
        ClaimSlice {
            ptr: items.as_mut_ptr(),
            claimed: items.iter().map(|_| AtomicBool::new(false)).collect(),
            _borrow: PhantomData,
        }
    }

    /// Claims element `index`, or `None` if it is out of range.
    ///
    /// The returned borrow lives for `'a` — it derives from the original
    /// `&'a mut [T]`, not from `&self`, which is also why handing it out
    /// from a shared reference is sound: the claim flag guarantees each
    /// element is surrendered at most once.
    ///
    /// # Panics
    ///
    /// Panics if the element was already claimed — two live `&mut` to one
    /// element would be undefined behaviour, so the bug trips loudly.
    pub fn claim(&self, index: usize) -> Option<&'a mut T> {
        let flag = self.claimed.get(index)?;
        assert!(
            !flag.swap(true, Ordering::AcqRel),
            "work item {index} claimed twice — chunk/worker mapping bug"
        );
        // SAFETY: in range (checked above) and claimed exactly once, so
        // this is the only live reference to the element; the PhantomData
        // borrow keeps the backing slice alive and un-aliased for 'a.
        Some(unsafe { &mut *self.ptr.add(index) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn pool_runs_every_worker_and_reuses_threads() {
        let pool = WorkerPool::new(3);
        let hits = AtomicU32::new(0);
        for _ in 0..100 {
            let job = |_w: usize| {
                hits.fetch_add(1, Ordering::Relaxed);
            };
            pool.dispatch(&job).wait();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn claim_slice_hands_out_disjoint_elements() {
        let mut items = vec![0u64; 4];
        let claims = ClaimSlice::new(&mut items);
        let pool = WorkerPool::new(3);
        let job = |w: usize| {
            if let Some(item) = claims.claim(w + 1) {
                *item = (w + 1) as u64;
            }
            // Out-of-range claims are quietly absent.
            assert!(claims.claim(99).is_none());
        };
        let guard = pool.dispatch(&job);
        *claims.claim(0).expect("chunk 0") = 42;
        guard.wait();
        drop(claims);
        assert_eq!(items, vec![42, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics() {
        let mut items = vec![0u8; 1];
        let claims = ClaimSlice::new(&mut items);
        let _a = claims.claim(0);
        let _b = claims.claim(0);
    }

    #[test]
    fn worker_panic_reaches_the_coordinator() {
        let pool = WorkerPool::new(1);
        let job = |_w: usize| panic!("boom");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.dispatch(&job).wait();
        }));
        assert!(caught.is_err(), "the worker panic must be re-raised");
        // The pool survives a panicked job and keeps serving.
        let ok = |_w: usize| {};
        pool.dispatch(&ok).wait();
    }

    #[test]
    fn drop_joins_all_threads() {
        let pool = WorkerPool::new(4);
        let job = |_w: usize| {};
        pool.dispatch(&job).wait();
        drop(pool); // join happens here; a hang would time the test out
    }
}
