//! Delivery logs and derived network metrics.

use rtr_types::packet::{BePacket, TcPacket};
use rtr_types::time::{cycle_to_slot, Cycle};

/// Everything a node's reception port delivered, with timestamps.
#[derive(Debug, Default)]
pub struct DeliveryLog {
    /// Delivered time-constrained packets.
    pub tc: Vec<(Cycle, TcPacket)>,
    /// Delivered best-effort packets.
    pub be: Vec<(Cycle, BePacket)>,
}

impl DeliveryLog {
    /// End-to-end latencies (cycles) of delivered time-constrained packets.
    #[must_use]
    pub fn tc_latencies(&self) -> Vec<Cycle> {
        self.tc.iter().map(|(cycle, p)| cycle.saturating_sub(p.trace.injected_at)).collect()
    }

    /// End-to-end latencies (cycles) of delivered best-effort packets.
    #[must_use]
    pub fn be_latencies(&self) -> Vec<Cycle> {
        self.be.iter().map(|(cycle, p)| cycle.saturating_sub(p.trace.injected_at)).collect()
    }

    /// Delivered time-constrained packets that missed their end-to-end
    /// deadline: the delivery slot exceeds `trace.deadline` (absolute
    /// slots). Packets without a deadline (`deadline == 0`) are skipped.
    #[must_use]
    pub fn tc_deadline_misses(&self, slot_bytes: usize) -> usize {
        self.tc
            .iter()
            .filter(|(cycle, p)| {
                p.trace.deadline != 0 && cycle_to_slot(*cycle, slot_bytes) > p.trace.deadline
            })
            .count()
    }

    /// Delivered best-effort packets that missed a deadline carried in
    /// their trace — used when a baseline router carries time-constrained
    /// payloads as best-effort traffic. Packets without a deadline are
    /// skipped.
    #[must_use]
    pub fn be_deadline_misses(&self, slot_bytes: usize) -> usize {
        self.be
            .iter()
            .filter(|(cycle, p)| {
                p.trace.deadline != 0 && cycle_to_slot(*cycle, slot_bytes) > p.trace.deadline
            })
            .count()
    }

    /// Remaining slack (slots) of each delivered deadline-bearing packet;
    /// negative values are misses.
    #[must_use]
    pub fn tc_slack_slots(&self, slot_bytes: usize) -> Vec<i64> {
        self.tc
            .iter()
            .filter(|(_, p)| p.trace.deadline != 0)
            .map(|(cycle, p)| p.trace.deadline as i64 - cycle_to_slot(*cycle, slot_bytes) as i64)
            .collect()
    }
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Minimum, or 0 when empty.
    pub min: Cycle,
    /// Mean, or 0.0 when empty.
    pub mean: f64,
    /// Maximum, or 0 when empty.
    pub max: Cycle,
    /// 99th percentile (nearest-rank), or 0 when empty.
    pub p99: Cycle,
}

impl LatencySummary {
    /// Summarises a sample set.
    #[must_use]
    pub fn of(samples: &[Cycle]) -> Self {
        if samples.is_empty() {
            return LatencySummary { count: 0, min: 0, mean: 0.0, max: 0, p99: 0 };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u128 = sorted.iter().map(|&c| u128::from(c)).sum();
        let p99_idx = ((count as f64 * 0.99).ceil() as usize).clamp(1, count) - 1;
        LatencySummary {
            count,
            min: sorted[0],
            mean: sum as f64 / count as f64,
            max: *sorted.last().unwrap(),
            p99: sorted[p99_idx],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::clock::SlotClock;
    use rtr_types::ids::ConnectionId;
    use rtr_types::packet::PacketTrace;

    fn tc(delivered: Cycle, injected: Cycle, deadline_slot: u64) -> (Cycle, TcPacket) {
        (
            delivered,
            TcPacket {
                conn: ConnectionId(0),
                arrival: SlotClock::new(8).wrap(0),
                payload: vec![].into(),
                trace: PacketTrace {
                    injected_at: injected,
                    deadline: deadline_slot,
                    ..PacketTrace::default()
                },
            },
        )
    }

    #[test]
    fn latency_and_misses() {
        let log = DeliveryLog { tc: vec![tc(100, 20, 10), tc(250, 50, 10)], be: vec![] };
        assert_eq!(log.tc_latencies(), vec![80, 200]);
        // Slot 20 bytes: deliveries at slots 5 and 12; deadline slot 10.
        assert_eq!(log.tc_deadline_misses(20), 1);
        assert_eq!(log.tc_slack_slots(20), vec![5, -2]);
    }

    #[test]
    fn zero_deadline_packets_are_not_misses() {
        let log = DeliveryLog { tc: vec![tc(10_000, 0, 0)], be: vec![] };
        assert_eq!(log.tc_deadline_misses(20), 0);
        assert!(log.tc_slack_slots(20).is_empty());
    }

    #[test]
    fn summary_handles_empty_and_percentiles() {
        let empty = LatencySummary::of(&[]);
        assert_eq!(empty.count, 0);
        let s = LatencySummary::of(&(1..=100).collect::<Vec<_>>());
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p99, 99);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }
}
