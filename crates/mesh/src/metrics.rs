//! The simulator's metrics bundle: registry + profiler + flight recorder.
//!
//! [`SimMetrics`] groups everything the simulator carries for
//! observability, so `sim.rs` holds one field and the `metrics` feature
//! gates live here. With the feature off every member is a zero-sized
//! no-op (checked by a unit test below), so the bundle adds no bytes to
//! `Simulator` and call sites compile out.

use std::path::PathBuf;

use rtr_metrics::{CounterId, FlightRecorder, HistogramId, MetricsRegistry, PhaseProfiler};

/// Pre-registered ids for the simulator's own hot-path metrics.
///
/// Ids are zero-sized when the feature is off, so this struct always has
/// the same shape and call sites never need gates.
#[derive(Debug)]
pub(crate) struct SimIds {
    /// `sim.stale_repolls`: components re-polled by full prime passes.
    pub stale_repolls: CounterId,
    /// `sim.leaps`: number of quiet spans skipped.
    pub leaps: CounterId,
    /// `sim.leaped_cycles`: total cycles skipped by leaping.
    pub leaped_cycles: CounterId,
    /// `sim.leap_cycles`: log2 histogram of individual leap lengths.
    pub leap_len: HistogramId,
}

/// Everything the simulator carries for observability.
#[derive(Debug)]
pub(crate) struct SimMetrics {
    /// The unified counter/gauge/histogram registry.
    pub registry: MetricsRegistry,
    /// Wall-clock attribution per drive phase.
    pub profiler: PhaseProfiler,
    #[cfg(feature = "metrics")]
    recorder: Option<FlightRecorder>,
    #[cfg(feature = "metrics")]
    deadline_slot_bytes: Option<usize>,
    /// Pre-registered ids for hot-path increments.
    pub ids: SimIds,
}

impl SimMetrics {
    pub fn new() -> Self {
        let registry = MetricsRegistry::new();
        let ids = SimIds {
            stale_repolls: registry.counter("sim.stale_repolls"),
            leaps: registry.counter("sim.leaps"),
            leaped_cycles: registry.counter("sim.leaped_cycles"),
            leap_len: registry.histogram("sim.leap_cycles"),
        };
        SimMetrics {
            registry,
            profiler: PhaseProfiler::new(),
            #[cfg(feature = "metrics")]
            recorder: None,
            #[cfg(feature = "metrics")]
            deadline_slot_bytes: None,
            ids,
        }
    }

    /// The armed flight recorder, if any (always `None` with the feature
    /// off, which dead-code-eliminates recording blocks).
    #[inline]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        #[cfg(feature = "metrics")]
        {
            self.recorder.as_ref()
        }
        #[cfg(not(feature = "metrics"))]
        {
            None
        }
    }

    /// Arms a flight recorder with a ring of `cap` events dumping to
    /// `path`. No-op without the `metrics` feature.
    pub fn arm_recorder(&mut self, cap: usize, path: PathBuf) {
        #[cfg(feature = "metrics")]
        {
            let recorder = FlightRecorder::new(cap);
            recorder.set_dump_path(path);
            self.recorder = Some(recorder);
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = (cap, path);
        }
    }

    /// Starts triggering the flight recorder on missed deadlines, using
    /// `slot_bytes` to convert delivery cycles to slot numbers.
    pub fn watch_deadlines(&mut self, slot_bytes: usize) {
        #[cfg(feature = "metrics")]
        {
            self.deadline_slot_bytes = Some(slot_bytes);
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = slot_bytes;
        }
    }

    /// The configured deadline watch, if any.
    #[inline]
    pub fn deadline_slot_bytes(&self) -> Option<usize> {
        #[cfg(feature = "metrics")]
        {
            self.deadline_slot_bytes
        }
        #[cfg(not(feature = "metrics"))]
        {
            None
        }
    }
}

#[cfg(all(test, not(feature = "metrics")))]
mod size_tests {
    use super::SimMetrics;

    /// The whole bundle must vanish from `Simulator` when the feature is
    /// off — any stray non-ZST member would show up here.
    #[test]
    fn disabled_bundle_is_zero_sized() {
        assert_eq!(std::mem::size_of::<SimMetrics>(), 0);
    }
}
