//! The deterministic fault-injection plane.
//!
//! The paper's §1 sells point-to-point networks partly on "resilience to
//! link and node failures"; this module is the half of that story the chip
//! cannot provide: a seeded, *scripted* schedule of faults the simulator
//! applies mid-run. Every fault fires at an exact cycle, before that
//! cycle's link phase, so all four drive modes (stepped, serial-leaping,
//! parallel-leaping, scan-quiescence) observe it identically — the leaping
//! paths clamp their quiet-span targets to the next fault epoch and can
//! therefore never jump across one.
//!
//! Faults come in three families:
//!
//! * **Link down/up** — a downed link blackholes data symbols and reverse
//!   credits (counted in its [`crate::link::LinkLedger`], not leaked).
//! * **Node crash/restore** — a crashed node stops ticking and drains
//!   nothing; symbols arriving at it go stale on the wire and are dropped
//!   (and counted) deliberately.
//! * **Flaky links** — a seeded per-link generator drops or corrupts a
//!   fraction of *packets* (whole packets, never mid-packet tails, so the
//!   downstream reassembly state machines stay coherent).

use rtr_types::ids::{Direction, NodeId};
use rtr_types::time::Cycle;

use crate::topology::Topology;

/// One kind of fault (or repair) the simulator can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The directed link leaving `node` towards `dir` goes down: data
    /// symbols and reverse credits already on the wire are destroyed
    /// (counted as lost) and everything sent while down is blackholed.
    LinkDown {
        /// Owning (transmitting) node.
        node: NodeId,
        /// Output direction of the link.
        dir: Direction,
    },
    /// The directed link comes back up (its ledger keeps the loss counts).
    LinkUp {
        /// Owning (transmitting) node.
        node: NodeId,
        /// Output direction of the link.
        dir: Direction,
    },
    /// The node stops ticking: it drains no arrivals, returns no credits,
    /// generates no traffic, and its counters freeze. Wires feeding it
    /// back up; arrivals that go stale are dropped and counted.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
    },
    /// The node resumes ticking from its frozen state.
    NodeRestore {
        /// The restored node.
        node: NodeId,
    },
    /// The directed link starts dropping and/or corrupting a fraction of
    /// the *packets* it carries (decided per packet by a seeded per-link
    /// generator; fractions are in 1024ths).
    LinkFlaky {
        /// Owning (transmitting) node.
        node: NodeId,
        /// Output direction of the link.
        dir: Direction,
        /// Packets dropped, per 1024.
        drop_per_1024: u16,
        /// Packets corrupted, per 1024 (header corruption for
        /// time-constrained packets, payload corruption for best-effort).
        corrupt_per_1024: u16,
    },
    /// The directed link stops being flaky.
    LinkStable {
        /// Owning (transmitting) node.
        node: NodeId,
        /// Output direction of the link.
        dir: Direction,
    },
}

/// A fault scheduled at an absolute cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The cycle the fault applies (before that cycle's link phase).
    pub at: Cycle,
    /// What happens.
    pub kind: FaultKind,
}

/// A scripted, seeded fault schedule. Build one with the fluent methods
/// (or [`FaultSchedule::parse`] for the text format the console takes) and
/// hand it to `Simulator::set_fault_schedule`.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultSchedule {
    /// An empty schedule with seed 1.
    #[must_use]
    pub fn new() -> Self {
        FaultSchedule { events: Vec::new(), seed: 1 }
    }

    /// Sets the seed the per-link flaky generators derive from.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed.max(1);
        self
    }

    /// Adds an arbitrary event.
    #[must_use]
    pub fn event(mut self, at: Cycle, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Schedules a link failure.
    #[must_use]
    pub fn link_down(self, at: Cycle, node: NodeId, dir: Direction) -> Self {
        self.event(at, FaultKind::LinkDown { node, dir })
    }

    /// Schedules a link repair.
    #[must_use]
    pub fn link_up(self, at: Cycle, node: NodeId, dir: Direction) -> Self {
        self.event(at, FaultKind::LinkUp { node, dir })
    }

    /// Schedules a node crash.
    #[must_use]
    pub fn node_crash(self, at: Cycle, node: NodeId) -> Self {
        self.event(at, FaultKind::NodeCrash { node })
    }

    /// Schedules a node restore.
    #[must_use]
    pub fn node_restore(self, at: Cycle, node: NodeId) -> Self {
        self.event(at, FaultKind::NodeRestore { node })
    }

    /// Schedules the start of a flaky-link regime.
    #[must_use]
    pub fn link_flaky(
        self,
        at: Cycle,
        node: NodeId,
        dir: Direction,
        drop_per_1024: u16,
        corrupt_per_1024: u16,
    ) -> Self {
        self.event(at, FaultKind::LinkFlaky { node, dir, drop_per_1024, corrupt_per_1024 })
    }

    /// Schedules the end of a flaky-link regime.
    #[must_use]
    pub fn link_stable(self, at: Cycle, node: NodeId, dir: Direction) -> Self {
        self.event(at, FaultKind::LinkStable { node, dir })
    }

    /// The scheduled events, in insertion order (the simulator sorts them
    /// stably by cycle, so same-cycle events apply in insertion order).
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The configured seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the schedule has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the schedule into `(events, seed)`.
    #[must_use]
    pub fn into_parts(self) -> (Vec<FaultEvent>, u64) {
        (self.events, self.seed)
    }

    /// Parses the console text format, validating every node and link
    /// against `topo`. One event per line:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// seed 42
    /// 5000  link_down    1,1 x+
    /// 9000  link_up      1,1 x+
    /// 5000  node_crash   2,0
    /// 9000  node_restore 2,0
    /// 5000  link_flaky   1,1 y- drop=32 corrupt=16
    /// 9000  link_stable  1,1 y-
    /// ```
    ///
    /// Directions are `x+`, `x-`, `y+`, `y-`; flaky fractions are per
    /// 1024.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line on malformed input,
    /// out-of-mesh coordinates, or an unwired link.
    pub fn parse(text: &str, topo: &Topology) -> Result<Self, String> {
        let mut schedule = FaultSchedule::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let n = idx + 1;
            let mut words = line.split_whitespace();
            let first = words.next().expect("non-empty line has a first word");
            if first == "seed" {
                let seed = words
                    .next()
                    .ok_or_else(|| format!("line {n}: seed needs a value"))?
                    .parse::<u64>()
                    .map_err(|e| format!("line {n}: bad seed: {e}"))?;
                schedule.seed = seed.max(1);
                continue;
            }
            let at = first.parse::<Cycle>().map_err(|e| format!("line {n}: bad cycle: {e}"))?;
            let op = words.next().ok_or_else(|| format!("line {n}: missing fault kind"))?;
            let node = parse_node(words.next(), topo, n)?;
            let kind = match op {
                "node_crash" => FaultKind::NodeCrash { node },
                "node_restore" => FaultKind::NodeRestore { node },
                "link_down" | "link_up" | "link_flaky" | "link_stable" => {
                    let dir = parse_dir(words.next(), n)?;
                    if topo.link_end(node, dir).is_none() {
                        return Err(format!(
                            "line {n}: link {node} {} is not wired",
                            dir_name(dir)
                        ));
                    }
                    match op {
                        "link_down" => FaultKind::LinkDown { node, dir },
                        "link_up" => FaultKind::LinkUp { node, dir },
                        "link_stable" => FaultKind::LinkStable { node, dir },
                        _ => {
                            let mut drop_per_1024 = 0;
                            let mut corrupt_per_1024 = 0;
                            for word in words.by_ref() {
                                let (key, value) = word.split_once('=').ok_or_else(|| {
                                    format!("line {n}: expected key=value, got {word}")
                                })?;
                                let value = value
                                    .parse::<u16>()
                                    .map_err(|e| format!("line {n}: bad {key}: {e}"))?;
                                match key {
                                    "drop" => drop_per_1024 = value.min(1024),
                                    "corrupt" => corrupt_per_1024 = value.min(1024),
                                    _ => return Err(format!("line {n}: unknown key {key}")),
                                }
                            }
                            FaultKind::LinkFlaky { node, dir, drop_per_1024, corrupt_per_1024 }
                        }
                    }
                }
                _ => return Err(format!("line {n}: unknown fault kind {op}")),
            };
            if let Some(extra) = words.next() {
                return Err(format!("line {n}: trailing input {extra}"));
            }
            schedule.events.push(FaultEvent { at, kind });
        }
        Ok(schedule)
    }
}

fn parse_node(word: Option<&str>, topo: &Topology, line: usize) -> Result<NodeId, String> {
    let word = word.ok_or_else(|| format!("line {line}: missing node coordinates"))?;
    let (x, y) = word
        .split_once(',')
        .ok_or_else(|| format!("line {line}: expected x,y coordinates, got {word}"))?;
    let x = x.parse::<u16>().map_err(|e| format!("line {line}: bad x: {e}"))?;
    let y = y.parse::<u16>().map_err(|e| format!("line {line}: bad y: {e}"))?;
    if x >= topo.width() || y >= topo.height() {
        return Err(format!(
            "line {line}: node {x},{y} is outside the {}x{} mesh",
            topo.width(),
            topo.height()
        ));
    }
    Ok(topo.node_at(x, y))
}

fn parse_dir(word: Option<&str>, line: usize) -> Result<Direction, String> {
    match word {
        Some("x+") => Ok(Direction::XPlus),
        Some("x-") => Ok(Direction::XMinus),
        Some("y+") => Ok(Direction::YPlus),
        Some("y-") => Ok(Direction::YMinus),
        Some(other) => Err(format!("line {line}: bad direction {other} (want x+ x- y+ y-)")),
        None => Err(format!("line {line}: missing direction")),
    }
}

fn dir_name(dir: Direction) -> &'static str {
    match dir {
        Direction::XPlus => "x+",
        Direction::XMinus => "x-",
        Direction::YPlus => "y+",
        Direction::YMinus => "y-",
    }
}

/// Aggregated fault accounting: scheduled events applied so far plus the
/// loss columns summed over every link's [`crate::link::LinkLedger`].
/// Everything destroyed by a fault lands in one of these columns — the
/// conservation checks treat lost-to-fault as its own ledger entry, never
/// as a leak.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Link-down events applied.
    pub link_down_events: u64,
    /// Link-up events applied.
    pub link_up_events: u64,
    /// Node-crash events applied.
    pub node_crash_events: u64,
    /// Node-restore events applied.
    pub node_restore_events: u64,
    /// Flaky-regime starts applied.
    pub link_flaky_events: u64,
    /// Flaky-regime ends applied.
    pub link_stable_events: u64,
    /// Data symbols destroyed (blackholed, flaky-dropped, drained on a
    /// link-down, or dropped because their arrival cycle passed while the
    /// receiver was crashed).
    pub symbols_lost: u64,
    /// Data symbols delivered with deliberately corrupted content.
    pub symbols_corrupted: u64,
    /// Best-effort credit bytes destroyed.
    pub credits_lost: u64,
    /// The subset of `symbols_lost` dropped because their exact arrival
    /// cycle was missed (crashed receiver).
    pub late_arrivals_dropped: u64,
}

impl FaultStats {
    /// Emits every field as a `fault.*` counter.
    pub fn emit_counters(&self, emit: &mut impl FnMut(&'static str, u64)) {
        emit("fault.link_down_events", self.link_down_events);
        emit("fault.link_up_events", self.link_up_events);
        emit("fault.node_crash_events", self.node_crash_events);
        emit("fault.node_restore_events", self.node_restore_events);
        emit("fault.link_flaky_events", self.link_flaky_events);
        emit("fault.link_stable_events", self.link_stable_events);
        emit("fault.symbols_lost", self.symbols_lost);
        emit("fault.symbols_corrupted", self.symbols_corrupted);
        emit("fault.credits_lost", self.credits_lost);
        emit("fault.late_arrivals_dropped", self.late_arrivals_dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_events_in_order() {
        let s = FaultSchedule::new()
            .with_seed(7)
            .link_down(100, NodeId(3), Direction::XPlus)
            .node_crash(50, NodeId(1))
            .link_up(200, NodeId(3), Direction::XPlus);
        assert_eq!(s.seed(), 7);
        assert_eq!(s.events().len(), 3);
        assert_eq!(s.events()[1].at, 50, "builder preserves insertion order");
    }

    #[test]
    fn parse_round_trips_every_kind() {
        let topo = Topology::mesh(3, 3);
        let text = "\
            # chaos script\n\
            seed 42\n\
            5000 link_down 1,1 x+\n\
            5000 node_crash 2,0\n\
            7000 link_flaky 0,1 y+ drop=32 corrupt=16\n\
            9000 link_up 1,1 x+   # inline comment\n\
            9000 node_restore 2,0\n\
            9500 link_stable 0,1 y+\n";
        let s = FaultSchedule::parse(text, &topo).unwrap();
        assert_eq!(s.seed(), 42);
        assert_eq!(s.events().len(), 6);
        let n11 = topo.node_at(1, 1);
        assert_eq!(
            s.events()[0],
            FaultEvent { at: 5000, kind: FaultKind::LinkDown { node: n11, dir: Direction::XPlus } }
        );
        assert_eq!(
            s.events()[2].kind,
            FaultKind::LinkFlaky {
                node: topo.node_at(0, 1),
                dir: Direction::YPlus,
                drop_per_1024: 32,
                corrupt_per_1024: 16,
            }
        );
    }

    #[test]
    fn parse_rejects_unwired_links_and_bad_coords() {
        let topo = Topology::mesh(2, 2);
        // (1,1) has no +x neighbour in a 2x2 mesh.
        let err = FaultSchedule::parse("10 link_down 1,1 x+", &topo).unwrap_err();
        assert!(err.contains("not wired"), "{err}");
        let err = FaultSchedule::parse("10 node_crash 5,0", &topo).unwrap_err();
        assert!(err.contains("outside"), "{err}");
        let err = FaultSchedule::parse("10 link_down 0,0 north", &topo).unwrap_err();
        assert!(err.contains("bad direction"), "{err}");
        let err = FaultSchedule::parse("10 meteor_strike 0,0", &topo).unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");
    }
}
