//! The traffic-source interface.
//!
//! A [`TrafficSource`] is attached to a node and runs once per cycle before
//! the chip ticks; it injects packets by pushing onto the node's
//! [`ChipIo`] queues. Implementations live in `rtr_workloads`; tests and
//! examples can use closures via [`FnSource`].

use rtr_types::chip::ChipIo;
use rtr_types::ids::NodeId;
use rtr_types::time::Cycle;

/// A per-node traffic generator.
pub trait TrafficSource {
    /// Runs before the node's chip ticks at `now`; may inspect the queues
    /// and push injections.
    fn pre_cycle(&mut self, now: Cycle, node: NodeId, io: &mut ChipIo);

    /// The earliest cycle strictly after `now` at which this source may
    /// inject (or otherwise change state), assuming it last ran at `now`.
    /// `None` means the source is exhausted and will never inject again.
    ///
    /// The simulator's leaping mode skips cycles only when every source's
    /// next event is in the future; sources that consult a random-number
    /// generator every cycle must keep the conservative default
    /// `Some(now + 1)` so their random stream is drawn cycle by cycle.
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now + 1)
    }

    /// Emits this source's counters into the simulator's metrics registry
    /// (same contract as [`rtr_types::chip::Chip::counters`]: call `emit`
    /// once per counter with a stable name; values from sources at
    /// different nodes are summed under the same name). The default emits
    /// nothing.
    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        let _ = emit;
    }
}

/// Wraps a closure as a traffic source.
pub struct FnSource<F>(pub F);

impl<F: FnMut(Cycle, NodeId, &mut ChipIo)> TrafficSource for FnSource<F> {
    fn pre_cycle(&mut self, now: Cycle, node: NodeId, io: &mut ChipIo) {
        (self.0)(now, node, io);
    }
}

impl<F> std::fmt::Debug for FnSource<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnSource")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::packet::{BePacket, PacketTrace};

    #[test]
    fn fn_source_injects() {
        let mut source = FnSource(|now: Cycle, _node: NodeId, io: &mut ChipIo| {
            if now == 3 {
                io.inject_be.push_back(BePacket::new(0, 0, vec![], PacketTrace::default()));
            }
        });
        let mut io = ChipIo::new();
        for now in 0..5 {
            source.pre_cycle(now, NodeId(0), &mut io);
        }
        assert_eq!(io.inject_be.len(), 1);
    }
}
