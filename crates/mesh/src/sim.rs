//! The cycle-stepped network simulator.
//!
//! Each cycle the simulator: delivers link arrivals (data symbols and
//! reverse-flowing credits) into per-node [`ChipIo`] bundles, runs the
//! registered traffic sources, ticks every chip, moves driven symbols onto
//! the links, routes returned credits back to the upstream transmitter, and
//! drains deliveries into per-node [`DeliveryLog`]s.
//!
//! The simulation is fully deterministic: node order is fixed, all queues
//! are FIFO, and sources that need randomness own their seeded generators.

use rtr_events::{QueueStats, WakeHandle, WakeQueue};
use rtr_metrics::{
    FlightEvent, FlightGuard, FlightRecorder, MetricsRegistry, MetricsSnapshot, Phase,
    PhaseProfiler,
};
use rtr_types::chip::{Chip, ChipGauges, ChipIo, WakeStats};
use rtr_types::flit::LinkSymbol;
use rtr_types::ids::{Direction, NodeId, Port};
use rtr_types::packet::{BePacket, TcPacket};
use rtr_types::time::{cycle_to_slot, Cycle};

use crate::adjacency::LinkTable;
use crate::fault::{FaultEvent, FaultKind, FaultSchedule, FaultStats};
use crate::link::LinkLedger;
use crate::metrics::SimMetrics;
use crate::pool::{ClaimSlice, WorkerPool};
use crate::source::TrafficSource;
use crate::stats::DeliveryLog;
use crate::topology::Topology;

/// Per-link traffic counters (symbols carried per virtual channel).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkUsage {
    /// Time-constrained symbols carried.
    pub tc_symbols: u64,
    /// Best-effort symbols carried.
    pub be_symbols: u64,
}

impl LinkUsage {
    /// Link utilisation over `cycles` (symbols per cycle, both channels).
    #[must_use]
    pub fn utilization(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (self.tc_symbols + self.be_symbols) as f64 / cycles as f64
    }
}

/// One occupancy snapshot of every chip in the network, borrowed from the
/// flat storage of an [`OccupancyHistory`].
#[derive(Debug, Clone, Copy)]
pub struct OccupancySample<'a> {
    /// Cycle the sample was taken (after that cycle's tick).
    pub cycle: Cycle,
    /// Per-node gauges, indexed by [`NodeId::index`].
    pub nodes: &'a [ChipGauges],
}

/// The collected occupancy samples, stored flat: one `cycle` entry and one
/// contiguous run of per-node gauges per sample. Recording a sample appends
/// to the same two vectors, so steady-state sampling never allocates once
/// the vectors have grown to capacity.
#[derive(Debug, Clone, Default)]
pub struct OccupancyHistory {
    cycles: Vec<Cycle>,
    gauges: Vec<ChipGauges>,
    nodes_per_sample: usize,
}

impl OccupancyHistory {
    /// Number of samples recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Whether any samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// The cycle of every sample, in recording order.
    #[must_use]
    pub fn cycles(&self) -> &[Cycle] {
        &self.cycles
    }

    /// The `index`-th sample, if recorded.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<OccupancySample<'_>> {
        let cycle = *self.cycles.get(index)?;
        let start = index * self.nodes_per_sample;
        Some(OccupancySample { cycle, nodes: &self.gauges[start..start + self.nodes_per_sample] })
    }

    /// Iterates over the samples in recording order.
    pub fn iter(&self) -> OccupancyIter<'_> {
        OccupancyIter { history: self, next: 0 }
    }

    fn record<C: Chip>(&mut self, cycle: Cycle, chips: &[C]) {
        self.nodes_per_sample = chips.len();
        self.cycles.push(cycle);
        self.gauges.extend(chips.iter().map(|c| c.gauges().unwrap_or_default()));
    }
}

impl<'a> IntoIterator for &'a OccupancyHistory {
    type Item = OccupancySample<'a>;
    type IntoIter = OccupancyIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the samples of an [`OccupancyHistory`].
#[derive(Debug)]
pub struct OccupancyIter<'a> {
    history: &'a OccupancyHistory,
    next: usize,
}

impl<'a> Iterator for OccupancyIter<'a> {
    type Item = OccupancySample<'a>;
    fn next(&mut self) -> Option<Self::Item> {
        let sample = self.history.get(self.next)?;
        self.next += 1;
        Some(sample)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.history.len().saturating_sub(self.next);
        (left, Some(left))
    }
}

/// How [`Simulator::run_leaping`] proves that a cycle boundary is
/// quiescent (see [`Simulator::set_quiescence`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Quiescence {
    /// Consult the calendar-queue event core: components register their
    /// next-event cycle once and the simulator pops the minimum, so a
    /// stepped cycle costs O(dirty components) wake bookkeeping and a leap
    /// decision costs O(1).
    #[default]
    EventQueue,
    /// Re-poll every chip, link, and traffic source after each stepped
    /// cycle (the original scan). Kept for pop-vs-scan benchmarking and
    /// for agreement tests against the event core.
    Scan,
}

/// The simulator's half of the calendar-queue event core: the wake queue
/// itself plus the per-step dirty set of components whose registered wake
/// must be recomputed after the cycle runs.
///
/// Handle layout (for `n` nodes and `L` wired links): chips occupy `0..n`
/// (by node index), links `n..n + L` (`n +` the link's global CSR index —
/// see [`LinkTable`]), traffic sources `n + L..` (by registration order).
/// The core is rebuilt from scratch whenever the world changes shape or is
/// mutated behind its back (see `Simulator::events_stale`).
#[derive(Debug)]
struct EventCore {
    queue: WakeQueue,
    /// Handles marked dirty during the step in progress, in marking order
    /// (deduplicated via `stamp`).
    dirty: Vec<u32>,
    /// Per-handle cycle of the most recent dirty mark.
    stamp: Vec<Cycle>,
    /// Scratch buffer for the handles popped due at the start of a step.
    due: Vec<WakeHandle>,
    /// Scratch buffer for the chip handles a sparse step must tick (the
    /// dirty chips, sorted into node order).
    tick_list: Vec<u32>,
    /// Poll every component at the end of the next step (the core was just
    /// built and knows no wakes yet).
    prime: bool,
}

impl EventCore {
    fn new(handles: usize) -> Self {
        let mut queue = WakeQueue::with_capacity(handles);
        for _ in 0..handles {
            queue.register();
        }
        EventCore {
            queue,
            // Worst case every handle goes dirty in one step; reserving up
            // front keeps big-mesh steps free of mid-cycle growth.
            dirty: Vec::with_capacity(handles),
            stamp: vec![Cycle::MAX; handles],
            due: Vec::with_capacity(handles),
            tick_list: Vec::new(),
            prime: true,
        }
    }

    /// Marks a handle for re-polling at the end of the step simulating
    /// `now`. Steps have distinct `now`s, so the stamp deduplicates marks
    /// within a step without any per-step reset.
    fn mark(&mut self, handle: usize, now: Cycle) {
        if self.stamp[handle] != now {
            self.stamp[handle] = now;
            self.dirty.push(handle as u32);
        }
    }
}

/// The network simulator, generic over the router chip model.
pub struct Simulator<C: Chip> {
    topo: Topology,
    chips: Vec<C>,
    ios: Vec<ChipIo>,
    logs: Vec<DeliveryLog>,
    /// The wired links in CSR form: pipe state, usage counters, and the
    /// forward/reverse adjacency, all indexed by dense global link index.
    adj: LinkTable,
    /// Running maximum of any single link's total symbol count; divided by
    /// the elapsed cycles it yields [`Simulator::peak_link_utilization`]
    /// without rescanning `usage`.
    max_link_total: u64,
    sources: Vec<(NodeId, Box<dyn TrafficSource>)>,
    tap: Option<LinkTap>,
    /// Sample chip gauges every N cycles (None = sampling off).
    gauge_every: Option<Cycle>,
    gauge_samples: OccupancyHistory,
    /// Worker threads for [`Simulator::step_parallel`] (1 = serial).
    workers: usize,
    /// Threads the host can actually run concurrently (cached
    /// `std::thread::available_parallelism`); the parallel steps clamp
    /// their dispatch decisions to it.
    cpu_limit: usize,
    /// The persistent worker pool behind the parallel steps, created
    /// lazily on the first parallel step and rebuilt when
    /// [`Simulator::set_parallelism`] changes the count. Dropping the
    /// simulator shuts the workers down (joined, not leaked).
    pool: Option<WorkerPool>,
    /// Chip ticks actually executed (sparse event-core steps tick only the
    /// due chips; leaped cycles execute none).
    ticks_executed: u64,
    /// Per-chip lazy idle-accounting stamp: the first cycle not yet
    /// accounted to the chip, either by a tick (which covers the cycle it
    /// runs) or by a [`Chip::skip_quiet`] reconciliation. Sparse steps and
    /// leaps leave quiet chips untouched; the span
    /// `unticked[i]..tick_cycle` is reconciled in one `skip_quiet` call
    /// the next time chip `i` ticks, and [`Simulator::settle_idle`]
    /// flushes every outstanding span at the public drive-call boundaries.
    unticked: Vec<Cycle>,
    /// Debug-build checksum: cycles accounted per chip (ticked +
    /// skip-reconciled). Must equal `now` whenever the simulator settles —
    /// the sparse path's lazy reconciliation proven against dense
    /// stepping's one-tick-per-chip-per-cycle invariant.
    #[cfg(debug_assertions)]
    dbg_accounted: Vec<Cycle>,
    /// The calendar-queue event core behind the leaping paths.
    events: EventCore,
    /// The event core no longer reflects the world: the plain stepped
    /// paths mutate chips without wake bookkeeping (keeping them at zero
    /// event-core overhead), as do external mutators like
    /// [`Simulator::chip_mut`]. The next leaping call re-primes.
    events_stale: bool,
    /// Quiescence-proof strategy for the leaping paths.
    quiescence: Quiescence,
    /// Metrics registry, phase profiler, and flight recorder (all
    /// zero-sized no-ops without the `metrics` feature).
    metrics: SimMetrics,
    /// Scripted fault events, sorted by cycle (stable, so same-cycle
    /// events apply in schedule order); `fault_cursor` is the first entry
    /// not yet applied. Every step path applies the due prefix *before*
    /// link arrivals, and the leaping paths clamp their quiet targets to
    /// the next entry's cycle, so all drive modes observe each fault at
    /// exactly the same cycle boundary.
    faults: Vec<FaultEvent>,
    fault_cursor: usize,
    /// Base seed for the per-link flaky generators (each link derives its
    /// own stream, so one flaky link's traffic cannot perturb another's).
    fault_seed: u64,
    /// Counts of fault events actually applied (the loss columns live in
    /// the per-link ledgers; [`Simulator::fault_stats`] merges both).
    fault_events: FaultStats,
    /// Per-node crash flags: a crashed chip is not ticked, receives no
    /// arrivals or credits, and its sources stay silent until restore.
    crashed: Vec<bool>,
    crashed_count: usize,
    /// Scheduled control-plane operations (mid-run routing-table deltas),
    /// sorted by cycle with the same stable ordering and cursor discipline
    /// as `faults`: every step path applies the due prefix before link
    /// arrivals, and the leaping paths clamp their quiet targets to the
    /// next entry's cycle, so no leap ever crosses a table update.
    controls: Vec<ControlOp<C>>,
    control_cursor: usize,
    control_events: ControlStats,
    now: Cycle,
}

/// An observer invoked for every symbol placed on a link (debugging and
/// custom instrumentation); see [`Simulator::set_link_tap`].
pub type LinkTap = Box<dyn FnMut(Cycle, NodeId, Direction, &LinkSymbol)>;

/// The boxed closure form of a scheduled control operation; see
/// [`Simulator::schedule_control`].
pub type ControlFn<C> = Box<dyn FnOnce(&mut C) -> Result<(), String>>;

/// One scheduled control-plane operation: a closure applied to the chip at
/// `node` at the start of the step simulating cycle `at` — the same epoch
/// discipline as the fault plane, so every drive mode observes the table
/// delta at the identical cycle boundary.
struct ControlOp<C> {
    at: Cycle,
    node: NodeId,
    /// Taken (not removed) on application so the cursor arithmetic stays
    /// index-stable; an applied entry is a tombstoned `None`.
    op: Option<ControlFn<C>>,
}

/// Counters for the scheduled control-operation plane (see
/// [`Simulator::schedule_control`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Operations applied whose closure returned `Ok`.
    pub ops_applied: u64,
    /// Operations applied whose closure returned `Err` (e.g. a control
    /// write the router rejected); the error is counted, not propagated —
    /// the schedule keeps running like hardware would.
    pub ops_rejected: u64,
}

impl ControlStats {
    /// Emits the counters under `control.*` names.
    pub fn emit_counters(&self, emit: &mut impl FnMut(&'static str, u64)) {
        emit("control.ops_applied", self.ops_applied);
        emit("control.ops_rejected", self.ops_rejected);
    }
}

impl<C: Chip> std::fmt::Debug for Simulator<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.topo.len())
            .field("now", &self.now)
            .finish_non_exhaustive()
    }
}

impl<C: Chip> Simulator<C> {
    /// Builds a simulator over `topo`, creating one chip per node with
    /// `make_chip` and zero-latency wires.
    ///
    /// # Errors
    ///
    /// Propagates the first chip-construction error.
    pub fn build<E>(
        topo: Topology,
        make_chip: impl FnMut(NodeId) -> Result<C, E>,
    ) -> Result<Self, E> {
        Self::build_with_latency(topo, 0, make_chip)
    }

    /// Builds a simulator with the given extra wire latency on every link.
    ///
    /// # Errors
    ///
    /// Propagates the first chip-construction error.
    pub fn build_with_latency<E>(
        topo: Topology,
        link_latency: Cycle,
        mut make_chip: impl FnMut(NodeId) -> Result<C, E>,
    ) -> Result<Self, E> {
        let n = topo.len();
        let mut chips = Vec::with_capacity(n);
        for node in topo.nodes() {
            chips.push(make_chip(node)?);
        }
        let adj = LinkTable::build(&topo, link_latency);
        for node in 0..n {
            let (start, end) = adj.out_bounds(node);
            for li in start..end {
                // Initialise the transmitter's credit pool from the
                // receiver's flit buffer.
                let bytes = chips[adj.dst(li).node.index()].flit_buffer_bytes() as u32;
                chips[node].set_output_credits(Port::Dir(adj.dir(li)), bytes);
            }
        }
        Ok(Simulator {
            chips,
            ios: (0..n).map(|_| ChipIo::new()).collect(),
            logs: (0..n).map(|_| DeliveryLog::default()).collect(),
            adj,
            max_link_total: 0,
            sources: Vec::new(),
            tap: None,
            gauge_every: None,
            gauge_samples: OccupancyHistory::default(),
            workers: 1,
            cpu_limit: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            pool: None,
            ticks_executed: 0,
            unticked: vec![0; n],
            #[cfg(debug_assertions)]
            dbg_accounted: vec![0; n],
            events: EventCore::new(0),
            events_stale: true,
            quiescence: Quiescence::default(),
            metrics: SimMetrics::new(),
            faults: Vec::new(),
            fault_cursor: 0,
            fault_seed: 1,
            fault_events: FaultStats::default(),
            crashed: vec![false; n],
            crashed_count: 0,
            controls: Vec::new(),
            control_cursor: 0,
            control_events: ControlStats::default(),
            now: 0,
            topo,
        })
    }

    /// The wired topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The chip at a node.
    #[must_use]
    pub fn chip(&self, node: NodeId) -> &C {
        &self.chips[node.index()]
    }

    /// Mutable access to the chip at a node (e.g. for control-interface
    /// writes during channel establishment). Settles any outstanding lazy
    /// idle accounting first, so the chip's counters are current before
    /// external code reads or mutates it.
    pub fn chip_mut(&mut self, node: NodeId) -> &mut C {
        self.settle_idle();
        self.events_stale = true;
        &mut self.chips[node.index()]
    }

    /// The delivery log of a node.
    #[must_use]
    pub fn log(&self, node: NodeId) -> &DeliveryLog {
        &self.logs[node.index()]
    }

    /// Registers a traffic source at a node (several per node are allowed;
    /// they run in registration order).
    pub fn add_source(&mut self, node: NodeId, source: Box<dyn TrafficSource>) {
        self.events_stale = true;
        self.sources.push((node, source));
    }

    /// Queues a time-constrained packet for injection at a node.
    ///
    /// Injection does not invalidate a warm event core: the leaping paths
    /// scan injection backlogs directly when proving quiescence, and the
    /// event-driven step marks chips with pending injections dirty every
    /// cycle, so no wake can go stale.
    pub fn inject_tc(&mut self, node: NodeId, packet: TcPacket) {
        self.ios[node.index()].inject_tc.push_back(packet);
    }

    /// Queues a best-effort packet for injection at a node (see
    /// [`Simulator::inject_tc`] on why this keeps the event core warm).
    pub fn inject_be(&mut self, node: NodeId, packet: BePacket) {
        self.ios[node.index()].inject_be.push_back(packet);
    }

    /// Pending injections (both classes) at a node — sources use this for
    /// backlog control.
    #[must_use]
    pub fn pending_injections(&self, node: NodeId) -> usize {
        let io = &self.ios[node.index()];
        io.inject_tc.len() + io.inject_be.len()
    }

    /// Installs an observer called once per symbol placed on any link
    /// (after the driving chip's tick, before the symbol arrives
    /// downstream). One tap at a time; replaces any existing tap.
    pub fn set_link_tap(&mut self, tap: LinkTap) {
        self.tap = Some(tap);
    }

    /// Removes the link tap.
    pub fn clear_link_tap(&mut self) {
        self.tap = None;
    }

    /// Starts sampling every chip's occupancy gauges once per `every`
    /// cycles (after that cycle's tick). Chips whose [`Chip::gauges`]
    /// returns `None` contribute zeroed gauges.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn enable_gauge_sampling(&mut self, every: Cycle) {
        assert!(every > 0, "sampling period must be positive");
        self.gauge_every = Some(every);
    }

    /// The occupancy samples collected so far (empty unless
    /// [`Simulator::enable_gauge_sampling`] was called).
    #[must_use]
    pub fn gauge_samples(&self) -> &OccupancyHistory {
        &self.gauge_samples
    }

    /// Sets how many worker threads [`Simulator::step_parallel`] uses to
    /// tick chips (clamped to at least 1; 1 means a plain serial step).
    /// Chip ticks are data-independent within a cycle, so the worker count
    /// never changes simulation results — see `parallel_matches_serial`.
    ///
    /// The pool is (re)built here, not mid-step, so thread spawns never
    /// land inside a measured stepping loop: `workers > 1` spawns
    /// `workers - 1` pool threads immediately, `workers = 1` joins and
    /// drops any existing pool. Each parallel step additionally clamps its
    /// *dispatch* to the host's available CPUs — handing chunks to more
    /// threads than cores only serialises them through the OS scheduler —
    /// so surplus workers stay parked, and on a single-core host the
    /// parallel steps simply run the serial path.
    pub fn set_parallelism(&mut self, workers: usize) {
        self.workers = workers.max(1);
        if self.workers > 1 {
            self.ensure_pool();
        } else {
            self.pool = None;
        }
    }

    /// Makes sure the persistent pool exists and matches the configured
    /// worker count (`workers - 1` pool threads; the calling thread acts
    /// as worker zero). Rebuilding on a count change drops the old pool,
    /// which parks nothing and joins its threads.
    fn ensure_pool(&mut self) {
        let needed = self.workers - 1;
        if self.pool.as_ref().map(WorkerPool::worker_threads) != Some(needed) {
            self.pool = Some(WorkerPool::new(needed));
        }
    }

    /// The worker count the parallel steps actually dispatch with: the
    /// configured parallelism clamped to the host's CPUs. Purely a
    /// wall-clock decision — both sides of every clamped branch produce
    /// bit-identical results (see `parallel_determinism`).
    fn effective_workers(&self) -> usize {
        self.workers.min(self.cpu_limit)
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.workers
    }

    /// Chooses how the leaping paths prove quiescence (default:
    /// [`Quiescence::EventQueue`]). Both strategies are bit-identical in
    /// simulation results; [`Quiescence::Scan`] exists so the calendar
    /// queue's pop cost can be benchmarked against the full re-poll it
    /// replaced, and for agreement tests.
    pub fn set_quiescence(&mut self, mode: Quiescence) {
        self.quiescence = mode;
    }

    /// The configured quiescence-proof strategy.
    #[must_use]
    pub fn quiescence(&self) -> Quiescence {
        self.quiescence
    }

    /// Operation counters of the calendar-queue event core, or `None` when
    /// the core is stale (no leaping call since the last world mutation).
    #[must_use]
    pub fn event_core_stats(&self) -> Option<QueueStats> {
        (!self.events_stale).then(|| self.events.queue.stats())
    }

    /// The merged wake-precision telemetry of every chip that keeps any
    /// (see [`rtr_types::chip::WakeStats`]), or `None` when no chip does.
    #[must_use]
    pub fn wake_precision(&self) -> Option<WakeStats> {
        let mut merged: Option<WakeStats> = None;
        for chip in &self.chips {
            if let Some(stats) = chip.wake_stats() {
                merged.get_or_insert_with(WakeStats::default).merge(&stats);
            }
        }
        merged
    }

    /// The unified metrics registry (counters, gauges, histograms). A
    /// zero-sized no-op without the `metrics` feature; runtime-switchable
    /// via [`rtr_metrics::MetricsRegistry::set_enabled`] with it.
    #[must_use]
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.metrics.registry
    }

    /// The drive-phase wall-clock profiler. Off by default even when
    /// compiled in; enable with [`rtr_metrics::PhaseProfiler::set_enabled`].
    #[must_use]
    pub fn phase_profiler(&self) -> &PhaseProfiler {
        &self.metrics.profiler
    }

    /// A snapshot of every registered metric, after absorbing the chips'
    /// counters, wake-precision telemetry, event-core stats, tick counts,
    /// and the profiler's phase report into the registry. Empty without
    /// the `metrics` feature (or with the registry runtime-disabled).
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.refresh_metrics();
        self.metrics.registry.snapshot()
    }

    /// Folds every external counter source into the registry so a
    /// subsequent snapshot is complete. Cheap and idempotent: absorbed
    /// counters are overwritten, not accumulated.
    fn refresh_metrics(&self) {
        if !self.metrics.registry.enabled() {
            return;
        }
        let registry = &self.metrics.registry;
        // Chip counters, summed across nodes. Names repeat per chip, so a
        // sorted map keeps both the sums and the registration order stable.
        let mut totals: std::collections::BTreeMap<&'static str, u64> =
            std::collections::BTreeMap::new();
        for chip in &self.chips {
            chip.counters(&mut |name, value| {
                *totals.entry(name).or_insert(0) += value;
            });
        }
        for (_, source) in &self.sources {
            source.counters(&mut |name, value| {
                *totals.entry(name).or_insert(0) += value;
            });
        }
        for (name, value) in totals {
            registry.absorb_counter(name, value);
        }
        let mut symbols = 0usize;
        let mut credit_batches = 0usize;
        for link in self.adj.links() {
            symbols += link.in_flight();
            credit_batches += link.credits_in_flight();
        }
        registry.set_gauge(registry.gauge("sim.link_symbols_in_flight"), symbols as i64);
        registry.set_gauge(registry.gauge("sim.link_credits_in_flight"), credit_batches as i64);
        if let Some(wake) = self.wake_precision() {
            registry.absorb_counter("wake.polls", wake.polls);
            registry.absorb_counter("wake.short_polls", wake.short_polls);
            registry.absorb_counter("wake.sync_guard_only", wake.sync_guard_only);
            registry.absorb_counter("wake.sync_guard_foregone", wake.sync_guard_foregone);
        }
        if let Some(queue) = self.event_core_stats() {
            queue.emit_counters(&mut |name, value| registry.absorb_counter(name, value));
        }
        registry.absorb_counter("sim.ticks_executed", self.ticks_executed);
        registry.absorb_counter("sim.cycles", self.now);
        if !self.faults.is_empty() {
            self.fault_stats().emit_counters(&mut |name, value| {
                registry.absorb_counter(name, value);
            });
        }
        if self.control_events != ControlStats::default() {
            self.control_events.emit_counters(&mut |name, value| {
                registry.absorb_counter(name, value);
            });
        }
        for line in self.metrics.profiler.report() {
            if line.calls > 0 {
                registry.absorb_counter(&format!("profile.{}.ns", line.phase.name()), line.ns);
                registry
                    .absorb_counter(&format!("profile.{}.calls", line.phase.name()), line.calls);
            }
        }
    }

    /// Arms a flight recorder keeping the last `cap` trace events in a
    /// ring, dumped as JSONL to `path` on the first conservation failure,
    /// missed deadline (see [`Simulator::watch_deadlines`]), or panic (see
    /// [`Simulator::flight_guard`]). No-op without the `metrics` feature.
    pub fn arm_flight_recorder(&mut self, cap: usize, path: impl Into<std::path::PathBuf>) {
        self.metrics.arm_recorder(cap, path.into());
    }

    /// The armed flight recorder, if any.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.metrics.recorder()
    }

    /// Makes the armed flight recorder dump when a time-constrained packet
    /// is delivered after its deadline (`slot_bytes` converts delivery
    /// cycles to slot numbers, as in the delivery-log accounting).
    pub fn watch_deadlines(&mut self, slot_bytes: usize) {
        self.metrics.watch_deadlines(slot_bytes);
    }

    /// A guard that dumps the flight ring if the current thread panics
    /// while it is alive (`None` when no recorder is armed). Take one at
    /// the top of a test body to capture the moments before an assert.
    #[must_use]
    pub fn flight_guard(&self) -> Option<FlightGuard> {
        let recorder = self.metrics.recorder()?;
        Some(recorder.panic_guard(self.metrics_snapshot()))
    }

    /// Checks every chip's conservation ledger, dumping the flight ring
    /// (when a recorder is armed) and returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns the offending node and the chip's own ledger description.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (node, chip) in self.chips.iter().enumerate() {
            if let Err(violation) = chip.check_conservation() {
                let message = format!("node {node}: {violation}");
                if let Some(rec) = self.metrics.recorder() {
                    rec.dump("conservation", &self.metrics_snapshot());
                }
                return Err(message);
            }
        }
        // Link ledgers: symbols destroyed by faults must land in a loss
        // column, never leak (`sent = delivered + lost + in flight`).
        for li in 0..self.adj.len() {
            if let Err(violation) = self.adj.link(li).check_conservation() {
                let node = self.adj.owner_of(li);
                let message = format!("link {} {:?}: {violation}", node.index(), self.adj.dir(li));
                if let Some(rec) = self.metrics.recorder() {
                    rec.dump("conservation", &self.metrics_snapshot());
                }
                return Err(message);
            }
        }
        Ok(())
    }

    /// Installs a scripted fault schedule (replacing any previous one).
    /// Events are applied at the start of the step simulating their cycle,
    /// before link arrivals, identically in every drive mode; events
    /// scheduled before the current cycle are skipped.
    pub fn set_fault_schedule(&mut self, schedule: FaultSchedule) {
        let (mut events, seed) = schedule.into_parts();
        events.sort_by_key(|e| e.at);
        self.fault_cursor = events.partition_point(|e| e.at < self.now);
        self.faults = events;
        self.fault_seed = seed.max(1);
    }

    /// Schedules one fault event at cycle `at` (clamped to the current
    /// cycle), merging it into any installed schedule.
    pub fn schedule_fault(&mut self, at: Cycle, kind: FaultKind) {
        let at = at.max(self.now);
        let pos = self.faults.partition_point(|e| e.at <= at);
        debug_assert!(pos >= self.fault_cursor, "insertion behind the fault cursor");
        self.faults.insert(pos, FaultEvent { at, kind });
    }

    /// Applies a fault at the current cycle: the next stepped cycle
    /// observes it (mid-run injection for interactive use and tests).
    pub fn inject_fault(&mut self, kind: FaultKind) {
        self.schedule_fault(self.now, kind);
    }

    /// Fault-plane statistics: event counts plus the loss columns summed
    /// over every link's [`LinkLedger`].
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        let mut stats = self.fault_events;
        for link in self.adj.links() {
            let ledger = link.ledger();
            stats.symbols_lost += ledger.symbols_lost;
            stats.symbols_corrupted += ledger.symbols_corrupted;
            stats.credits_lost += ledger.credits_lost;
            stats.late_arrivals_dropped += ledger.late_arrivals_dropped;
        }
        stats
    }

    /// Schedules a control-plane operation against the chip at `node`,
    /// applied at the start of the step simulating cycle `at` (clamped to
    /// the current cycle), before link arrivals — identically in every
    /// drive mode, including inside spans the leaper would otherwise skip.
    ///
    /// This is the simulator half of live channel signaling: a signaling
    /// engine models its per-write reprogramming latency by scheduling
    /// each table delta a few cycles out instead of mutating through
    /// [`Simulator::chip_mut`] (which would also cold-stale a warm event
    /// core; scheduled ops keep it warm and just mark the written chip
    /// dirty). The closure's `Err` is counted in [`ControlStats`], not
    /// propagated — the schedule keeps running like hardware would.
    pub fn schedule_control(
        &mut self,
        at: Cycle,
        node: NodeId,
        op: impl FnOnce(&mut C) -> Result<(), String> + 'static,
    ) {
        let at = at.max(self.now);
        let pos = self.controls.partition_point(|e| e.at <= at);
        debug_assert!(pos >= self.control_cursor, "insertion behind the control cursor");
        self.controls.insert(pos, ControlOp { at, node, op: Some(Box::new(op)) });
    }

    /// Counters for the scheduled control-operation plane.
    #[must_use]
    pub fn control_stats(&self) -> ControlStats {
        self.control_events
    }

    /// The cycle of the next scheduled, not-yet-applied control operation.
    /// The leaping paths clamp their quiet targets here so no leap ever
    /// crosses a table update.
    fn next_control_at(&self) -> Option<Cycle> {
        self.controls.get(self.control_cursor).map(|e| e.at)
    }

    /// Applies every scheduled control operation due at or before the
    /// current cycle. Runs at the top of all four step paths, right after
    /// [`Simulator::apply_due_faults`] and before link arrivals, so every
    /// drive mode observes each table delta at the identical boundary.
    fn apply_due_controls(&mut self) {
        while let Some(event) = self.controls.get_mut(self.control_cursor) {
            if event.at > self.now {
                break;
            }
            let node = event.node;
            let op = event.op.take();
            self.control_cursor += 1;
            let now = self.now;
            let i = node.index();
            match op.map_or(Ok(()), |op| op(&mut self.chips[i])) {
                Ok(()) => self.control_events.ops_applied += 1,
                Err(_) => self.control_events.ops_rejected += 1,
            }
            // A table delta can change what the chip will do next (e.g. a
            // buffered packet becomes routable); mark it dirty so a warm
            // event core ticks and re-polls it this cycle, exactly like a
            // chip the fault plane touched. Dense stepping ticks every
            // chip anyway, so the outcomes stay byte-identical.
            if !self.events_stale {
                self.events.mark(i, now);
            }
            self.record_fault(now, "control_op", node, 0);
        }
        // The applied prefix is all tombstones; reclaim it once it grows,
        // keeping long churn runs O(live entries), not O(history).
        if self.control_cursor > 1024 && self.control_cursor * 2 > self.controls.len() {
            self.controls.drain(..self.control_cursor);
            self.control_cursor = 0;
        }
    }

    /// Whether the node is currently crashed.
    #[must_use]
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// Every link currently down, as `(driving node, direction)` pairs in
    /// node-major order.
    #[must_use]
    pub fn downed_links(&self) -> Vec<(NodeId, Direction)> {
        let mut down = Vec::new();
        for node in 0..self.chips.len() {
            let (start, end) = self.adj.out_bounds(node);
            for li in start..end {
                if self.adj.link(li).is_down() {
                    down.push((NodeId(node as u16), self.adj.dir(li)));
                }
            }
        }
        down
    }

    /// The symbol-accounting ledger of the link leaving `node` in `dir`
    /// (defaults to zero for unwired directions).
    #[must_use]
    pub fn link_ledger(&self, node: NodeId, dir: Direction) -> LinkLedger {
        self.adj
            .out_index(node.index(), dir)
            .map_or_else(LinkLedger::default, |li| self.adj.link(li).ledger())
    }

    /// The cycle of the next scheduled, not-yet-applied fault event. The
    /// leaping paths clamp their quiet targets here so no leap ever
    /// crosses a fault epoch.
    fn next_fault_at(&self) -> Option<Cycle> {
        self.faults.get(self.fault_cursor).map(|e| e.at)
    }

    /// Applies every scheduled fault due at or before the current cycle.
    /// Runs at the top of all four step paths — before link arrivals are
    /// delivered — so stepped, leaping, and parallel drives observe each
    /// fault at the identical cycle boundary.
    fn apply_due_faults(&mut self) {
        while let Some(event) = self.faults.get(self.fault_cursor) {
            if event.at > self.now {
                break;
            }
            let kind = event.kind;
            self.fault_cursor += 1;
            self.apply_fault(kind);
        }
    }

    fn apply_fault(&mut self, kind: FaultKind) {
        let now = self.now;
        let n = self.chips.len();
        let warm = !self.events_stale;
        match kind {
            FaultKind::LinkDown { node, dir } => {
                // Unwired directions are ignored: a schedule written for a
                // larger mesh degrades to a no-op, not a panic.
                if let Some(li) = self.adj.out_index(node.index(), dir) {
                    self.adj.link_mut(li).set_down();
                    self.fault_events.link_down_events += 1;
                    if warm {
                        self.events.mark(n + li, now);
                    }
                    self.record_fault(now, "fault_link_down", node, dir as u64);
                }
            }
            FaultKind::LinkUp { node, dir } => {
                if let Some(li) = self.adj.out_index(node.index(), dir) {
                    self.adj.link_mut(li).set_up();
                    self.fault_events.link_up_events += 1;
                    if warm {
                        self.events.mark(n + li, now);
                    }
                    self.record_fault(now, "fault_link_up", node, dir as u64);
                }
            }
            FaultKind::NodeCrash { node } => {
                let i = node.index();
                if !self.crashed[i] {
                    // Settle the chip's outstanding *alive* idle span now,
                    // so every pending lag span stays homogeneous: the
                    // span reconciled at restore is purely crashed cycles
                    // (accounted without `skip_quiet` — a dead chip does
                    // not idle, it does nothing at all).
                    let u = self.unticked[i];
                    if u < now {
                        self.chips[i].skip_quiet(u, now);
                        self.unticked[i] = now;
                        #[cfg(debug_assertions)]
                        {
                            self.dbg_accounted[i] += now - u;
                        }
                    }
                    self.crashed[i] = true;
                    self.crashed_count += 1;
                    self.fault_events.node_crash_events += 1;
                    if warm {
                        self.events.mark(i, now);
                        self.mark_sources_at(i, now);
                    }
                    self.record_fault(now, "fault_node_crash", node, 0);
                }
            }
            FaultKind::NodeRestore { node } => {
                let i = node.index();
                if self.crashed[i] {
                    // The crashed span was never ticked; account it
                    // without `skip_quiet` (see `NodeCrash`).
                    let u = self.unticked[i];
                    if u < now {
                        self.unticked[i] = now;
                        #[cfg(debug_assertions)]
                        {
                            self.dbg_accounted[i] += now - u;
                        }
                    }
                    self.crashed[i] = false;
                    self.crashed_count -= 1;
                    self.fault_events.node_restore_events += 1;
                    // A restored chip's reassembly registers are undefined:
                    // abort partial arrivals and refund the flow-control
                    // credits of the dropped best-effort bytes upstream.
                    let dropped = self.chips[i].abort_partial_rx();
                    let (fs, fe) = self.adj.in_bounds(i);
                    for fi in fs..fe {
                        let idx = Port::Dir(self.adj.in_dir(fi)).index();
                        let bytes = u16::from(dropped[idx]);
                        if bytes > 0 {
                            let li = self.adj.in_link(fi);
                            self.adj.link_mut(li).send_credit(now, bytes);
                            if warm {
                                self.events.mark(n + li, now);
                            }
                        }
                    }
                    if warm {
                        self.events.mark(i, now);
                        self.mark_sources_at(i, now);
                    }
                    self.record_fault(now, "fault_node_restore", node, 0);
                }
            }
            FaultKind::LinkFlaky { node, dir, drop_per_1024, corrupt_per_1024 } => {
                if let Some(li) = self.adj.out_index(node.index(), dir) {
                    let seed = self.link_fault_seed(li);
                    self.adj.link_mut(li).set_flaky(drop_per_1024, corrupt_per_1024, seed);
                    self.fault_events.link_flaky_events += 1;
                    if warm {
                        self.events.mark(n + li, now);
                    }
                    self.record_fault(now, "fault_link_flaky", node, dir as u64);
                }
            }
            FaultKind::LinkStable { node, dir } => {
                if let Some(li) = self.adj.out_index(node.index(), dir) {
                    let seed = self.link_fault_seed(li);
                    self.adj.link_mut(li).set_flaky(0, 0, seed);
                    self.fault_events.link_stable_events += 1;
                    if warm {
                        self.events.mark(n + li, now);
                    }
                    self.record_fault(now, "fault_link_stable", node, dir as u64);
                }
            }
        }
    }

    /// The flaky-generator seed of link `li`: the schedule seed splayed by
    /// the link index, so each link rolls an independent stream.
    fn link_fault_seed(&self, li: usize) -> u64 {
        (self.fault_seed ^ (li as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).max(1)
    }

    /// Marks every traffic source registered at node `i` for re-polling
    /// (crash clears their wakes; restore re-registers them).
    fn mark_sources_at(&mut self, i: usize, now: Cycle) {
        let base = self.chips.len() + self.adj.len();
        for (s, (node, _)) in self.sources.iter().enumerate() {
            if node.index() == i {
                self.events.mark(base + s, now);
            }
        }
    }

    fn record_fault(&self, cycle: Cycle, kind: &'static str, node: NodeId, a: u64) {
        if let Some(rec) = self.metrics.recorder() {
            rec.record(FlightEvent { cycle, kind, node: u32::from(node.0), a, b: 0 });
        }
    }

    /// Dumps the flight ring if a trigger was raised mid-step. Triggers
    /// fire from places without `&self` access (e.g. the delivery drain);
    /// the dump happens here, at the end of the step, where a full
    /// metrics snapshot can accompany the events.
    fn flush_flight_trigger(&self) {
        let Some(reason) = self.metrics.recorder().and_then(FlightRecorder::take_trigger) else {
            return;
        };
        let snapshot = self.metrics_snapshot();
        if let Some(rec) = self.metrics.recorder() {
            rec.dump(reason, &snapshot);
        }
    }

    /// Traffic carried so far by the link leaving `node` in `dir`
    /// (defaults to zero for unwired directions).
    #[must_use]
    pub fn link_usage(&self, node: NodeId, dir: Direction) -> LinkUsage {
        self.adj
            .out_index(node.index(), dir)
            .map_or_else(LinkUsage::default, |li| self.adj.usage(li))
    }

    /// The busiest link's utilisation so far (symbols per cycle). Served
    /// from a running maximum maintained as symbols are collected — every
    /// link divides by the same elapsed-cycle count, so the busiest link is
    /// simply the one with the most symbols and report generation never
    /// rescans the per-link counters.
    #[must_use]
    pub fn peak_link_utilization(&self) -> f64 {
        self.max_link_total as f64 / self.now.max(1) as f64
    }

    /// Chip ticks executed so far (the tick-loop work actually performed).
    /// Plain stepping executes `nodes × cycles` ticks; the event-driven
    /// [`Simulator::run_leaping`] executes none for leaped cycles, so this
    /// counter is how tests pin the O(events) claim.
    #[must_use]
    pub fn ticks_executed(&self) -> u64 {
        self.ticks_executed
    }

    /// Estimated resident bytes per node: the struct-of-arrays arenas (CSR
    /// link table, per-node I/O staging, event-core state) plus each chip's
    /// own dominant allocations, divided by the node count. Allocated
    /// *capacity* is counted, not occupancy — this is what the allocator
    /// holds, the number the mega-mesh footprint guardrail pins down.
    #[must_use]
    pub fn bytes_per_node(&self) -> usize {
        let n = self.chips.len();
        let chips = n * std::mem::size_of::<C>()
            + self.chips.iter().map(Chip::heap_bytes_estimate).sum::<usize>();
        let ios = self.ios.capacity() * std::mem::size_of::<ChipIo>()
            + self.ios.iter().map(ChipIo::heap_bytes).sum::<usize>();
        let logs = self.logs.capacity() * std::mem::size_of::<DeliveryLog>()
            + self
                .logs
                .iter()
                .map(|log| {
                    log.tc.capacity() * std::mem::size_of::<(Cycle, TcPacket)>()
                        + log.be.capacity() * std::mem::size_of::<(Cycle, BePacket)>()
                })
                .sum::<usize>();
        let events = self.events.queue.bytes_estimate()
            + self.events.dirty.capacity() * std::mem::size_of::<u32>()
            + self.events.stamp.capacity() * std::mem::size_of::<Cycle>()
            + self.events.due.capacity() * std::mem::size_of::<WakeHandle>()
            + self.events.tick_list.capacity() * std::mem::size_of::<u32>();
        let total = chips
            + ios
            + logs
            + events
            + self.adj.heap_bytes()
            + self.topo.heap_bytes()
            + self.unticked.capacity() * std::mem::size_of::<Cycle>();
        total / n.max(1)
    }

    /// Advances the network by one cycle.
    ///
    /// While the event core is warm (a leaping call primed it and nothing
    /// invalidated it since), this runs the bookkeeping step instead — the
    /// results are bit-identical, and keeping the queue warm means a later
    /// leaping call starts from live wakes instead of an O(components)
    /// re-prime (counted by the `sim.stale_repolls` metric).
    pub fn step(&mut self) {
        self.step_inner();
        self.settle_idle();
    }

    /// One cycle without the end-of-call idle settle — the shared core of
    /// every public drive call, which settle once at their boundary
    /// instead of after every cycle.
    fn step_inner(&mut self) {
        if !self.events_stale {
            self.step_ev();
            return;
        }
        // The plain stepped path does no wake bookkeeping (keeping it at
        // zero event-core overhead); `events_stale` is already set.
        self.apply_due_faults();
        self.apply_due_controls();
        let t = self.metrics.profiler.start();
        let now = self.phase_pre::<false>();
        let t = self.metrics.profiler.lap(Phase::LinkPre, t);
        // 3. Chips tick — reconciling first any idle span a sparse or
        // leaping cycle left pending, since a dense tick covers every chip.
        // Crashed chips are passed over: the cycle is accounted (debug
        // checksum) but neither ticked nor idle-reconciled.
        #[cfg(debug_assertions)]
        for i in 0..self.chips.len() {
            self.dbg_accounted[i] += now + 1 - self.unticked[i];
        }
        let crashed = &self.crashed;
        for (((chip, io), u), dead) in self
            .chips
            .iter_mut()
            .zip(self.ios.iter_mut())
            .zip(self.unticked.iter_mut())
            .zip(crashed.iter())
        {
            if *dead {
                *u = now + 1;
                continue;
            }
            if *u < now {
                chip.skip_quiet(*u, now);
            }
            chip.tick(now, io);
            *u = now + 1;
        }
        self.ticks_executed += (self.chips.len() - self.crashed_count) as u64;
        let t = self.metrics.profiler.lap(Phase::SerialTick, t);
        self.phase_post::<false>(now);
        self.metrics.profiler.stop(Phase::LinkPost, t);
        self.flush_flight_trigger();
    }

    /// Flushes every chip's outstanding lazy idle span. Sparse event-core
    /// steps and leaps touch only due chips; a quiet chip's
    /// [`Chip::skip_quiet`] accounting is deferred until its next tick.
    /// Public drive calls end by settling, so external observers
    /// ([`Simulator::chip`], stats, reports) always see fully reconciled
    /// per-chip counters.
    fn settle_idle(&mut self) {
        let now = self.now;
        for i in 0..self.chips.len() {
            let u = self.unticked[i];
            if u < now {
                // A crashed chip's pending span is homogeneously crashed
                // (alive lag was settled when the crash applied): account
                // it without `skip_quiet` — dead cycles are not idle ones.
                if !self.crashed[i] {
                    self.chips[i].skip_quiet(u, now);
                }
                self.unticked[i] = now;
                #[cfg(debug_assertions)]
                {
                    self.dbg_accounted[i] += now - u;
                }
            }
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                self.dbg_accounted[i], now,
                "chip {i}: sparse idle accounting diverged from dense per-chip cycle counts"
            );
        }
    }

    /// Pre-tick phases of one cycle: link arrivals and traffic sources.
    /// Returns the cycle being simulated.
    ///
    /// With `EV` set, additionally feeds the event core's dirty set:
    /// chips receiving symbols, credits, or holding pending injections —
    /// and links whose queues were popped — get their wakes recomputed at
    /// the end of the step. `EV = false` compiles the bookkeeping out.
    fn phase_pre<const EV: bool>(&mut self) -> Cycle {
        let now = self.now;
        let n = self.chips.len();
        for io in &mut self.ios {
            io.begin_cycle();
        }

        // 1. Link arrivals (data forward, credits backward). Links are
        // walked in global CSR order — grouped by driving node, which
        // matches the old node-major iteration exactly.
        for node in 0..n {
            let (start, end) = self.adj.out_bounds(node);
            for li in start..end {
                // A crashed receiver drains nothing: its arrivals age on
                // the wire and are dropped (and counted) once stale. A
                // crashed *transmitter* takes no credits either — credits
                // are pure counters, so its batches simply deliver late
                // after restore.
                let recv_data = !self.crashed[self.adj.dst(li).node.index()];
                let recv_credits = !self.crashed[node];
                if !recv_data && !recv_credits {
                    continue;
                }
                let (symbol, credits) = {
                    let link = self.adj.link_mut(li);
                    (
                        if recv_data { link.recv(now) } else { None },
                        if recv_credits { link.recv_credit(now) } else { 0 },
                    )
                };
                if EV && (symbol.is_some() || credits > 0) {
                    self.events.mark(n + li, now);
                }
                if let Some(symbol) = symbol {
                    let dst = self.adj.dst(li);
                    self.ios[dst.node.index()].rx[Port::Dir(dst.dir).index()] = Some(symbol);
                    if EV {
                        self.events.mark(dst.node.index(), now);
                    }
                }
                if credits > 0 {
                    self.ios[node].credit_in[Port::Dir(self.adj.dir(li)).index()] += credits;
                    if EV {
                        self.events.mark(node, now);
                    }
                }
            }
        }

        // 2. Traffic sources (silent while their node is crashed).
        for (node, source) in &mut self.sources {
            if self.crashed[node.index()] {
                continue;
            }
            source.pre_cycle(now, *node, &mut self.ios[node.index()]);
        }

        // 3. Chips with pending injections may start draining them this
        // tick (the injection queues live outside the chips, so their
        // `next_event` cannot account for them). A crashed chip drains
        // nothing; its restore event re-marks it.
        if EV {
            for node in 0..n {
                if self.crashed[node] {
                    continue;
                }
                let io = &self.ios[node];
                if !io.inject_tc.is_empty() || !io.inject_be.is_empty() {
                    self.events.mark(node, now);
                }
            }
        }
        now
    }

    /// Post-tick phases of one cycle: symbol/credit collection, delivery
    /// draining, gauge sampling, and the clock advance. With `EV` set,
    /// links that carried a new symbol or credit batch are marked dirty.
    fn phase_post<const EV: bool>(&mut self, now: Cycle) {
        let n = self.chips.len();
        // 4. Collect driven symbols and returned credits — walking only
        // the wired outputs and fed inputs via the CSR tables. A chip can
        // only drive ports its wiring feeds credits through, so scanning
        // the sparse tables covers every live port; the debug asserts
        // below catch a chip writing to an unwired one.
        for node in 0..n {
            debug_assert!(
                self.ios[node].tx[Port::Local.index()].is_none(),
                "chips must deliver locally, not drive the local port"
            );
            let (start, end) = self.adj.out_bounds(node);
            for li in start..end {
                let dir = self.adj.dir(li);
                let idx = Port::Dir(dir).index();
                if let Some(symbol) = self.ios[node].tx[idx].take() {
                    let total = {
                        let usage = self.adj.usage_mut(li);
                        if symbol.is_time_constrained() {
                            usage.tc_symbols += 1;
                        } else {
                            usage.be_symbols += 1;
                        }
                        usage.tc_symbols + usage.be_symbols
                    };
                    self.max_link_total = self.max_link_total.max(total);
                    if let Some(tap) = &mut self.tap {
                        tap(now, NodeId(node as u16), dir, &symbol);
                    }
                    self.adj.link_mut(li).send(now, symbol);
                    if EV {
                        self.events.mark(n + li, now);
                    }
                }
            }
            let (fs, fe) = self.adj.in_bounds(node);
            for fi in fs..fe {
                let idx = Port::Dir(self.adj.in_dir(fi)).index();
                let credits = self.ios[node].credit_out[idx];
                if credits > 0 {
                    self.ios[node].credit_out[idx] = 0;
                    let li = self.adj.in_link(fi);
                    self.adj.link_mut(li).send_credit(now, credits);
                    if EV {
                        self.events.mark(n + li, now);
                    }
                }
            }
            debug_assert!(
                Direction::ALL.iter().all(|&d| self.ios[node].tx[Port::Dir(d).index()].is_none()),
                "symbol driven on an unwired link"
            );
            debug_assert!(
                Direction::ALL
                    .iter()
                    .all(|&d| self.ios[node].credit_out[Port::Dir(d).index()] == 0),
                "credit returned on an unfed input port"
            );
        }

        // 5. Drain deliveries — recording them in the flight ring when a
        // recorder is armed, and raising a trigger on a missed deadline
        // when a deadline watch is configured.
        if let Some(rec) = self.metrics.recorder() {
            let slot_bytes = self.metrics.deadline_slot_bytes();
            for (node, io) in self.ios.iter().enumerate() {
                for (cycle, p) in &io.delivered_tc {
                    rec.record(FlightEvent {
                        cycle: *cycle,
                        kind: "deliver_tc",
                        node: node as u32,
                        a: u64::from(p.conn.0),
                        b: p.trace.deadline,
                    });
                    if let Some(sb) = slot_bytes {
                        if p.trace.deadline != 0 && cycle_to_slot(*cycle, sb) > p.trace.deadline {
                            rec.trigger("deadline_miss");
                        }
                    }
                }
                for (cycle, p) in &io.delivered_be {
                    rec.record(FlightEvent {
                        cycle: *cycle,
                        kind: "deliver_be",
                        node: node as u32,
                        a: p.payload.len() as u64,
                        b: 0,
                    });
                }
            }
        }
        for (io, log) in self.ios.iter_mut().zip(self.logs.iter_mut()) {
            log.tc.append(&mut io.delivered_tc);
            log.be.append(&mut io.delivered_be);
        }

        // 6. Periodic occupancy sampling.
        if let Some(every) = self.gauge_every {
            if now.is_multiple_of(every) {
                self.gauge_samples.record(now, &self.chips);
            }
        }

        self.now += 1;
    }

    /// Runs for `cycles` cycles.
    pub fn run(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step_inner();
        }
        self.settle_idle();
    }

    /// Rebuilds the event core from scratch if any plain-stepped cycle or
    /// external mutation ran since the last event-driven step. The rebuilt
    /// queue is primed: the next [`Simulator::step_ev`] re-polls every
    /// component once, after which only dirty components are re-polled.
    fn ensure_events(&mut self) {
        if self.events_stale {
            self.events = EventCore::new(self.chips.len() + self.adj.len() + self.sources.len());
            self.events_stale = false;
        }
    }

    /// Advances the network by one cycle on the event-core path: pops due
    /// wakes, runs the cycle with dirty-set bookkeeping enabled, then
    /// re-polls exactly the components whose state could have changed.
    fn step_ev(&mut self) {
        self.ensure_events();
        let now = self.now;
        let t = self.metrics.profiler.start();
        self.events.dirty.clear();
        let mut due = std::mem::take(&mut self.events.due);
        due.clear();
        self.events.queue.pop_due(now, &mut due);
        for &h in &due {
            self.events.mark(h.index(), now);
        }
        self.events.due = due;
        self.apply_due_faults();
        self.apply_due_controls();
        let t = self.metrics.profiler.lap(Phase::WheelPop, t);
        self.phase_pre::<true>();
        let t = self.metrics.profiler.lap(Phase::LinkPre, t);
        let n = self.chips.len();
        if self.events.prime {
            // A freshly rebuilt core has no wakes to trust yet: tick every
            // chip once (`repoll_dirty` below re-polls everything too).
            // Crashed chips are passed over exactly as in dense stepping.
            #[cfg(debug_assertions)]
            for i in 0..n {
                self.dbg_accounted[i] += now + 1 - self.unticked[i];
            }
            let crashed = &self.crashed;
            for (((chip, io), u), dead) in self
                .chips
                .iter_mut()
                .zip(self.ios.iter_mut())
                .zip(self.unticked.iter_mut())
                .zip(crashed.iter())
            {
                if *dead {
                    *u = now + 1;
                    continue;
                }
                if *u < now {
                    chip.skip_quiet(*u, now);
                }
                chip.tick(now, io);
                *u = now + 1;
            }
            self.ticks_executed += (n - self.crashed_count) as u64;
        } else {
            // Sparse ticking: only the dirty chips (due wakes, arrivals,
            // credits, pending injections) run this cycle. Every other
            // chip is provably quiet — its registered wake lies beyond
            // `now` and nothing external reached it — and its per-cycle
            // idle accounting is reconciled lazily from `unticked` the
            // next time it ticks (or at the end-of-call settle).
            let mut list = std::mem::take(&mut self.events.tick_list);
            list.clear();
            let crashed = &self.crashed;
            list.extend(
                self.events
                    .dirty
                    .iter()
                    .copied()
                    .filter(|&h| (h as usize) < n && !crashed[h as usize]),
            );
            list.sort_unstable();
            for &h in &list {
                let i = h as usize;
                let u = self.unticked[i];
                #[cfg(debug_assertions)]
                {
                    self.dbg_accounted[i] += now + 1 - u;
                }
                if u < now {
                    self.chips[i].skip_quiet(u, now);
                }
                self.chips[i].tick(now, &mut self.ios[i]);
                self.unticked[i] = now + 1;
            }
            self.ticks_executed += list.len() as u64;
            list.clear();
            self.events.tick_list = list;
        }
        let t = self.metrics.profiler.lap(Phase::SerialTick, t);
        self.phase_post::<true>(now);
        let t = self.metrics.profiler.lap(Phase::LinkPost, t);
        self.repoll_dirty(now);
        self.metrics.profiler.stop(Phase::Repoll, t);
        self.flush_flight_trigger();
    }

    /// Re-registers the wakes of every dirty component (or of everything,
    /// right after a rebuild) at the end of the cycle `now`.
    fn repoll_dirty(&mut self, now: Cycle) {
        if std::mem::take(&mut self.events.prime) {
            // Priming a fresh queue: chips and sources are polled
            // unconditionally, but links are swept directly and only the
            // non-empty ones file a wake — the queue is empty, so there is
            // nothing to clear for idle links, and at mega-mesh scale the
            // links vastly outnumber the ones carrying traffic. Only the
            // wakes actually filed count as (stale) repolls.
            let n = self.chips.len();
            let mut repolled = (n + self.sources.len()) as u64;
            for h in 0..n {
                if !self.crashed[h] {
                    self.repoll(h, now);
                }
            }
            for li in 0..self.adj.len() {
                if let Some(at) = self.adj.link(li).next_event() {
                    self.events.queue.set_wake(WakeHandle((n + li) as u32), at.max(now + 1));
                    repolled += 1;
                }
            }
            let base = n + self.adj.len();
            for s in 0..self.sources.len() {
                self.repoll(base + s, now);
            }
            self.metrics.registry.inc(self.metrics.ids.stale_repolls, repolled);
        } else {
            let dirty = std::mem::take(&mut self.events.dirty);
            for &h in &dirty {
                self.repoll(h as usize, now);
            }
            self.events.dirty = dirty;
        }
    }

    /// Polls one component's `next_event` and files (or clears) its wake.
    /// Handle layout for `n` chips and `L` wired links: `0..n` are chips
    /// by node index, `n..n + L` are links by global CSR index, `n + L..`
    /// are traffic sources in registration order.
    fn repoll(&mut self, handle: usize, now: Cycle) {
        let n = self.chips.len();
        let nl = n + self.adj.len();
        let at = if handle < n {
            // A crashed chip has no wake: it is not ticked until restore,
            // which marks it dirty again.
            if self.crashed[handle] {
                None
            } else {
                self.chips[handle].next_event(now)
            }
        } else if handle < nl {
            self.adj.link(handle - n).next_event()
        } else {
            let (node, source) = &self.sources[handle - nl];
            if self.crashed[node.index()] {
                None
            } else {
                source.next_event(now)
            }
        };
        match at {
            Some(at) => self.events.queue.set_wake(WakeHandle(handle as u32), at.max(now + 1)),
            None => self.events.queue.clear_wake(WakeHandle(handle as u32)),
        }
    }

    /// Event-queue counterpart of [`Simulator::quiet_until`]: reads the
    /// minimum registered wake in O(1) instead of re-polling every
    /// component. The injection-backlog check stays a scan — those queues
    /// live outside the chips, so no wake describes them.
    fn events_quiet_target(&mut self, end: Cycle) -> Option<Cycle> {
        // Never leap across a fault or control epoch: both must apply at
        // the start of exactly their own cycle in every drive mode.
        let end = self.next_fault_at().map_or(end, |at| end.min(at));
        let end = self.next_control_at().map_or(end, |at| end.min(at));
        if self.ios.iter().enumerate().any(|(i, io)| {
            !self.crashed[i] && (!io.inject_tc.is_empty() || !io.inject_be.is_empty())
        }) {
            return None;
        }
        let target = self.events.queue.next_wake().map_or(end, |w| w.min(end));
        (target > self.now).then_some(target)
    }

    /// If the network is provably quiescent at `self.now` (the cycle just
    /// stepped was `self.now - 1`), returns the earliest cycle at which
    /// anything can happen, clamped to `end`. Returns `None` when some
    /// component needs the very next cycle (or an event is already due),
    /// i.e. no leap is possible.
    fn quiet_until(&self, end: Cycle) -> Option<Cycle> {
        // Packets queued for injection live in simulator-owned ChipIo
        // queues the chips drain over time; any backlog keeps stepping.
        // (A crashed chip drains nothing, so its backlog cannot block a
        // leap — the fault clamp below caps the leap at its restore.)
        if self.ios.iter().enumerate().any(|(i, io)| {
            !self.crashed[i] && (!io.inject_tc.is_empty() || !io.inject_be.is_empty())
        }) {
            return None;
        }
        let last = self.now - 1;
        // Never leap across a fault or control epoch (see
        // `events_quiet_target`).
        let mut target = self.next_fault_at().map_or(end, |at| end.min(at));
        target = self.next_control_at().map_or(target, |at| target.min(at));
        let mut merge = |at: Cycle| {
            if at <= last + 1 {
                return false;
            }
            target = target.min(at);
            true
        };
        for (node, source) in &self.sources {
            if self.crashed[node.index()] {
                continue;
            }
            if let Some(at) = source.next_event(last) {
                if !merge(at) {
                    return None;
                }
            }
        }
        for (i, chip) in self.chips.iter().enumerate() {
            if self.crashed[i] {
                continue;
            }
            if let Some(at) = chip.next_event(last) {
                if !merge(at) {
                    return None;
                }
            }
        }
        for link in self.adj.links() {
            if let Some(at) = link.next_event() {
                if !merge(at) {
                    return None;
                }
            }
        }
        (target > self.now).then_some(target)
    }

    /// Jumps simulated time from `self.now` to `target`, performing the
    /// bookkeeping the skipped cycles would have: synthesized gauge samples
    /// (every gauge is constant while the network is quiescent). Chips are
    /// *not* touched — their skipped-span accounting is reconciled lazily
    /// from the per-chip `unticked` stamp at their next tick or at the
    /// end-of-call settle, so a leap costs O(1) chip work.
    fn leap_to(&mut self, target: Cycle) {
        let from = self.now;
        debug_assert!(target > from, "leap must move forward");
        debug_assert!(
            self.next_fault_at().is_none_or(|at| target <= at),
            "leap across a fault epoch"
        );
        debug_assert!(
            self.next_control_at().is_none_or(|at| target <= at),
            "leap across a control epoch"
        );
        let t = self.metrics.profiler.start();
        self.metrics.registry.inc(self.metrics.ids.leaps, 1);
        self.metrics.registry.inc(self.metrics.ids.leaped_cycles, target - from);
        self.metrics.registry.observe(self.metrics.ids.leap_len, target - from);
        if let Some(rec) = self.metrics.recorder() {
            rec.record(FlightEvent { cycle: from, kind: "leap", node: 0, a: from, b: target });
        }
        if let Some(every) = self.gauge_every {
            let mut at = from.next_multiple_of(every);
            while at < target {
                self.gauge_samples.record(at, &self.chips);
                at += every;
            }
        }
        self.now = target;
        self.metrics.profiler.stop(Phase::LeapApply, t);
    }

    /// Runs until `predicate` returns true (checked after each cycle) or
    /// `max_cycles` elapse; returns whether the predicate fired.
    ///
    /// While the event core is warm, cycles run sparsely, so a predicate
    /// reading chip-internal per-cycle counters mid-run sees them settle
    /// only at the end of the call — the same caveat as
    /// [`Simulator::run_until_leaping`]. Predicates over simulator-owned
    /// state (`now`, delivery logs, reports) are exact at every boundary.
    pub fn run_until(
        &mut self,
        max_cycles: Cycle,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> bool {
        let mut fired = false;
        for _ in 0..max_cycles {
            self.step_inner();
            if predicate(self) {
                fired = true;
                break;
            }
        }
        self.settle_idle();
        fired
    }
}

impl<C: Chip + Send> Simulator<C> {
    /// Advances the network by one cycle, ticking chips on the configured
    /// worker threads (see [`Simulator::set_parallelism`]).
    ///
    /// Within a cycle every chip reads and writes only its own state and
    /// its own [`ChipIo`] bundle — cross-node effects travel exclusively
    /// through the link phases, which stay on the calling thread — so the
    /// result is identical to [`Simulator::step`] regardless of the worker
    /// count or thread scheduling.
    pub fn step_parallel(&mut self) {
        self.step_parallel_inner();
        self.settle_idle();
    }

    /// One parallel cycle without the end-of-call settle (see
    /// [`Simulator::step_inner`]).
    fn step_parallel_inner(&mut self) {
        if self.workers <= 1 || self.chips.len() <= 1 {
            self.step_inner();
            return;
        }
        if !self.events_stale {
            // Keep a warm event core warm, exactly as [`Simulator::step`].
            self.step_parallel_ev();
            return;
        }
        if self.effective_workers() <= 1 {
            // One usable core: chunk handoff can only lose wall-clock to
            // scheduling (each dispatch costs a park/unpark round trip per
            // worker, serialised by the lone core). Dense serial stepping
            // is the fastest faithful execution, so run exactly that.
            self.step_inner();
            return;
        }
        // The pool mirrors the *configured* parallelism (it normally
        // already exists — `set_parallelism` builds it eagerly).
        self.ensure_pool();
        self.apply_due_faults();
        self.apply_due_controls();
        let t = self.metrics.profiler.start();
        let now = self.phase_pre::<false>();
        let t = self.metrics.profiler.lap(Phase::LinkPre, t);
        // 3. Chips tick, one contiguous chunk of nodes per worker; the
        // first chunk runs on the calling thread, the rest are handed to
        // the persistent pool (no per-cycle thread spawns). Crashed chips
        // are passed over exactly as in serial dense stepping.
        let n = self.chips.len();
        #[cfg(debug_assertions)]
        for i in 0..n {
            self.dbg_accounted[i] += now + 1 - self.unticked[i];
        }
        let chunk = n.div_ceil(self.workers);
        let pool = self.pool.as_ref().expect("pool sized by ensure_pool");
        let mut items: Vec<_> = self
            .chips
            .chunks_mut(chunk)
            .zip(self.ios.chunks_mut(chunk))
            .zip(self.unticked.chunks_mut(chunk))
            .zip(self.crashed.chunks(chunk))
            .map(|(((chips, ios), unticked), crashed)| (chips, ios, unticked, crashed))
            .collect();
        let claims = ClaimSlice::new(&mut items);
        type DenseChunk<'s, C> = (&'s mut [C], &'s mut [ChipIo], &'s mut [Cycle], &'s [bool]);
        let run_chunk = |(chips, ios, unticked, crashed): &mut DenseChunk<'_, C>| {
            for (((chip, io), u), dead) in
                chips.iter_mut().zip(ios.iter_mut()).zip(unticked.iter_mut()).zip(crashed.iter())
            {
                if *dead {
                    *u = now + 1;
                    continue;
                }
                if *u < now {
                    chip.skip_quiet(*u, now);
                }
                chip.tick(now, io);
                *u = now + 1;
            }
        };
        let job = |w: usize| {
            if let Some(item) = claims.claim(w + 1) {
                run_chunk(item);
            }
        };
        let active = pool.dispatch(&job);
        let t = self.metrics.profiler.lap(Phase::PoolHandoff, t);
        if let Some(item) = claims.claim(0) {
            run_chunk(item);
        }
        let t = self.metrics.profiler.lap(Phase::PoolLocalTick, t);
        active.wait();
        let t = self.metrics.profiler.lap(Phase::PoolWait, t);
        drop(claims);
        drop(items);
        self.ticks_executed += (n - self.crashed_count) as u64;
        self.phase_post::<false>(now);
        self.metrics.profiler.stop(Phase::LinkPost, t);
        self.flush_flight_trigger();
    }

    /// Event-core counterpart of [`Simulator::step_parallel`]: the cycle's
    /// due chips (sparse, exactly as [`Simulator::step_ev`]) tick on the
    /// pool, and each worker also re-polls `next_event` for the due chips
    /// in its chunk into a per-worker buffer. The buffers are merged into
    /// the wake queue at the barrier in chunk order, so registration order
    /// — and therefore the queue's internal state — is deterministic
    /// regardless of thread scheduling. Cycles with few due chips (or a
    /// host without spare cores) skip the pool and tick serially — both
    /// branches register wakes in ascending node order, so the choice
    /// cannot affect results, only wall-clock. Links and sources are
    /// re-polled serially afterwards (their state lives on the
    /// coordinating thread).
    fn step_parallel_ev(&mut self) {
        self.ensure_events();
        let now = self.now;
        let t = self.metrics.profiler.start();
        self.events.dirty.clear();
        let mut due = std::mem::take(&mut self.events.due);
        due.clear();
        self.events.queue.pop_due(now, &mut due);
        for &h in &due {
            self.events.mark(h.index(), now);
        }
        self.events.due = due;
        self.apply_due_faults();
        self.apply_due_controls();
        let t = self.metrics.profiler.lap(Phase::WheelPop, t);
        self.phase_pre::<true>();
        let t = self.metrics.profiler.lap(Phase::LinkPre, t);

        let n = self.chips.len();
        let prime = std::mem::take(&mut self.events.prime);
        // The chips this cycle must tick and re-poll, in node order: all
        // of them on a prime step, otherwise exactly the dirty ones —
        // crashed chips excluded either way.
        let mut list = std::mem::take(&mut self.events.tick_list);
        list.clear();
        let crashed = &self.crashed;
        if prime {
            list.extend((0..n as u32).filter(|&h| !crashed[h as usize]));
        } else {
            list.extend(
                self.events
                    .dirty
                    .iter()
                    .copied()
                    .filter(|&h| (h as usize) < n && !crashed[h as usize]),
            );
            list.sort_unstable();
        }
        #[cfg(debug_assertions)]
        for &h in &list {
            self.dbg_accounted[h as usize] += now + 1 - self.unticked[h as usize];
        }
        self.ticks_executed += list.len() as u64;

        type WakeBuffer = Vec<(u32, Option<Cycle>)>;
        // One pool work item: chunk base node, the chunk's chip/io/unticked
        // slices, its slice of the sorted due list, and the wake buffer the
        // worker fills for the in-order merge at the barrier.
        type SparseChunk<'s, C> =
            (usize, &'s mut [C], &'s mut [ChipIo], &'s mut [Cycle], &'s [u32], WakeBuffer);
        let effective = self.effective_workers();
        let t = if effective <= 1 || list.len() <= effective * 8 {
            // Too little due work to amortise a pool handoff: tick on the
            // calling thread, registering wakes directly (node order).
            for &h in &list {
                let i = h as usize;
                let u = self.unticked[i];
                if u < now {
                    self.chips[i].skip_quiet(u, now);
                }
                self.chips[i].tick(now, &mut self.ios[i]);
                self.unticked[i] = now + 1;
                match self.chips[i].next_event(now) {
                    Some(at) => self.events.queue.set_wake(WakeHandle(h), at.max(now + 1)),
                    None => self.events.queue.clear_wake(WakeHandle(h)),
                }
            }
            let t = self.metrics.profiler.lap(Phase::SerialTick, t);
            self.metrics.profiler.lap(Phase::Repoll, t)
        } else {
            // Chunk the node range as in the dense path; chunk `ci` owns
            // nodes `ci*chunk ..` and the matching slice of the sorted
            // due list.
            let chunk = n.div_ceil(self.workers);
            let n_chunks = n.div_ceil(chunk);
            let mut bounds = Vec::with_capacity(n_chunks + 1);
            bounds.push(0);
            for ci in 1..=n_chunks {
                let limit = (ci * chunk) as u32;
                bounds.push(list.partition_point(|&h| h < limit));
            }
            self.ensure_pool();
            let pool = self.pool.as_ref().expect("pool sized by ensure_pool");
            let mut items: Vec<_> = self
                .chips
                .chunks_mut(chunk)
                .zip(self.ios.chunks_mut(chunk))
                .zip(self.unticked.chunks_mut(chunk))
                .enumerate()
                .map(|(ci, ((chips, ios), unticked))| {
                    let sub = &list[bounds[ci]..bounds[ci + 1]];
                    (ci * chunk, chips, ios, unticked, sub, WakeBuffer::with_capacity(sub.len()))
                })
                .collect();
            let claims = ClaimSlice::new(&mut items);
            let run_chunk = |(base, chips, ios, unticked, sub, out): &mut SparseChunk<'_, C>| {
                for &h in sub.iter() {
                    let i = h as usize - *base;
                    if unticked[i] < now {
                        chips[i].skip_quiet(unticked[i], now);
                    }
                    chips[i].tick(now, &mut ios[i]);
                    unticked[i] = now + 1;
                    out.push((h, chips[i].next_event(now)));
                }
            };
            let job = |w: usize| {
                if let Some(item) = claims.claim(w + 1) {
                    run_chunk(item);
                }
            };
            let active = pool.dispatch(&job);
            let t = self.metrics.profiler.lap(Phase::PoolHandoff, t);
            if let Some(item) = claims.claim(0) {
                run_chunk(item);
            }
            let t = self.metrics.profiler.lap(Phase::PoolLocalTick, t);
            active.wait();
            let t = self.metrics.profiler.lap(Phase::PoolWait, t);
            drop(claims);
            // Merge per-chunk wake buffers in chunk order (ascending node
            // order overall, matching the serial branch).
            let buffers: Vec<WakeBuffer> = items.into_iter().map(|item| item.5).collect();
            for buffer in buffers {
                for (h, at) in buffer {
                    match at {
                        Some(at) => self.events.queue.set_wake(WakeHandle(h), at.max(now + 1)),
                        None => self.events.queue.clear_wake(WakeHandle(h)),
                    }
                }
            }
            self.metrics.profiler.lap(Phase::Repoll, t)
        };
        list.clear();
        self.events.tick_list = list;
        self.phase_post::<true>(now);
        let t = self.metrics.profiler.lap(Phase::LinkPost, t);
        // Links and sources: serial re-poll of the non-chip handles. On a
        // prime step links are swept directly (see `repoll_dirty`): only
        // the non-empty ones file a wake, and the stale-repoll counter
        // charges chips, sources, and the links that actually held
        // traffic — identical to the serial prime, so the two drive modes
        // emit byte-identical counters.
        if prime {
            let mut repolled = (n + self.sources.len()) as u64;
            for li in 0..self.adj.len() {
                if let Some(at) = self.adj.link(li).next_event() {
                    self.events.queue.set_wake(WakeHandle((n + li) as u32), at.max(now + 1));
                    repolled += 1;
                }
            }
            let base = n + self.adj.len();
            for s in 0..self.sources.len() {
                self.repoll(base + s, now);
            }
            self.metrics.registry.inc(self.metrics.ids.stale_repolls, repolled);
        } else {
            let dirty = std::mem::take(&mut self.events.dirty);
            for &h in &dirty {
                // Links and sources — plus crashed chips, which the tick
                // lists exclude but whose wakes must still be cleared
                // (the serial path clears them through the same call).
                if h as usize >= n || self.crashed[h as usize] {
                    self.repoll(h as usize, now);
                }
            }
            self.events.dirty = dirty;
        }
        self.metrics.profiler.stop(Phase::Repoll, t);
        self.flush_flight_trigger();
    }

    /// Runs for `cycles` cycles using [`Simulator::step_parallel`]. The
    /// serial-dispatch decision is hoisted out of the loop: with one
    /// usable worker (configured, or after the available-CPU clamp) or one
    /// chip this is exactly [`Simulator::run`], with no per-cycle branch
    /// or handoff overhead.
    pub fn run_parallel(&mut self, cycles: Cycle) {
        if self.effective_workers() <= 1 || self.chips.len() <= 1 {
            self.run(cycles);
            return;
        }
        for _ in 0..cycles {
            self.step_parallel_inner();
        }
        self.settle_idle();
    }

    /// Runs for `cycles` cycles on the event-driven fast path: whenever a
    /// cycle ends with every component provably quiescent, simulated time
    /// leaps directly to the earliest next event instead of stepping
    /// through the silent span one cycle at a time.
    ///
    /// The result is **bit-identical** to [`Simulator::run`] over the same
    /// span — delivery logs, statistics, link-usage counters, gauge samples
    /// (synthesized for leaped cycles), and trace timestamps all match —
    /// because a leap is only taken when every chip, link, and traffic
    /// source reports (via [`Chip::next_event`], [`Link::next_event`], and
    /// [`TrafficSource::next_event`]) that nothing can change before the
    /// target cycle. See the `leaping_equivalence` and `event_core`
    /// integration tests.
    ///
    /// In the default [`Quiescence::EventQueue`] mode the quiescence check
    /// pops the minimum of a calendar queue of registered wakes — O(1) per
    /// cycle plus O(dirty) re-registrations — instead of re-polling every
    /// component. With [`Quiescence::Scan`] the original O(components)
    /// full scan runs instead (kept for benchmarking the difference and
    /// cross-checking agreement). When worker threads are configured (see
    /// [`Simulator::set_parallelism`]), event-queue stepping composes with
    /// parallel chip ticking: workers drain their chunk's wake re-polls
    /// into per-worker buffers merged deterministically at the barrier.
    ///
    /// The payoff is on sparse loads: an idle span of any length costs
    /// O(nodes) bookkeeping instead of O(nodes × cycles) chip ticks (see
    /// [`Simulator::ticks_executed`]).
    ///
    /// [`TrafficSource::next_event`]: crate::source::TrafficSource::next_event
    /// [`Link::next_event`]: crate::link::Link::next_event
    pub fn run_leaping(&mut self, cycles: Cycle) {
        let end = self.now + cycles;
        match self.quiescence {
            Quiescence::Scan => {
                while self.now < end {
                    self.step_inner();
                    if self.now >= end {
                        break;
                    }
                    let t = self.metrics.profiler.start();
                    let target = self.quiet_until(end);
                    self.metrics.profiler.stop(Phase::LeapPlan, t);
                    if let Some(target) = target {
                        self.leap_to(target);
                    }
                }
            }
            Quiescence::EventQueue => {
                let parallel = self.workers > 1 && self.chips.len() > 1;
                while self.now < end {
                    if parallel {
                        self.step_parallel_ev();
                    } else {
                        self.step_ev();
                    }
                    if self.now >= end {
                        break;
                    }
                    let t = self.metrics.profiler.start();
                    let target = self.events_quiet_target(end);
                    self.metrics.profiler.stop(Phase::LeapPlan, t);
                    if let Some(target) = target {
                        self.leap_to(target);
                    }
                }
            }
        }
        self.settle_idle();
    }

    /// Runs until `predicate` returns true or `max_cycles` elapse, on the
    /// leaping fast path; returns whether the predicate fired.
    ///
    /// The budget and predicate semantics are **identical** to
    /// [`Simulator::run_until`]: the predicate is evaluated at every cycle
    /// boundary — including each boundary inside a quiet span — and the
    /// run stops at the exact same cycle with the same return value. A
    /// quiet span is walked boundary-by-boundary without ticking chips
    /// (recording gauge samples where due), so a predicate that becomes
    /// true mid-leap fires at its true cycle rather than at the span's
    /// end.
    ///
    /// One caveat, inherent to leaping and sparse ticking: chip-internal
    /// per-cycle counters (e.g. idle-cycle tallies via
    /// [`Chip::skip_quiet`]) settle at the end of the call, *after* the
    /// firing boundary's predicate evaluation. Predicates over
    /// simulator-owned state (`now`, delivery logs, reports) see exactly
    /// what stepped execution shows them.
    pub fn run_until_leaping(
        &mut self,
        max_cycles: Cycle,
        mut predicate: impl FnMut(&Self) -> bool,
    ) -> bool {
        let fired = self.run_until_leaping_inner(max_cycles, &mut predicate);
        self.settle_idle();
        fired
    }

    fn run_until_leaping_inner(
        &mut self,
        max_cycles: Cycle,
        predicate: &mut dyn FnMut(&Self) -> bool,
    ) -> bool {
        let end = self.now + max_cycles;
        let parallel =
            self.quiescence == Quiescence::EventQueue && self.workers > 1 && self.chips.len() > 1;
        while self.now < end {
            match self.quiescence {
                Quiescence::Scan => self.step_inner(),
                Quiescence::EventQueue if parallel => self.step_parallel_ev(),
                Quiescence::EventQueue => self.step_ev(),
            }
            if predicate(self) {
                return true;
            }
            if self.now >= end {
                break;
            }
            let t = self.metrics.profiler.start();
            let target = match self.quiescence {
                Quiescence::Scan => self.quiet_until(end),
                Quiescence::EventQueue => self.events_quiet_target(end),
            };
            self.metrics.profiler.stop(Phase::LeapPlan, t);
            let Some(target) = target else { continue };
            // Walk the quiet span boundary-by-boundary without ticking:
            // every gauge boundary records, every cycle boundary gets its
            // predicate evaluation, exactly as stepped execution would.
            // Chips are left untouched — the skipped span reconciles
            // lazily from `unticked`, as in a block leap.
            let from = self.now;
            let t = self.metrics.profiler.start();
            let mut fired = false;
            while self.now < target {
                if let Some(every) = self.gauge_every {
                    if self.now.is_multiple_of(every) {
                        self.gauge_samples.record(self.now, &self.chips);
                    }
                }
                self.now += 1;
                if predicate(self) {
                    fired = true;
                    break;
                }
            }
            let to = self.now;
            if to > from {
                self.metrics.registry.inc(self.metrics.ids.leaps, 1);
                self.metrics.registry.inc(self.metrics.ids.leaped_cycles, to - from);
                self.metrics.registry.observe(self.metrics.ids.leap_len, to - from);
            }
            self.metrics.profiler.stop(Phase::LeapApply, t);
            if fired {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::control::ControlCommand;
    use rtr_core::RealTimeRouter;
    use rtr_types::config::RouterConfig;
    use rtr_types::ids::ConnectionId;
    use rtr_types::packet::PacketTrace;

    fn two_node_sim() -> Simulator<RealTimeRouter> {
        Simulator::build(Topology::mesh(2, 1), |_| RealTimeRouter::new(RouterConfig::default()))
            .unwrap()
    }

    #[test]
    fn be_packet_crosses_one_hop() {
        let mut sim = two_node_sim();
        let dst = sim.topology().node_at(1, 0);
        let payload: Vec<u8> = (0..50).collect();
        sim.inject_be(
            NodeId(0),
            BePacket::new(
                1,
                0,
                payload.clone(),
                PacketTrace {
                    source: NodeId(0),
                    destination: dst,
                    injected_at: 0,
                    ..PacketTrace::default()
                },
            ),
        );
        assert!(sim.run_until(2000, |s| !s.log(dst).be.is_empty()));
        let (cycle, p) = &sim.log(dst).be[0];
        assert_eq!(p.payload, payload);
        assert_eq!(p.header.x_off, 0, "offsets consumed");
        // One traversal ≈ 10 cycles overhead per router, 2 routers, 54 wire
        // bytes: sanity-check the ballpark.
        assert!(*cycle > 54 && *cycle < 150, "latency {cycle}");
    }

    #[test]
    fn tc_packet_crosses_one_hop_with_table_routing() {
        let mut sim = two_node_sim();
        let src = NodeId(0);
        let dst = sim.topology().node_at(1, 0);
        // Source: incoming conn 5 → forward +x as conn 7, d = 4.
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(5),
                outgoing: ConnectionId(7),
                delay: 4,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        // Destination: incoming conn 7 → deliver locally, d = 4.
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(7),
                outgoing: ConnectionId(7),
                delay: 4,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let clock = sim.chip(src).clock();
        let payload = vec![0xDD; sim.chip(src).config().tc_data_bytes()];
        sim.inject_tc(
            src,
            TcPacket {
                conn: ConnectionId(5),
                arrival: clock.wrap(0),
                payload: payload.clone().into(),
                trace: PacketTrace {
                    source: src,
                    destination: dst,
                    deadline: 12,
                    ..PacketTrace::default()
                },
            },
        );
        assert!(sim.run_until(3000, |s| !s.log(dst).tc.is_empty()));
        let (_, p) = &sim.log(dst).tc[0];
        assert_eq!(p.payload, payload);
        assert_eq!(sim.log(dst).tc_deadline_misses(20), 0);
        assert_eq!(sim.chip(src).stats().tc_transmitted[Port::Dir(Direction::XPlus).index()], 1);
        assert_eq!(sim.chip(dst).stats().tc_delivered, 1);
    }

    #[test]
    fn credits_flow_back_for_long_streams() {
        let mut sim = two_node_sim();
        let dst = sim.topology().node_at(1, 0);
        // 200-byte packet: far more than the 10-byte flit buffer, so it only
        // completes if credits return.
        sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![0xAB; 200], PacketTrace::default()));
        assert!(sim.run_until(5000, |s| !s.log(dst).be.is_empty()));
        assert_eq!(sim.log(dst).be[0].1.payload.len(), 200);
    }

    #[test]
    fn sources_run_each_cycle() {
        let mut sim = two_node_sim();
        let dst = sim.topology().node_at(1, 0);
        sim.add_source(
            NodeId(0),
            Box::new(crate::source::FnSource(move |now, _node, io: &mut ChipIo| {
                if now == 0 {
                    io.inject_be.push_back(BePacket::new(
                        1,
                        0,
                        vec![1, 2, 3],
                        PacketTrace::default(),
                    ));
                }
            })),
        );
        assert!(sim.run_until(1000, |s| !s.log(dst).be.is_empty()));
    }

    #[test]
    fn loopback_topology_returns_traffic_to_self() {
        let mut sim: Simulator<RealTimeRouter> =
            Simulator::build(
                Topology::loopback(),
                |_| RealTimeRouter::new(RouterConfig::default()),
            )
            .unwrap();
        // x_off = 1: the packet leaves +x, re-enters on −x with offsets
        // exhausted, and is delivered locally.
        sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![9; 16], PacketTrace::default()));
        assert!(sim.run_until(2000, |s| !s.log(NodeId(0)).be.is_empty()));
    }

    #[test]
    fn run_until_respects_budget() {
        let mut sim = two_node_sim();
        assert!(!sim.run_until(10, |_| false));
        assert_eq!(sim.now(), 10);
    }

    #[test]
    fn link_tap_observes_every_symbol() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = two_node_sim();
        let dst = sim.topology().node_at(1, 0);
        let events: Rc<RefCell<Vec<(Cycle, NodeId, Direction)>>> = Rc::default();
        let sink = Rc::clone(&events);
        sim.set_link_tap(Box::new(move |cycle, node, dir, symbol| {
            assert!(!symbol.is_time_constrained(), "only BE injected here");
            sink.borrow_mut().push((cycle, node, dir));
        }));
        sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![0; 6], PacketTrace::default()));
        assert!(sim.run_until(2000, |s| !s.log(dst).be.is_empty()));
        let seen = events.borrow();
        assert_eq!(seen.len(), 10, "4 header + 6 payload bytes crossed one link");
        assert!(seen.iter().all(|(_, n, d)| *n == NodeId(0) && *d == Direction::XPlus));
        drop(seen);
        // Clearing the tap stops observation.
        sim.clear_link_tap();
        let before = events.borrow().len();
        sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![0; 6], PacketTrace::default()));
        sim.run(2000);
        assert_eq!(events.borrow().len(), before);
    }

    #[test]
    fn gauge_sampling_tracks_memory_occupancy() {
        let mut sim = two_node_sim();
        let src = NodeId(0);
        // A connection whose logical arrival is far in the future: the
        // packet parks in the source's packet memory (h = 0, nothing
        // transmits), so occupancy gauges must show it.
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(5),
                outgoing: ConnectionId(5),
                delay: 100,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        let clock = sim.chip(src).clock();
        let payload = vec![0; sim.chip(src).config().tc_data_bytes()];
        sim.inject_tc(
            src,
            TcPacket {
                conn: ConnectionId(5),
                arrival: clock.wrap(120),
                payload: payload.into(),
                trace: PacketTrace::default(),
            },
        );
        sim.enable_gauge_sampling(10);
        sim.run(400);
        let samples = sim.gauge_samples();
        assert_eq!(samples.len(), 40, "one sample per 10 cycles");
        assert!(samples.cycles().windows(2).all(|w| w[0] < w[1]));
        let peak = samples.iter().map(|s| s.nodes[src.index()].memory_occupied).max().unwrap();
        assert_eq!(peak, 1, "the parked packet shows up in the gauges");
        assert!(samples
            .iter()
            .any(|s| s.nodes[src.index()].queue_depth[Port::Dir(Direction::XPlus).index()] == 1));
        assert!(samples.iter().all(|s| s.nodes[0].memory_capacity > 0));
    }

    #[test]
    #[should_panic(expected = "sampling period must be positive")]
    fn gauge_sampling_rejects_a_zero_period() {
        // A zero period would divide by zero on every cycle's
        // `is_multiple_of` check; the knob must refuse it up front.
        two_node_sim().enable_gauge_sampling(0);
    }

    #[test]
    fn parallel_step_with_one_worker_is_a_serial_step() {
        let mut serial = two_node_sim();
        let mut parallel = two_node_sim();
        parallel.set_parallelism(4);
        assert_eq!(parallel.parallelism(), 4);
        let dst = serial.topology().node_at(1, 0);
        for sim in [&mut serial, &mut parallel] {
            sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![7; 12], PacketTrace::default()));
        }
        serial.run(500);
        parallel.run_parallel(500);
        assert_eq!(serial.log(dst).be, parallel.log(dst).be);
    }

    #[test]
    fn leaping_over_an_idle_mesh_costs_o_events_ticks() {
        // A fully idle network simulated for a million cycles must leap the
        // whole span: the clock reaches the end, but only O(events) chip
        // ticks actually execute (here: the single warm-up step per leap
        // attempt, not nodes × cycles).
        let mut sim = two_node_sim();
        sim.run_leaping(1_000_000);
        assert_eq!(sim.now(), 1_000_000);
        assert!(
            sim.ticks_executed() <= 8,
            "idle mesh ticked {} times, expected O(events)",
            sim.ticks_executed()
        );
        // A stepped control pays the full bill.
        let mut stepped = two_node_sim();
        stepped.run(1_000);
        assert_eq!(stepped.ticks_executed(), 2 * 1_000);
    }

    #[test]
    fn leaping_matches_stepping_on_a_one_hop_transfer() {
        let mut stepped = two_node_sim();
        let mut leaping = two_node_sim();
        let dst = stepped.topology().node_at(1, 0);
        for sim in [&mut stepped, &mut leaping] {
            sim.enable_gauge_sampling(25);
            sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![0x5A; 40], PacketTrace::default()));
        }
        stepped.run(2000);
        leaping.run_leaping(2000);
        assert_eq!(stepped.now(), leaping.now());
        assert_eq!(stepped.log(dst).be, leaping.log(dst).be);
        assert_eq!(stepped.gauge_samples().cycles(), leaping.gauge_samples().cycles());
        assert!(
            leaping.ticks_executed() < stepped.ticks_executed(),
            "the quiet tail after delivery must be leaped"
        );
        assert_eq!(
            format!("{:?}", stepped.chip(dst).stats()),
            format!("{:?}", leaping.chip(dst).stats())
        );
    }

    #[test]
    fn scheduled_control_op_installs_a_route_mid_run() {
        let mut sim = two_node_sim();
        let src = NodeId(0);
        let dst = sim.topology().node_at(1, 0);
        for (node, mask) in [(src, Port::Dir(Direction::XPlus).mask()), (dst, Port::Local.mask())] {
            sim.schedule_control(500, node, move |chip| {
                chip.apply_control(ControlCommand::SetConnection {
                    incoming: ConnectionId(9),
                    outgoing: ConnectionId(9),
                    delay: 4,
                    out_mask: mask,
                })
                .map_err(|e| e.to_string())
            });
        }
        sim.run(400);
        assert_eq!(sim.control_stats().ops_applied, 0, "not due yet");
        sim.run(200);
        assert_eq!(sim.control_stats().ops_applied, 2);
        // The mid-run table writes route traffic exactly like t=0 setup.
        let clock = sim.chip(src).clock();
        let slot_bytes = sim.chip(src).config().slot_bytes;
        let payload = vec![0xEE; sim.chip(src).config().tc_data_bytes()];
        sim.inject_tc(
            src,
            TcPacket {
                conn: ConnectionId(9),
                arrival: clock.wrap(rtr_types::time::cycle_to_slot(sim.now(), slot_bytes) + 2),
                payload: payload.clone().into(),
                trace: PacketTrace::default(),
            },
        );
        assert!(sim.run_until(3000, |s| !s.log(dst).tc.is_empty()));
        assert_eq!(sim.log(dst).tc[0].1.payload, payload);
    }

    #[test]
    fn control_op_failures_are_counted_not_propagated() {
        let mut sim = two_node_sim();
        sim.schedule_control(10, NodeId(0), |_chip| Err("nope".to_string()));
        sim.run(20);
        assert_eq!(sim.control_stats().ops_rejected, 1);
        assert_eq!(sim.control_stats().ops_applied, 0);
    }

    #[test]
    fn leaping_never_crosses_a_control_epoch() {
        // An idle mesh with one control op mid-slumber: the leaper must
        // split its quiet span at the epoch (the debug assert in `leap_to`
        // aborts the test otherwise), apply the op at its exact cycle, and
        // keep leaping on both sides.
        let mut sim = two_node_sim();
        sim.schedule_control(5_555, NodeId(0), |chip| {
            chip.apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(3),
                outgoing: ConnectionId(3),
                delay: 4,
                out_mask: Port::Local.mask(),
            })
            .map_err(|e| e.to_string())
        });
        sim.run_leaping(10_000);
        assert_eq!(sim.now(), 10_000);
        assert_eq!(sim.control_stats().ops_applied, 1);
        assert!(sim.ticks_executed() <= 16, "still leaps: {}", sim.ticks_executed());
    }

    #[test]
    fn link_usage_counts_symbols_by_class() {
        let mut sim = two_node_sim();
        let dst = sim.topology().node_at(1, 0);
        sim.inject_be(NodeId(0), BePacket::new(1, 0, vec![0; 30], PacketTrace::default()));
        assert!(sim.run_until(2000, |s| !s.log(dst).be.is_empty()));
        let usage = sim.link_usage(NodeId(0), Direction::XPlus);
        assert_eq!(usage.be_symbols, 34, "4 header + 30 payload bytes crossed");
        assert_eq!(usage.tc_symbols, 0);
        assert!(sim.peak_link_utilization() > 0.0);
        assert_eq!(
            sim.link_usage(dst, Direction::XMinus),
            super::LinkUsage::default(),
            "the return link never carried anything"
        );
    }
}
