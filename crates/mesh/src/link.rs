//! Physical links: unidirectional symbol pipes with a reverse credit wire.
//!
//! A link carries at most one [`LinkSymbol`] per cycle in the data direction
//! (both virtual channels share the physical wires; the chip's output
//! arbitration enforces the one-byte-per-cycle budget) and best-effort
//! credits in the reverse direction (the acknowledgement bit of §3.2).

use std::collections::VecDeque;

use rtr_types::flit::LinkSymbol;
use rtr_types::time::Cycle;

/// One unidirectional link (plus its reverse credit wire).
#[derive(Debug, Default)]
pub struct Link {
    /// Wire latency in cycles added on top of the one-cycle transfer.
    latency: Cycle,
    data: VecDeque<(Cycle, LinkSymbol)>,
    credits: VecDeque<(Cycle, u16)>,
}

impl Link {
    /// Creates a link with the given extra wire latency.
    #[must_use]
    pub fn new(latency: Cycle) -> Self {
        Link { latency, data: VecDeque::new(), credits: VecDeque::new() }
    }

    /// Puts a symbol on the wire at `now`; it arrives at `now + 1 +
    /// latency`.
    pub fn send(&mut self, now: Cycle, symbol: LinkSymbol) {
        let arrive = now + 1 + self.latency;
        debug_assert!(
            self.data.back().is_none_or(|(t, _)| *t < arrive),
            "link carries at most one symbol per cycle"
        );
        self.data.push_back((arrive, symbol));
    }

    /// Takes the symbol arriving exactly at `now`, if any.
    pub fn recv(&mut self, now: Cycle) -> Option<LinkSymbol> {
        match self.data.front() {
            Some((t, _)) if *t <= now => {
                debug_assert_eq!(self.data.front().unwrap().0, now, "missed a link arrival");
                self.data.pop_front().map(|(_, s)| s)
            }
            _ => None,
        }
    }

    /// Puts credits on the reverse wire at `now`.
    pub fn send_credit(&mut self, now: Cycle, bytes: u16) {
        self.credits.push_back((now + 1 + self.latency, bytes));
    }

    /// Takes the credits arriving at `now` (summed), if any.
    pub fn recv_credit(&mut self, now: Cycle) -> u16 {
        let mut total = 0;
        while let Some((t, _)) = self.credits.front() {
            if *t <= now {
                total += self.credits.pop_front().unwrap().1;
            } else {
                break;
            }
        }
        total
    }

    /// Symbols currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.data.len()
    }

    /// Credit batches currently on the reverse wire.
    #[must_use]
    pub fn credits_in_flight(&self) -> usize {
        self.credits.len()
    }

    /// Heap bytes behind the link's in-flight queues (their allocated
    /// capacity, not just current occupancy — the memory-footprint
    /// guardrail counts what the allocator actually holds).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<(Cycle, LinkSymbol)>()
            + self.credits.capacity() * std::mem::size_of::<(Cycle, u16)>()
    }

    /// The cycle of the next delivery this link owes (front data symbol or
    /// front credit batch, whichever is earlier); `None` when the wire is
    /// empty in both directions. [`Link::recv`] insists on being called at
    /// the exact arrival cycle, so the simulator's leaping mode must never
    /// jump past this.
    #[must_use]
    pub fn next_event(&self) -> Option<Cycle> {
        let data = self.data.front().map(|(t, _)| *t);
        let credit = self.credits.front().map(|(t, _)| *t);
        match (data, credit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::flit::BeByte;

    fn be(byte: u8) -> LinkSymbol {
        LinkSymbol::Be(BeByte::body(byte))
    }

    #[test]
    fn symbol_arrives_after_latency() {
        let mut l = Link::new(2);
        l.send(10, be(7));
        assert!(l.recv(12).is_none());
        assert_eq!(l.recv(13), Some(be(7)));
        assert!(l.recv(14).is_none());
    }

    #[test]
    fn zero_latency_link_delivers_next_cycle() {
        let mut l = Link::new(0);
        l.send(0, be(1));
        assert_eq!(l.recv(1), Some(be(1)));
    }

    #[test]
    fn credits_accumulate() {
        let mut l = Link::new(0);
        l.send_credit(5, 1);
        l.send_credit(5, 2);
        assert_eq!(l.recv_credit(5), 0);
        assert_eq!(l.recv_credit(6), 3);
        assert_eq!(l.recv_credit(7), 0);
    }

    #[test]
    fn back_to_back_symbols_keep_order() {
        let mut l = Link::new(1);
        l.send(0, be(1));
        l.send(1, be(2));
        assert_eq!(l.recv(2), Some(be(1)));
        assert_eq!(l.recv(3), Some(be(2)));
    }
}
