//! Physical links: unidirectional symbol pipes with a reverse credit wire.
//!
//! A link carries at most one [`LinkSymbol`] per cycle in the data direction
//! (both virtual channels share the physical wires; the chip's output
//! arbitration enforces the one-byte-per-cycle budget) and best-effort
//! credits in the reverse direction (the acknowledgement bit of §3.2).
//!
//! Links are where the fault plane acts (see [`crate::fault`]): a link can
//! be **down** (blackholing what is sent while down) or **flaky** (a seeded
//! generator drops or corrupts a fraction of the *packets* it carries).
//! Faults are packet-coherent: the fate of a packet is decided at its head
//! symbol and its continuation symbols follow, so a packet either crosses
//! whole or vanishes whole and the downstream reassembly state machines
//! never see a torn frame from a link fault. (Crashed *receivers* can still
//! tear packets — arrivals whose exact cycle passes unobserved are dropped
//! and counted here, and the receiver's input ports tolerate the orphaned
//! remainder.) Every symbol destroyed lands in the [`LinkLedger`], whose
//! conservation identity `sent = delivered + lost + in flight` makes
//! lost-to-fault a ledger column rather than a leak.

use std::collections::VecDeque;

use rtr_types::flit::LinkSymbol;
use rtr_types::ids::ConnectionId;
use rtr_types::time::Cycle;

/// Per-link symbol accounting, including the fault-plane loss columns.
///
/// The conservation identity is
/// `symbols_sent == symbols_delivered + symbols_lost + in_flight`;
/// [`Link::check_conservation`] asserts it. `late_arrivals_dropped` is a
/// sub-count of `symbols_lost` (the crashed-receiver case), and
/// `symbols_corrupted` counts *delivered* symbols whose content was
/// deliberately damaged (they are not lost).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkLedger {
    /// Symbols the transmitter put on the wire (including ones a fault
    /// destroyed at the transmit end).
    pub symbols_sent: u64,
    /// Symbols taken off the wire at their exact arrival cycle.
    pub symbols_delivered: u64,
    /// Symbols destroyed by faults: blackholed while down, flaky-dropped,
    /// or stale at a crashed receiver.
    pub symbols_lost: u64,
    /// Delivered symbols whose content was deliberately corrupted (a
    /// sub-class of `symbols_delivered`).
    pub symbols_corrupted: u64,
    /// Best-effort credit bytes destroyed while the link was down.
    pub credits_lost: u64,
    /// The subset of `symbols_lost` dropped because their arrival cycle
    /// passed while the receiver was not polling (node crash).
    pub late_arrivals_dropped: u64,
}

impl LinkLedger {
    /// Folds another ledger into this one (mesh-wide totals).
    pub fn merge(&mut self, other: &LinkLedger) {
        self.symbols_sent += other.symbols_sent;
        self.symbols_delivered += other.symbols_delivered;
        self.symbols_lost += other.symbols_lost;
        self.symbols_corrupted += other.symbols_corrupted;
        self.credits_lost += other.credits_lost;
        self.late_arrivals_dropped += other.late_arrivals_dropped;
    }
}

/// One unidirectional link (plus its reverse credit wire).
#[derive(Debug, Default)]
pub struct Link {
    /// Wire latency in cycles added on top of the one-cycle transfer.
    latency: Cycle,
    data: VecDeque<(Cycle, LinkSymbol)>,
    credits: VecDeque<(Cycle, u16)>,
    /// Downed link: new packets and credits are blackholed (packets whose
    /// head already crossed complete, keeping receivers coherent).
    down: bool,
    /// Flaky regime: packets dropped, per 1024 (0 = off).
    drop_per_1024: u16,
    /// Flaky regime: packets corrupted, per 1024 (0 = off).
    corrupt_per_1024: u16,
    /// Per-link xorshift64 state for the flaky decisions (0 = unseeded;
    /// seeded by the first `set_flaky`).
    rng: u64,
    /// The time-constrained packet in transit had its head destroyed:
    /// drop its continuation symbols too.
    tc_dropping: bool,
    /// Same for the best-effort packet in transit.
    be_dropping: bool,
    /// The current best-effort packet was chosen for corruption; the first
    /// payload byte gets flipped.
    be_corrupt_armed: bool,
    /// Byte position within the current best-effort packet (0 = head).
    be_pos: u16,
    /// Corrupt decision stashed by the last flaky roll (both decisions
    /// come from one draw so a packet is never dropped *and* corrupted).
    pending_corrupt: bool,
    ledger: LinkLedger,
}

impl Link {
    /// Creates a link with the given extra wire latency.
    #[must_use]
    pub fn new(latency: Cycle) -> Self {
        Link { latency, ..Link::default() }
    }

    /// Puts a symbol on the wire at `now`; it arrives at `now + 1 +
    /// latency` — unless a fault destroys it, in which case it is counted
    /// in the [`LinkLedger`] and never arrives. Fault decisions are made
    /// at packet heads and inherited by continuation symbols, so packets
    /// cross (or vanish) whole.
    pub fn send(&mut self, now: Cycle, symbol: LinkSymbol) {
        self.ledger.symbols_sent += 1;
        let symbol = match symbol {
            LinkSymbol::TcStart(mut packet) => {
                self.tc_dropping = false;
                if self.down || self.roll_drop() {
                    self.tc_dropping = true;
                    self.ledger.symbols_lost += 1;
                    return;
                }
                if self.roll_corrupt() {
                    // Header corruption: a flipped connection id. Routers
                    // drop unknown ids deliberately (`tc_dropped_no_conn`),
                    // so the damage is observable and well-accounted.
                    packet.conn = ConnectionId(packet.conn.0 ^ 0x155);
                    self.ledger.symbols_corrupted += 1;
                }
                LinkSymbol::TcStart(packet)
            }
            LinkSymbol::TcCont { index } => {
                if self.tc_dropping {
                    self.ledger.symbols_lost += 1;
                    return;
                }
                LinkSymbol::TcCont { index }
            }
            LinkSymbol::Be(mut byte) => {
                if byte.head {
                    self.be_dropping = false;
                    self.be_corrupt_armed = false;
                    self.be_pos = 0;
                    if self.down || self.roll_drop() {
                        self.be_dropping = true;
                    } else if self.roll_corrupt() {
                        self.be_corrupt_armed = true;
                    }
                } else {
                    self.be_pos = self.be_pos.saturating_add(1);
                }
                if self.be_dropping {
                    self.ledger.symbols_lost += 1;
                    if byte.tail {
                        self.be_dropping = false;
                    }
                    return;
                }
                // Payload corruption only (positions ≥ 4 skip the 4-byte
                // header, whose offsets steer routing): the packet arrives
                // whole, framed, and wrong.
                if self.be_corrupt_armed && self.be_pos >= 4 {
                    byte.byte ^= 0xA5;
                    self.be_corrupt_armed = false;
                    self.ledger.symbols_corrupted += 1;
                }
                if byte.tail {
                    self.be_corrupt_armed = false;
                }
                LinkSymbol::Be(byte)
            }
        };
        let arrive = now + 1 + self.latency;
        debug_assert!(
            self.data.back().is_none_or(|(t, _)| *t < arrive),
            "link carries at most one symbol per cycle"
        );
        self.data.push_back((arrive, symbol));
    }

    /// Takes the symbol arriving exactly at `now`, if any. Arrivals whose
    /// exact cycle already passed unobserved — possible only when the
    /// receiver stopped polling (node crash) — are dropped *deliberately*
    /// and counted (`symbols_lost` / `late_arrivals_dropped`), never
    /// delivered late: delivering them after the fact would retroactively
    /// change what the receiver should have seen cycles ago.
    pub fn recv(&mut self, now: Cycle) -> Option<LinkSymbol> {
        while let Some((t, _)) = self.data.front() {
            if *t < now {
                self.data.pop_front();
                self.ledger.symbols_lost += 1;
                self.ledger.late_arrivals_dropped += 1;
            } else if *t == now {
                self.ledger.symbols_delivered += 1;
                return self.data.pop_front().map(|(_, s)| s);
            } else {
                return None;
            }
        }
        None
    }

    /// Puts credits on the reverse wire at `now` (blackholed while the
    /// link is down — the reverse wire is part of the same cable).
    pub fn send_credit(&mut self, now: Cycle, bytes: u16) {
        if self.down {
            self.ledger.credits_lost += u64::from(bytes);
            return;
        }
        self.credits.push_back((now + 1 + self.latency, bytes));
    }

    /// Takes the credits arriving at `now` (summed), if any. Unlike data
    /// symbols, credits are pure counters with no per-cycle framing, so
    /// batches whose cycle passed while the receiver was crashed are
    /// simply delivered late.
    pub fn recv_credit(&mut self, now: Cycle) -> u16 {
        let mut total = 0;
        while let Some((t, _)) = self.credits.front() {
            if *t <= now {
                total += self.credits.pop_front().unwrap().1;
            } else {
                break;
            }
        }
        total
    }

    /// Fails the link: everything sent from now on is blackholed (and
    /// counted). Symbols already in flight still arrive, and a packet
    /// whose head already crossed completes — faults are packet-coherent,
    /// so receivers never see a torn frame.
    pub fn set_down(&mut self) {
        self.down = true;
    }

    /// Repairs the link. Packets whose head was blackholed while down
    /// stay blackholed to their tail (coherence); the next head crosses.
    pub fn set_up(&mut self) {
        self.down = false;
    }

    /// Whether the link is currently down.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Configures the flaky regime: per-1024 packet drop and corruption
    /// probabilities, decided per packet head by a seeded xorshift64
    /// generator. Zero rates (with any seed) end the regime.
    pub fn set_flaky(&mut self, drop_per_1024: u16, corrupt_per_1024: u16, seed: u64) {
        self.drop_per_1024 = drop_per_1024.min(1024);
        self.corrupt_per_1024 = corrupt_per_1024.min(1024);
        self.rng = seed.max(1);
    }

    /// The link's symbol-accounting ledger.
    #[must_use]
    pub fn ledger(&self) -> LinkLedger {
        self.ledger
    }

    /// Checks the ledger identity `sent == delivered + lost + in flight`.
    ///
    /// # Errors
    ///
    /// Returns a description of the imbalance.
    pub fn check_conservation(&self) -> Result<(), String> {
        let l = &self.ledger;
        let accounted = l.symbols_delivered + l.symbols_lost + self.data.len() as u64;
        if l.symbols_sent != accounted {
            return Err(format!(
                "link conservation violated: sent {} != delivered {} + lost {} + in-flight {}",
                l.symbols_sent,
                l.symbols_delivered,
                l.symbols_lost,
                self.data.len()
            ));
        }
        Ok(())
    }

    /// One flaky-regime roll; both decisions (drop, corrupt) come from
    /// disjoint bit ranges of a single draw so a packet is never both.
    fn roll(&mut self) -> u64 {
        let mut x = self.rng.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    fn roll_drop(&mut self) -> bool {
        if self.drop_per_1024 == 0 && self.corrupt_per_1024 == 0 {
            return false;
        }
        let r = self.roll();
        let drop = (r % 1024) < u64::from(self.drop_per_1024);
        self.pending_corrupt = !drop && ((r >> 10) % 1024) < u64::from(self.corrupt_per_1024);
        drop
    }

    fn roll_corrupt(&mut self) -> bool {
        std::mem::take(&mut self.pending_corrupt)
    }

    /// Symbols currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.data.len()
    }

    /// Credit batches currently on the reverse wire.
    #[must_use]
    pub fn credits_in_flight(&self) -> usize {
        self.credits.len()
    }

    /// Heap bytes behind the link's in-flight queues (their allocated
    /// capacity, not just current occupancy — the memory-footprint
    /// guardrail counts what the allocator actually holds).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<(Cycle, LinkSymbol)>()
            + self.credits.capacity() * std::mem::size_of::<(Cycle, u16)>()
    }

    /// The cycle of the next delivery this link owes (front data symbol or
    /// front credit batch, whichever is earlier); `None` when the wire is
    /// empty in both directions. [`Link::recv`] insists on being called at
    /// the exact arrival cycle, so the simulator's leaping mode must never
    /// jump past this.
    #[must_use]
    pub fn next_event(&self) -> Option<Cycle> {
        let data = self.data.front().map(|(t, _)| *t);
        let credit = self.credits.front().map(|(t, _)| *t);
        match (data, credit) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::clock::SlotClock;
    use rtr_types::flit::BeByte;
    use rtr_types::packet::{PacketTrace, TcPacket};

    fn be(byte: u8) -> LinkSymbol {
        LinkSymbol::Be(BeByte::body(byte))
    }

    fn tc_start(conn: u16) -> LinkSymbol {
        LinkSymbol::TcStart(Box::new(TcPacket {
            conn: ConnectionId(conn),
            arrival: SlotClock::new(8).wrap(0),
            payload: vec![0; 18].into(),
            trace: PacketTrace::default(),
        }))
    }

    #[test]
    fn symbol_arrives_after_latency() {
        let mut l = Link::new(2);
        l.send(10, be(7));
        assert!(l.recv(12).is_none());
        assert_eq!(l.recv(13), Some(be(7)));
        assert!(l.recv(14).is_none());
    }

    #[test]
    fn zero_latency_link_delivers_next_cycle() {
        let mut l = Link::new(0);
        l.send(0, be(1));
        assert_eq!(l.recv(1), Some(be(1)));
    }

    #[test]
    fn credits_accumulate() {
        let mut l = Link::new(0);
        l.send_credit(5, 1);
        l.send_credit(5, 2);
        assert_eq!(l.recv_credit(5), 0);
        assert_eq!(l.recv_credit(6), 3);
        assert_eq!(l.recv_credit(7), 0);
    }

    #[test]
    fn back_to_back_symbols_keep_order() {
        let mut l = Link::new(1);
        l.send(0, be(1));
        l.send(1, be(2));
        assert_eq!(l.recv(2), Some(be(1)));
        assert_eq!(l.recv(3), Some(be(2)));
    }

    #[test]
    fn stale_arrivals_are_dropped_and_counted_not_delivered_late() {
        let mut l = Link::new(0);
        l.send(0, be(1));
        l.send(1, be(2));
        l.send(2, be(3));
        // Receiver crashed through cycles 1–2; polls again at 3: the two
        // stale symbols are destroyed, the on-time one delivered.
        assert_eq!(l.recv(3), Some(be(3)));
        let ledger = l.ledger();
        assert_eq!(ledger.late_arrivals_dropped, 2);
        assert_eq!(ledger.symbols_lost, 2);
        assert_eq!(ledger.symbols_delivered, 1);
        l.check_conservation().unwrap();
    }

    #[test]
    fn downed_link_blackholes_new_packets_but_completes_in_flight() {
        let mut l = Link::new(0);
        l.send(0, tc_start(4));
        l.send(1, LinkSymbol::TcCont { index: 1 });
        l.set_down();
        // The started packet's remaining symbol still crosses (coherence)…
        l.send(2, LinkSymbol::TcCont { index: 2 });
        assert!(l.recv(1).is_some());
        assert!(l.recv(2).is_some());
        assert!(l.recv(3).is_some());
        // …but a new packet sent while down vanishes whole.
        l.send(3, tc_start(5));
        l.send(4, LinkSymbol::TcCont { index: 1 });
        assert!(l.recv(4).is_none());
        assert!(l.recv(5).is_none());
        // Credits sent while down vanish too.
        l.send_credit(3, 2);
        assert_eq!(l.recv_credit(10), 0);
        let ledger = l.ledger();
        assert_eq!(ledger.symbols_lost, 2);
        assert_eq!(ledger.credits_lost, 2);
        l.check_conservation().unwrap();
        // Repair: packets flow again.
        l.set_up();
        l.send(6, tc_start(6));
        assert!(l.recv(7).is_some());
    }

    #[test]
    fn repaired_link_finishes_blackholing_the_torn_packet() {
        let mut l = Link::new(0);
        l.set_down();
        l.send(0, tc_start(1)); // head destroyed
        l.set_up();
        // Continuations of the destroyed packet must not leak through
        // after the repair — the receiver never saw the head.
        l.send(1, LinkSymbol::TcCont { index: 1 });
        assert!(l.recv(2).is_none());
        assert_eq!(l.ledger().symbols_lost, 2);
        l.check_conservation().unwrap();
    }

    #[test]
    fn flaky_link_drops_whole_packets_deterministically() {
        let run = |seed: u64| -> (u64, u64) {
            let mut l = Link::new(0);
            l.set_flaky(512, 0, seed);
            let mut now = 0;
            for p in 0..64u16 {
                l.send(now, tc_start(p));
                now += 1;
                l.send(now, LinkSymbol::TcCont { index: 1 });
                now += 1;
            }
            // Drain.
            for t in 0..=now {
                l.recv(t);
            }
            l.check_conservation().unwrap();
            (l.ledger().symbols_lost, l.ledger().symbols_delivered)
        };
        let (lost_a, delivered_a) = run(42);
        let (lost_b, delivered_b) = run(42);
        assert_eq!((lost_a, delivered_a), (lost_b, delivered_b), "seeded => reproducible");
        assert!(lost_a > 0 && delivered_a > 0, "a 50% regime drops some and passes some");
        assert_eq!(lost_a % 2, 0, "packets drop whole (head + cont)");
    }

    #[test]
    fn flaky_corruption_flips_the_connection_id() {
        let mut l = Link::new(0);
        l.set_flaky(0, 1024, 7);
        l.send(0, tc_start(4));
        match l.recv(1) {
            Some(LinkSymbol::TcStart(p)) => {
                assert_eq!(p.conn, ConnectionId(4 ^ 0x155), "corrupted header id");
            }
            other => panic!("expected a delivered TcStart, got {other:?}"),
        }
        assert_eq!(l.ledger().symbols_corrupted, 1);
        l.check_conservation().unwrap();
    }

    #[test]
    fn be_corruption_hits_payload_never_the_header() {
        let mut l = Link::new(0);
        l.set_flaky(0, 1024, 9);
        let bytes = [
            BeByte { byte: 1, head: true, tail: false, trace: None },
            BeByte::body(0),
            BeByte::body(1),
            BeByte::body(0),
            BeByte::body(0x11),
            BeByte { byte: 0x22, head: false, tail: true, trace: None },
        ];
        for (t, b) in bytes.into_iter().enumerate() {
            l.send(t as Cycle, LinkSymbol::Be(b));
        }
        let mut out = Vec::new();
        for t in 1..=6 {
            if let Some(LinkSymbol::Be(b)) = l.recv(t) {
                out.push(b.byte);
            }
        }
        assert_eq!(out.len(), 6, "corrupted packets still arrive whole");
        assert_eq!(&out[..4], &[1, 0, 1, 0], "header untouched");
        assert_eq!(out[4], 0x11 ^ 0xA5, "first payload byte flipped");
        assert_eq!(out[5], 0x22, "only one byte corrupted");
        assert_eq!(l.ledger().symbols_corrupted, 1);
    }
}
