//! Network topology: node coordinates and link wiring.
//!
//! The primary topology is the paper's 2-D square mesh (Figure 1), where
//! dimension-ordered routing is deadlock-free. [`Topology::loopback`] builds
//! the single-router configuration of §5.2 Experiment 1, whose +x output
//! feeds its own −x input and +y output feeds its own −y input, so one chip
//! exercises a multi-hop path.

use rtr_types::ids::{Direction, NodeId};

/// Where one output link lands: the destination node and the *input
/// direction* it arrives on there.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEnd {
    /// Destination node.
    pub node: NodeId,
    /// Input direction at the destination.
    pub dir: Direction,
}

/// A network of nodes plus the wiring of their directional links.
#[derive(Debug, Clone)]
pub struct Topology {
    width: u16,
    height: u16,
    /// `wiring[node][dir]` is where node's `dir` output link lands.
    wiring: Vec<[Option<LinkEnd>; 4]>,
}

impl Topology {
    /// A `width × height` open mesh (the paper's Figure 1 topology).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn mesh(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        let mut wiring = vec![[None; 4]; usize::from(width) * usize::from(height)];
        for y in 0..height {
            for x in 0..width {
                let n = usize::from(y) * usize::from(width) + usize::from(x);
                if x + 1 < width {
                    wiring[n][dir_index(Direction::XPlus)] =
                        Some(LinkEnd { node: NodeId((n + 1) as u16), dir: Direction::XMinus });
                }
                if x > 0 {
                    wiring[n][dir_index(Direction::XMinus)] =
                        Some(LinkEnd { node: NodeId((n - 1) as u16), dir: Direction::XPlus });
                }
                if y + 1 < height {
                    wiring[n][dir_index(Direction::YPlus)] = Some(LinkEnd {
                        node: NodeId((n + usize::from(width)) as u16),
                        dir: Direction::YMinus,
                    });
                }
                if y > 0 {
                    wiring[n][dir_index(Direction::YMinus)] = Some(LinkEnd {
                        node: NodeId((n - usize::from(width)) as u16),
                        dir: Direction::YPlus,
                    });
                }
            }
        }
        Topology { width, height, wiring }
    }

    /// A 1-D chain of `n` nodes (a `n × 1` mesh) — the shape the paper's
    /// per-hop analyses use.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn line(n: u16) -> Self {
        Topology::mesh(n, 1)
    }

    /// The single-router loop-back configuration of the paper's §5.2
    /// Experiment 1: +x wired to the node's own −x input, +y to its own −y
    /// input (and symmetrically −x → +x, −y → +y so both directions work).
    #[must_use]
    pub fn loopback() -> Self {
        let mut wiring = vec![[None; 4]];
        let n = NodeId(0);
        wiring[0][dir_index(Direction::XPlus)] = Some(LinkEnd { node: n, dir: Direction::XMinus });
        wiring[0][dir_index(Direction::XMinus)] = Some(LinkEnd { node: n, dir: Direction::XPlus });
        wiring[0][dir_index(Direction::YPlus)] = Some(LinkEnd { node: n, dir: Direction::YMinus });
        wiring[0][dir_index(Direction::YMinus)] = Some(LinkEnd { node: n, dir: Direction::YPlus });
        Topology { width: 1, height: 1, wiring }
    }

    /// The same topology with the given output links unwired (link
    /// failures, or deliberately irregular fabrics). Only the listed
    /// direction is removed — the reverse link stays up unless it is
    /// listed too, so asymmetric wiring is expressible.
    #[must_use]
    pub fn without_links(mut self, dead: &[(NodeId, Direction)]) -> Self {
        for (node, dir) in dead {
            self.wiring[node.index()][dir_index(*dir)] = None;
        }
        self
    }

    /// Heap bytes behind the wiring table (allocated capacity).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.wiring.capacity() * std::mem::size_of::<[Option<LinkEnd>; 4]>()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.wiring.len()
    }

    /// Whether the topology has no nodes (never true for constructed
    /// topologies).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.wiring.is_empty()
    }

    /// Mesh width.
    #[must_use]
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Mesh height.
    #[must_use]
    pub fn height(&self) -> u16 {
        self.height
    }

    /// All node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.wiring.len()).map(|i| NodeId(i as u16))
    }

    /// Where `node`'s `dir` output link lands, if wired.
    #[must_use]
    pub fn link_end(&self, node: NodeId, dir: Direction) -> Option<LinkEnd> {
        self.wiring[node.index()][dir_index(dir)]
    }

    /// The `(x, y)` coordinates of a node.
    #[must_use]
    pub fn coords(&self, node: NodeId) -> (u16, u16) {
        let i = node.index();
        ((i % usize::from(self.width)) as u16, (i / usize::from(self.width)) as u16)
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the mesh.
    #[must_use]
    pub fn node_at(&self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "coordinates outside the mesh");
        NodeId(y * self.width + x)
    }

    /// The dimension-ordered header offsets for a best-effort packet from
    /// `src` to `dst` (Figure 3b).
    ///
    /// # Panics
    ///
    /// Panics if an offset exceeds the `i8` header field (meshes wider than
    /// 127 hops).
    #[must_use]
    pub fn be_offsets(&self, src: NodeId, dst: NodeId) -> (i8, i8) {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let x = i32::from(dx) - i32::from(sx);
        let y = i32::from(dy) - i32::from(sy);
        (
            i8::try_from(x).expect("x offset exceeds header field"),
            i8::try_from(y).expect("y offset exceeds header field"),
        )
    }

    /// The dimension-ordered route from `src` to `dst` as a list of output
    /// directions (empty when `src == dst`). This is the fixed path the
    /// channel-establishment protocol reserves resources along.
    #[must_use]
    pub fn dor_route(&self, src: NodeId, dst: NodeId) -> Vec<Direction> {
        let (mut x, mut y) = self.be_offsets(src, dst);
        let mut route = Vec::with_capacity(x.unsigned_abs() as usize + y.unsigned_abs() as usize);
        while x > 0 {
            route.push(Direction::XPlus);
            x -= 1;
        }
        while x < 0 {
            route.push(Direction::XMinus);
            x += 1;
        }
        while y > 0 {
            route.push(Direction::YPlus);
            y -= 1;
        }
        while y < 0 {
            route.push(Direction::YMinus);
            y += 1;
        }
        route
    }

    /// A shortest route from `src` to `dst` that avoids the given dead (or
    /// resource-exhausted) links, or `None` if the failures disconnect the
    /// pair.
    ///
    /// Time-constrained routing is table-driven (§3.3), so — unlike the
    /// offset-based best-effort class — a channel's fixed path may be *any*
    /// path the protocol software picks: "the chosen route depends on the
    /// resources available at various nodes and links in the network", and
    /// multi-hop meshes have "several disjoint routes between each pair of
    /// processing nodes, improving the application's resilience to link and
    /// node failures" (§1).
    ///
    /// # Example
    ///
    /// ```
    /// use rtr_mesh::Topology;
    /// use rtr_types::ids::Direction;
    ///
    /// let topo = Topology::mesh(3, 3);
    /// let (src, dst) = (topo.node_at(0, 0), topo.node_at(2, 0));
    /// // The direct route is two +x hops; with the first +x link dead,
    /// // the shortest detour goes around through the next row.
    /// let detour = topo.route_avoiding(src, dst, &[(src, Direction::XPlus)]).unwrap();
    /// assert_eq!(detour.len(), 4);
    /// ```
    #[must_use]
    pub fn route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        dead: &[(NodeId, Direction)],
    ) -> Option<Vec<Direction>> {
        if src == dst {
            return Some(Vec::new());
        }
        // BFS over wired, live links.
        let mut prev: Vec<Option<(NodeId, Direction)>> = vec![None; self.len()];
        let mut visited = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[src.index()] = true;
        queue.push_back(src);
        while let Some(here) = queue.pop_front() {
            for dir in Direction::ALL {
                if dead.contains(&(here, dir)) {
                    continue;
                }
                let Some(end) = self.link_end(here, dir) else { continue };
                if visited[end.node.index()] {
                    continue;
                }
                visited[end.node.index()] = true;
                prev[end.node.index()] = Some((here, dir));
                if end.node == dst {
                    let mut route = Vec::new();
                    let mut walk = dst;
                    while walk != src {
                        let (from, dir) = prev[walk.index()].expect("BFS path");
                        route.push(dir);
                        walk = from;
                    }
                    route.reverse();
                    return Some(route);
                }
                queue.push_back(end.node);
            }
        }
        None
    }

    /// The sequence of nodes visited by following `route` from `src`
    /// (starting node included).
    ///
    /// # Panics
    ///
    /// Panics if the route leaves the wired topology.
    #[must_use]
    pub fn walk(&self, src: NodeId, route: &[Direction]) -> Vec<NodeId> {
        let mut nodes = vec![src];
        let mut here = src;
        for dir in route {
            let end = self.link_end(here, *dir).expect("route leaves the wired topology");
            here = end.node;
            nodes.push(here);
        }
        nodes
    }
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::XPlus => 0,
        Direction::XMinus => 1,
        Direction::YPlus => 2,
        Direction::YMinus => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mesh_wiring_is_consistent() {
        let t = Topology::mesh(4, 3);
        assert_eq!(t.len(), 12);
        // Interior node (1,1) = node 5 has all four links.
        let n = t.node_at(1, 1);
        for d in Direction::ALL {
            let end = t.link_end(n, d).expect("interior node fully wired");
            assert_eq!(end.dir, d.opposite(), "arrival port faces the sender");
            // The far end's output on the same side returns here.
            let back = t.link_end(end.node, end.dir).unwrap();
            assert_eq!(back.node, n);
            assert_eq!(back.dir, d);
        }
        // Corner (0,0) has only +x and +y.
        let c = t.node_at(0, 0);
        assert!(t.link_end(c, Direction::XMinus).is_none());
        assert!(t.link_end(c, Direction::YMinus).is_none());
        assert!(t.link_end(c, Direction::XPlus).is_some());
        assert!(t.link_end(c, Direction::YPlus).is_some());
    }

    #[test]
    fn coords_round_trip() {
        let t = Topology::mesh(5, 4);
        for n in t.nodes() {
            let (x, y) = t.coords(n);
            assert_eq!(t.node_at(x, y), n);
        }
    }

    #[test]
    fn line_is_a_one_row_mesh() {
        let t = Topology::line(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.height(), 1);
        assert!(t.link_end(NodeId(0), Direction::YPlus).is_none());
        assert!(t.link_end(NodeId(1), Direction::XPlus).is_some());
    }

    #[test]
    fn loopback_wires_links_to_self() {
        let t = Topology::loopback();
        assert_eq!(t.len(), 1);
        let end = t.link_end(NodeId(0), Direction::XPlus).unwrap();
        assert_eq!(end.node, NodeId(0));
        assert_eq!(end.dir, Direction::XMinus);
    }

    #[test]
    fn offsets_match_coordinates() {
        let t = Topology::mesh(4, 4);
        let a = t.node_at(0, 3);
        let b = t.node_at(2, 1);
        assert_eq!(t.be_offsets(a, b), (2, -2));
        assert_eq!(t.be_offsets(b, a), (-2, 2));
        assert_eq!(t.be_offsets(a, a), (0, 0));
    }

    #[test]
    fn dor_route_goes_x_then_y() {
        let t = Topology::mesh(4, 4);
        let route = t.dor_route(t.node_at(0, 0), t.node_at(2, 1));
        assert_eq!(route, vec![Direction::XPlus, Direction::XPlus, Direction::YPlus]);
        let nodes = t.walk(t.node_at(0, 0), &route);
        assert_eq!(nodes.last(), Some(&t.node_at(2, 1)));
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn route_avoiding_dead_links_detours() {
        let t = Topology::mesh(3, 3);
        let src = t.node_at(0, 0);
        let dst = t.node_at(2, 0);
        // Unobstructed: the DOR route (+x +x) is also a BFS shortest path.
        let clear = t.route_avoiding(src, dst, &[]).unwrap();
        assert_eq!(clear.len(), 2);
        // Kill the first +x link: the detour goes around through row 1.
        let dead = [(src, Direction::XPlus)];
        let detour = t.route_avoiding(src, dst, &dead).unwrap();
        assert_eq!(detour.len(), 4, "shortest detour is 4 hops");
        assert_ne!(detour[0], Direction::XPlus);
        let nodes = t.walk(src, &detour);
        assert_eq!(*nodes.last().unwrap(), dst);
    }

    #[test]
    fn route_avoiding_reports_disconnection() {
        let t = Topology::mesh(2, 1);
        let dead = [(t.node_at(0, 0), Direction::XPlus)];
        assert_eq!(t.route_avoiding(t.node_at(0, 0), t.node_at(1, 0), &dead), None);
        // Self-routes always succeed trivially.
        assert_eq!(t.route_avoiding(t.node_at(0, 0), t.node_at(0, 0), &dead), Some(vec![]));
    }

    proptest! {
        /// BFS routes always reach the destination over live links and are
        /// never longer than the detour-free Manhattan distance requires
        /// when nothing is dead.
        #[test]
        fn route_avoiding_without_failures_is_shortest(w in 1u16..6, h in 1u16..6, s in 0u16..36, d in 0u16..36) {
            let t = Topology::mesh(w, h);
            let s = NodeId(s % (w * h));
            let d = NodeId(d % (w * h));
            let route = t.route_avoiding(s, d, &[]).unwrap();
            let (dx, dy) = t.be_offsets(s, d);
            prop_assert_eq!(route.len() as u32, dx.unsigned_abs() as u32 + dy.unsigned_abs() as u32);
            prop_assert_eq!(*t.walk(s, &route).last().unwrap(), d);
        }
    }

    proptest! {
        /// Every DOR route walks to its destination with |x|+|y| hops.
        #[test]
        fn dor_route_reaches_destination(w in 1u16..8, h in 1u16..8, s in 0u16..64, d in 0u16..64) {
            let t = Topology::mesh(w, h);
            let s = NodeId(s % (w * h));
            let d = NodeId(d % (w * h));
            let route = t.dor_route(s, d);
            let nodes = t.walk(s, &route);
            prop_assert_eq!(*nodes.last().unwrap(), d);
            let (dx, dy) = t.be_offsets(s, d);
            prop_assert_eq!(route.len() as u32, dx.unsigned_abs() as u32 + dy.unsigned_abs() as u32);
        }
    }
}
