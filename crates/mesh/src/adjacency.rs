//! Sparse link/feeder adjacency in compressed-sparse-row form.
//!
//! The simulator's original layout kept a dense `[Option<Link>; 4]` per
//! node plus a parallel feeder table — 4 option slots and 4 usage counters
//! for every node even though boundary nodes of a mesh wire only 2–3
//! directions and a loop-back node's feeders are its own outputs. At
//! mega-mesh scale (65 536 nodes) that dense layout wastes both memory and,
//! worse, hot-loop time: every cycle phase scans `4 × nodes` option slots
//! to find the ~`4 × nodes − 2 × (width + height)` that exist.
//!
//! [`LinkTable`] stores exactly the wired links, contiguously, in CSR
//! form: `out_start[node]..out_start[node + 1]` indexes that node's
//! outgoing links, and a second CSR (`in_start`/`in_dir`/`in_link`) maps
//! each node's *fed input directions* back to the global index of the link
//! that feeds them, which is all the credit-return path needs. Global link
//! indices are dense (`0..len`), so the event core can address links with
//! `len` handles instead of `4 × nodes`, and per-link state (the pipe
//! itself, usage counters) lives in flat arenas indexed by link.

use rtr_types::ids::{Direction, NodeId};
use rtr_types::time::Cycle;

use crate::link::Link;
use crate::sim::LinkUsage;
use crate::topology::{LinkEnd, Topology};

/// CSR adjacency over a [`Topology`]: the wired links (with their pipe
/// state and usage counters) plus the reverse feeder map, both grouped by
/// node.
#[derive(Debug)]
pub struct LinkTable {
    /// CSR offsets: node `i`'s outgoing links are `out_start[i] as usize
    /// .. out_start[i + 1] as usize` (length `nodes + 1`).
    out_start: Vec<u32>,
    /// Output direction of each link, indexed by global link index.
    out_dir: Vec<Direction>,
    /// Where each link lands (destination node + arrival direction),
    /// precomputed so the hot phases never consult the topology.
    out_dst: Vec<LinkEnd>,
    /// The link pipes themselves (symbol/credit queues).
    links: Vec<Link>,
    /// Per-link carried-symbol counters.
    usage: Vec<LinkUsage>,
    /// CSR offsets of the feeder map: node `i`'s fed input directions are
    /// `in_start[i] as usize .. in_start[i + 1] as usize`.
    in_start: Vec<u32>,
    /// Arrival direction at the fed node, per feeder entry.
    in_dir: Vec<Direction>,
    /// Global index of the link feeding that input, per feeder entry.
    in_link: Vec<u32>,
}

impl LinkTable {
    /// Builds the CSR tables for `topo`, creating one [`Link`] with the
    /// given wire latency per wired output.
    #[must_use]
    pub fn build(topo: &Topology, link_latency: Cycle) -> Self {
        let n = topo.len();
        let mut out_start = Vec::with_capacity(n + 1);
        let mut out_dir = Vec::new();
        let mut out_dst = Vec::new();
        out_start.push(0);
        for node in topo.nodes() {
            for dir in Direction::ALL {
                if let Some(end) = topo.link_end(node, dir) {
                    out_dir.push(dir);
                    out_dst.push(end);
                }
            }
            out_start.push(out_dir.len() as u32);
        }
        let total = out_dir.len();
        // Reverse map: count each node's in-degree, prefix-sum into CSR
        // offsets, then scatter the feeder entries in ascending link order
        // (deterministic regardless of topology shape).
        let mut in_count = vec![0u32; n];
        for end in &out_dst {
            in_count[end.node.index()] += 1;
        }
        let mut in_start = Vec::with_capacity(n + 1);
        in_start.push(0u32);
        for count in &in_count {
            in_start.push(in_start.last().unwrap() + count);
        }
        let mut cursor: Vec<u32> = in_start[..n].to_vec();
        let mut in_dir = vec![Direction::XPlus; total];
        let mut in_link = vec![0u32; total];
        for (li, end) in out_dst.iter().enumerate() {
            let slot = cursor[end.node.index()] as usize;
            cursor[end.node.index()] += 1;
            in_dir[slot] = end.dir;
            in_link[slot] = li as u32;
        }
        LinkTable {
            out_start,
            out_dir,
            out_dst,
            links: (0..total).map(|_| Link::new(link_latency)).collect(),
            usage: vec![LinkUsage::default(); total],
            in_start,
            in_dir,
            in_link,
        }
    }

    /// Total number of wired (directed) links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the table holds no links.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The global-index range of `node`'s outgoing links.
    #[must_use]
    pub fn out_bounds(&self, node: usize) -> (usize, usize) {
        (self.out_start[node] as usize, self.out_start[node + 1] as usize)
    }

    /// The output direction of link `li`.
    #[must_use]
    pub fn dir(&self, li: usize) -> Direction {
        self.out_dir[li]
    }

    /// Where link `li` lands (destination node + arrival direction).
    #[must_use]
    pub fn dst(&self, li: usize) -> LinkEnd {
        self.out_dst[li]
    }

    /// The pipe state of link `li`.
    #[must_use]
    pub fn link(&self, li: usize) -> &Link {
        &self.links[li]
    }

    /// Mutable pipe state of link `li`.
    pub fn link_mut(&mut self, li: usize) -> &mut Link {
        &mut self.links[li]
    }

    /// The usage counters of link `li`.
    #[must_use]
    pub fn usage(&self, li: usize) -> LinkUsage {
        self.usage[li]
    }

    /// Mutable usage counters of link `li`.
    pub fn usage_mut(&mut self, li: usize) -> &mut LinkUsage {
        &mut self.usage[li]
    }

    /// The global index of `node`'s `dir` output link, if wired. A linear
    /// scan over at most four entries.
    #[must_use]
    pub fn out_index(&self, node: usize, dir: Direction) -> Option<usize> {
        let (start, end) = self.out_bounds(node);
        (start..end).find(|&li| self.out_dir[li] == dir)
    }

    /// The feeder-entry index range of `node` (see [`LinkTable::in_dir`]
    /// and [`LinkTable::in_link`]).
    #[must_use]
    pub fn in_bounds(&self, node: usize) -> (usize, usize) {
        (self.in_start[node] as usize, self.in_start[node + 1] as usize)
    }

    /// The arrival direction of feeder entry `fi`.
    #[must_use]
    pub fn in_dir(&self, fi: usize) -> Direction {
        self.in_dir[fi]
    }

    /// The global link index of feeder entry `fi`.
    #[must_use]
    pub fn in_link(&self, fi: usize) -> usize {
        self.in_link[fi] as usize
    }

    /// The `(source node, output direction)` feeding `node`'s input `dir`,
    /// if wired — the dense feeder-table lookup, reconstructed from the
    /// CSR maps (diagnostics and tests; the hot path uses
    /// [`LinkTable::in_bounds`] directly).
    #[must_use]
    pub fn feeder(&self, node: NodeId, dir: Direction) -> Option<(NodeId, Direction)> {
        let (start, end) = self.in_bounds(node.index());
        (start..end).find(|&fi| self.in_dir[fi] == dir).map(|fi| {
            let li = self.in_link[fi] as usize;
            let src = self.owner_of(li);
            (src, self.out_dir[li])
        })
    }

    /// The node that owns (drives) link `li` — a binary search over the
    /// CSR offsets.
    #[must_use]
    pub fn owner_of(&self, li: usize) -> NodeId {
        let li = li as u32;
        NodeId((self.out_start.partition_point(|&s| s <= li) - 1) as u16)
    }

    /// Iterates every link pipe in global-index order.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// Heap bytes behind the table (arena capacities; the struct itself is
    /// counted by the caller).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        self.out_start.capacity() * std::mem::size_of::<u32>()
            + self.out_dir.capacity() * std::mem::size_of::<Direction>()
            + self.out_dst.capacity() * std::mem::size_of::<LinkEnd>()
            + self.links.capacity() * std::mem::size_of::<Link>()
            + self.usage.capacity() * std::mem::size_of::<LinkUsage>()
            + self.in_start.capacity() * std::mem::size_of::<u32>()
            + self.in_dir.capacity() * std::mem::size_of::<Direction>()
            + self.in_link.capacity() * std::mem::size_of::<u32>()
            + self.links.iter().map(Link::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CSR adjacency must agree entry-for-entry with the dense topology
    /// wiring it compresses.
    fn assert_matches_topology(topo: &Topology) {
        let table = LinkTable::build(topo, 0);
        let mut expected_links = 0;
        for node in topo.nodes() {
            let (start, end) = table.out_bounds(node.index());
            let mut cursor = start;
            for dir in Direction::ALL {
                match topo.link_end(node, dir) {
                    Some(want) => {
                        let li = table.out_index(node.index(), dir).expect("wired dir present");
                        assert_eq!(li, cursor, "links stored in Direction::ALL order");
                        assert_eq!(table.dir(li), dir);
                        assert_eq!(table.dst(li), want);
                        assert_eq!(table.owner_of(li), node);
                        // The reverse map points straight back.
                        let (src, src_dir) = table.feeder(want.node, want.dir).expect("fed input");
                        assert_eq!((src, src_dir), (node, dir));
                        cursor += 1;
                        expected_links += 1;
                    }
                    None => assert_eq!(table.out_index(node.index(), dir), None),
                }
            }
            assert_eq!(cursor, end, "bounds cover exactly the wired dirs");
        }
        assert_eq!(table.len(), expected_links);
        // Feeder entries partition the links: every link appears exactly
        // once in the reverse map.
        let mut seen = vec![false; table.len()];
        for node in topo.nodes() {
            let (start, end) = table.in_bounds(node.index());
            for fi in start..end {
                let li = table.in_link(fi);
                assert!(!seen[li], "link {li} fed twice");
                seen[li] = true;
                assert_eq!(table.dst(li).node, node);
                assert_eq!(table.dst(li).dir, table.in_dir(fi));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn csr_matches_mesh_wiring() {
        assert_matches_topology(&Topology::mesh(4, 3));
        assert_matches_topology(&Topology::mesh(1, 1));
        assert_matches_topology(&Topology::line(5));
    }

    #[test]
    fn csr_handles_loopback_self_links() {
        let topo = Topology::loopback();
        assert_matches_topology(&topo);
        let table = LinkTable::build(&topo, 0);
        assert_eq!(table.len(), 4);
        let (start, end) = table.in_bounds(0);
        assert_eq!(end - start, 4, "all four inputs are fed by the node itself");
    }

    #[test]
    fn mesh_link_count_is_exact() {
        // An open w×h mesh has 2·(w·(h−1) + h·(w−1)) directed links.
        let table = LinkTable::build(&Topology::mesh(8, 8), 0);
        assert_eq!(table.len(), 2 * (8 * 7 + 8 * 7));
    }
}
