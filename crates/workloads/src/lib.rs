//! Traffic generators for the router experiments.
//!
//! * [`patterns`] — spatial destination patterns (uniform, transpose,
//!   hotspot, nearest-neighbour),
//! * [`tc`] — time-constrained sources: the continually-backlogged
//!   connections of Figure 7 and periodic senders,
//! * [`be`] — best-effort sources: backlogged streams and seeded random
//!   (Bernoulli) load,
//! * [`churn`] — seeded Poisson schedules of short-lived connections for
//!   the live control plane, plus a lifetime-window source adaptor.
//!
//! All randomised sources own a seeded generator, keeping every experiment
//! reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod be;
pub mod churn;
pub mod patterns;
pub mod replay;
pub mod tc;

pub use be::{BackloggedBeSource, RandomBeSource};
pub use churn::{churn_schedule, ChurnConfig, ChurnEvent, WindowedSource};
pub use patterns::TrafficPattern;
pub use replay::{InjectionTrace, ReplaySource};
pub use tc::{BackloggedTcSource, BurstyTcSource, PeriodicTcSource};
