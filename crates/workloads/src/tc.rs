//! Time-constrained traffic sources.

use rtr_channels::sender::ChannelSender;
use rtr_mesh::source::TrafficSource;
use rtr_types::chip::ChipIo;
use rtr_types::ids::NodeId;
use rtr_types::packet::Payload;
use rtr_types::time::{cycle_to_slot, slot_to_cycle, Cycle};

/// A connection with a *continual backlog* of traffic — the regime of the
/// paper's Figure 7 ("each connection has a continual backlog of traffic").
///
/// The source keeps the connection's logical arrival times a bounded lead
/// ahead of real time: it injects the next message whenever its logical
/// arrival would be within `lead_messages · I_min` slots of now. Because
/// guarantees are based on logical time, this saturates the connection's
/// reserved share without overflowing the reserved buffers.
#[derive(Debug)]
pub struct BackloggedTcSource {
    sender: ChannelSender,
    i_min: u32,
    lead_messages: u32,
    slot_bytes: usize,
    chunks: Vec<Payload>,
    injected: u64,
}

impl BackloggedTcSource {
    /// Creates a backlogged source over an established channel's sender.
    ///
    /// `lead_messages` bounds how far logical time may run ahead of real
    /// time (2–4 is plenty to keep the scheduler busy).
    #[must_use]
    pub fn new(
        sender: ChannelSender,
        i_min: u32,
        lead_messages: u32,
        slot_bytes: usize,
        payload: Vec<u8>,
    ) -> Self {
        // Chunk and pad the message body once; every injected packet then
        // shares the same reference-counted payloads.
        let chunks = sender.prepare_payload(&payload);
        BackloggedTcSource {
            sender,
            i_min,
            lead_messages: lead_messages.max(1),
            slot_bytes,
            chunks,
            injected: 0,
        }
    }

    /// Messages injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl TrafficSource for BackloggedTcSource {
    fn pre_cycle(&mut self, now: Cycle, _node: NodeId, io: &mut ChipIo) {
        let t = cycle_to_slot(now, self.slot_bytes);
        let lead = u64::from(self.lead_messages) * u64::from(self.i_min);
        loop {
            let next_l0 = match self.sender.last_logical_arrival() {
                Some(l) => l + u64::from(self.i_min),
                None => t,
            };
            if next_l0 > t + lead {
                break;
            }
            for p in self.sender.make_message_shared(now, &self.chunks) {
                io.inject_tc.push_back(p);
            }
            self.injected += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The next message fires when real time reaches slot
        // `next ℓ0 − lead`; until then the source is silent.
        let t = cycle_to_slot(now, self.slot_bytes);
        let lead = u64::from(self.lead_messages) * u64::from(self.i_min);
        let fire_slot = self.sender.peek_next_arrival(t).saturating_sub(lead);
        Some(slot_to_cycle(fire_slot, self.slot_bytes).max(now + 1))
    }
}

/// A strictly periodic sender: one message every `period_slots`, starting at
/// `phase_slots`.
#[derive(Debug)]
pub struct PeriodicTcSource {
    sender: ChannelSender,
    period_slots: u64,
    phase_slots: u64,
    slot_bytes: usize,
    chunks: Vec<Payload>,
    sent: u64,
    limit: Option<u64>,
}

impl PeriodicTcSource {
    /// Creates a periodic source.
    ///
    /// # Panics
    ///
    /// Panics if `period_slots` is zero.
    #[must_use]
    pub fn new(
        sender: ChannelSender,
        period_slots: u64,
        phase_slots: u64,
        slot_bytes: usize,
        payload: Vec<u8>,
    ) -> Self {
        assert!(period_slots > 0, "period must be positive");
        let chunks = sender.prepare_payload(&payload);
        PeriodicTcSource {
            sender,
            period_slots,
            phase_slots,
            slot_bytes,
            chunks,
            sent: 0,
            limit: None,
        }
    }

    /// Stops after `limit` messages.
    #[must_use]
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Messages sent so far.
    #[must_use]
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

impl TrafficSource for PeriodicTcSource {
    fn pre_cycle(&mut self, now: Cycle, _node: NodeId, io: &mut ChipIo) {
        if self.limit.is_some_and(|l| self.sent >= l) {
            return;
        }
        let t = cycle_to_slot(now, self.slot_bytes);
        // Fire on the first cycle of each due slot.
        let due = self.phase_slots + self.sent * self.period_slots;
        if t >= due && now.is_multiple_of(self.slot_bytes as u64) {
            for p in self.sender.make_message_shared(now, &self.chunks) {
                io.inject_tc.push_back(p);
            }
            self.sent += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if self.limit.is_some_and(|l| self.sent >= l) {
            return None;
        }
        let due = self.phase_slots + self.sent * self.period_slots;
        Some(next_slot_fire(due, now, self.slot_bytes))
    }
}

/// A bursty (but contract-conforming) sender: every `burst_period_slots` it
/// generates `burst_size` messages back to back.
///
/// The logical arrival times still advance by `I_min` per message (§2), so
/// the burst is legal whenever `burst_size ≤ B_max + 1` and the long-run
/// rate stays within the contract. Deadline-driven links absorb such bursts
/// without hurting other connections; FIFO links do not — which is what the
/// baseline-comparison experiment demonstrates.
#[derive(Debug)]
pub struct BurstyTcSource {
    sender: ChannelSender,
    burst_size: u32,
    burst_period_slots: u64,
    slot_bytes: usize,
    chunks: Vec<Payload>,
    bursts: u64,
}

impl BurstyTcSource {
    /// Creates a bursty source.
    ///
    /// # Panics
    ///
    /// Panics if the burst size or period is zero.
    #[must_use]
    pub fn new(
        sender: ChannelSender,
        burst_size: u32,
        burst_period_slots: u64,
        slot_bytes: usize,
        payload: Vec<u8>,
    ) -> Self {
        assert!(burst_size > 0 && burst_period_slots > 0, "burst parameters must be positive");
        let chunks = sender.prepare_payload(&payload);
        BurstyTcSource { sender, burst_size, burst_period_slots, slot_bytes, chunks, bursts: 0 }
    }

    /// Bursts emitted so far.
    #[must_use]
    pub fn bursts(&self) -> u64 {
        self.bursts
    }
}

impl TrafficSource for BurstyTcSource {
    fn pre_cycle(&mut self, now: Cycle, _node: NodeId, io: &mut ChipIo) {
        let t = cycle_to_slot(now, self.slot_bytes);
        if t >= self.bursts * self.burst_period_slots && now.is_multiple_of(self.slot_bytes as u64)
        {
            for _ in 0..self.burst_size {
                for p in self.sender.make_message_shared(now, &self.chunks) {
                    io.inject_tc.push_back(p);
                }
            }
            self.bursts += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let due = self.bursts * self.burst_period_slots;
        Some(next_slot_fire(due, now, self.slot_bytes))
    }
}

/// First cycle strictly after `now` at which a slot-aligned source whose
/// next message is due in slot `due` will fire: the start of slot `due`, or
/// the next slot boundary if that is already past.
fn next_slot_fire(due: u64, now: Cycle, slot_bytes: usize) -> Cycle {
    let due_cycle = slot_to_cycle(due, slot_bytes);
    if due_cycle > now {
        due_cycle
    } else {
        (now / slot_bytes as u64 + 1) * slot_bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_channels::establish::{EstablishedChannel, Hop};
    use rtr_channels::spec::{ChannelRequest, TrafficSpec};
    use rtr_types::clock::SlotClock;
    use rtr_types::ids::{ConnectionId, Port};

    fn channel(i_min: u32) -> EstablishedChannel {
        EstablishedChannel {
            id: 0,
            ingress: ConnectionId(1),
            depth: 1,
            guaranteed: 4,
            hops: vec![Hop {
                node: NodeId(0),
                conn: ConnectionId(1),
                out_conn: ConnectionId(1),
                delay: 4,
                out_mask: Port::Local.mask(),
                buffers: 1,
            }],
            request: ChannelRequest::unicast(
                NodeId(0),
                NodeId(0),
                TrafficSpec::periodic(i_min, 18),
                4,
            ),
        }
    }

    fn sender(i_min: u32) -> ChannelSender {
        ChannelSender::new(&channel(i_min), SlotClock::new(8), 20, 18)
    }

    #[test]
    fn backlogged_source_keeps_bounded_lead() {
        let mut src = BackloggedTcSource::new(sender(8), 8, 2, 20, vec![0; 18]);
        let mut io = ChipIo::new();
        src.pre_cycle(0, NodeId(0), &mut io);
        // Lead = 16 slots → ℓ0 ∈ {0, 8, 16}: three messages immediately.
        assert_eq!(io.inject_tc.len(), 3);
        // No more until real time catches up.
        src.pre_cycle(19, NodeId(0), &mut io);
        assert_eq!(io.inject_tc.len(), 3);
        // At slot 8 (cycle 160), ℓ0 = 24 comes within the lead.
        src.pre_cycle(160, NodeId(0), &mut io);
        assert_eq!(io.inject_tc.len(), 4);
        assert_eq!(src.injected(), 4);
    }

    #[test]
    fn backlogged_arrivals_are_spaced_i_min() {
        let mut src = BackloggedTcSource::new(sender(16), 16, 3, 20, vec![0; 18]);
        let mut io = ChipIo::new();
        for now in 0..2000 {
            src.pre_cycle(now, NodeId(0), &mut io);
        }
        let ls: Vec<u64> = io.inject_tc.iter().map(|p| p.trace.logical_arrival).collect();
        for w in ls.windows(2) {
            assert_eq!(w[1] - w[0], 16);
        }
    }

    #[test]
    fn periodic_source_fires_on_schedule() {
        let mut src = PeriodicTcSource::new(sender(4), 5, 2, 20, vec![0; 18]).with_limit(3);
        let mut io = ChipIo::new();
        let mut fire_cycles = Vec::new();
        for now in 0..1000 {
            let before = io.inject_tc.len();
            src.pre_cycle(now, NodeId(0), &mut io);
            if io.inject_tc.len() > before {
                fire_cycles.push(now);
            }
        }
        // Slots 2, 7, 12 → cycles 40, 140, 240; limit stops the rest.
        assert_eq!(fire_cycles, vec![40, 140, 240]);
        assert_eq!(src.sent(), 3);
    }

    #[test]
    fn bursty_source_dumps_batches_with_spaced_logical_arrivals() {
        let mut src = BurstyTcSource::new(sender(8), 4, 48, 20, vec![0; 18]);
        let mut io = ChipIo::new();
        src.pre_cycle(0, NodeId(0), &mut io);
        assert_eq!(io.inject_tc.len(), 4, "whole burst at once");
        let ls: Vec<u64> = io.inject_tc.iter().map(|p| p.trace.logical_arrival).collect();
        assert_eq!(ls, vec![0, 8, 16, 24], "logical arrivals stay I_min apart");
        // Nothing more until the next burst period (slot 48 = cycle 960).
        for now in 1..960 {
            src.pre_cycle(now, NodeId(0), &mut io);
        }
        assert_eq!(io.inject_tc.len(), 4);
        src.pre_cycle(960, NodeId(0), &mut io);
        assert_eq!(io.inject_tc.len(), 8);
        assert_eq!(src.bursts(), 2);
    }
}
