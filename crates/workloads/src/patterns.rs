//! Spatial traffic patterns for destination selection.

use rand::rngs::StdRng;
use rand::Rng;
use rtr_mesh::topology::Topology;
use rtr_types::ids::NodeId;

/// How a source picks destinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficPattern {
    /// Uniformly random among all other nodes.
    Uniform,
    /// The transpose permutation: `(x, y) → (y, x)` (self-addressed nodes
    /// fall back to uniform).
    Transpose,
    /// Everyone sends to one hot node (the hot node falls back to uniform).
    Hotspot(NodeId),
    /// The +x neighbour (wrapping to column 0 at the edge, same row).
    NearestNeighbor,
    /// The bit-complement permutation: `(x, y) → (W−1−x, H−1−y)` — every
    /// packet crosses the mesh centre, the classic bisection stressor
    /// (self-addressed nodes fall back to uniform).
    BitComplement,
}

impl TrafficPattern {
    /// Picks a destination for `src` (never `src` itself).
    ///
    /// # Panics
    ///
    /// Panics on a single-node topology, where no other node exists.
    pub fn pick(&self, rng: &mut StdRng, topo: &Topology, src: NodeId) -> NodeId {
        assert!(topo.len() > 1, "patterns need at least two nodes");
        match self {
            TrafficPattern::Uniform => uniform(rng, topo, src),
            TrafficPattern::Transpose => {
                let (x, y) = topo.coords(src);
                if x < topo.height() && y < topo.width() {
                    let dst = topo.node_at(y.min(topo.width() - 1), x.min(topo.height() - 1));
                    if dst != src {
                        return dst;
                    }
                }
                uniform(rng, topo, src)
            }
            TrafficPattern::Hotspot(hot) => {
                if *hot != src {
                    *hot
                } else {
                    uniform(rng, topo, src)
                }
            }
            TrafficPattern::NearestNeighbor => {
                let (x, y) = topo.coords(src);
                let nx = (x + 1) % topo.width();
                let dst = topo.node_at(nx, y);
                if dst != src {
                    dst
                } else {
                    uniform(rng, topo, src)
                }
            }
            TrafficPattern::BitComplement => {
                let (x, y) = topo.coords(src);
                let dst = topo.node_at(topo.width() - 1 - x, topo.height() - 1 - y);
                if dst != src {
                    dst
                } else {
                    uniform(rng, topo, src)
                }
            }
        }
    }
}

fn uniform(rng: &mut StdRng, topo: &Topology, src: NodeId) -> NodeId {
    loop {
        let dst = NodeId(rng.gen_range(0..topo.len() as u16));
        if dst != src {
            return dst;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_picks_self() {
        let topo = Topology::mesh(3, 3);
        let mut r = rng();
        for _ in 0..200 {
            assert_ne!(TrafficPattern::Uniform.pick(&mut r, &topo, NodeId(4)), NodeId(4));
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let topo = Topology::mesh(4, 4);
        let mut r = rng();
        let src = topo.node_at(1, 3);
        assert_eq!(TrafficPattern::Transpose.pick(&mut r, &topo, src), topo.node_at(3, 1));
        // Diagonal nodes fall back to some other node.
        let diag = topo.node_at(2, 2);
        assert_ne!(TrafficPattern::Transpose.pick(&mut r, &topo, diag), diag);
    }

    #[test]
    fn hotspot_targets_hot_node() {
        let topo = Topology::mesh(3, 3);
        let mut r = rng();
        let hot = topo.node_at(1, 1);
        assert_eq!(TrafficPattern::Hotspot(hot).pick(&mut r, &topo, NodeId(0)), hot);
        assert_ne!(TrafficPattern::Hotspot(hot).pick(&mut r, &topo, hot), hot);
    }

    #[test]
    fn bit_complement_mirrors_through_the_centre() {
        let topo = Topology::mesh(4, 4);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::BitComplement.pick(&mut r, &topo, topo.node_at(0, 0)),
            topo.node_at(3, 3)
        );
        assert_eq!(
            TrafficPattern::BitComplement.pick(&mut r, &topo, topo.node_at(1, 2)),
            topo.node_at(2, 1)
        );
        // The odd-mesh centre falls back to some other node.
        let topo = Topology::mesh(3, 3);
        let centre = topo.node_at(1, 1);
        assert_ne!(TrafficPattern::BitComplement.pick(&mut r, &topo, centre), centre);
    }

    #[test]
    fn nearest_neighbor_wraps_row() {
        let topo = Topology::mesh(3, 2);
        let mut r = rng();
        assert_eq!(
            TrafficPattern::NearestNeighbor.pick(&mut r, &topo, topo.node_at(0, 1)),
            topo.node_at(1, 1)
        );
        assert_eq!(
            TrafficPattern::NearestNeighbor.pick(&mut r, &topo, topo.node_at(2, 0)),
            topo.node_at(0, 0)
        );
    }
}
