//! Best-effort traffic sources.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_mesh::source::TrafficSource;
use rtr_mesh::topology::Topology;
use rtr_types::chip::ChipIo;
use rtr_types::ids::NodeId;
use rtr_types::packet::{BePacket, PacketTrace, Payload};
use rtr_types::time::Cycle;

use crate::patterns::TrafficPattern;

/// A source that keeps a constant backlog of best-effort packets to one
/// destination — the "best-effort consumes any excess bandwidth" load of
/// Figure 7.
#[derive(Debug)]
pub struct BackloggedBeSource {
    destination: NodeId,
    offsets: (i8, i8),
    payload: Payload,
    queue_depth: usize,
    sequence: u64,
}

impl BackloggedBeSource {
    /// Creates a source sending `packet_bytes`-payload packets from `src`
    /// to `dst`, keeping `queue_depth` packets queued for injection.
    #[must_use]
    pub fn new(
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        packet_bytes: usize,
        queue_depth: usize,
    ) -> Self {
        BackloggedBeSource {
            destination: dst,
            offsets: topo.be_offsets(src, dst),
            // One shared payload for the whole run: injection clones the
            // reference count, never the bytes.
            payload: vec![0xBE; packet_bytes].into(),
            queue_depth: queue_depth.max(1),
            sequence: 0,
        }
    }

    /// Packets injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.sequence
    }
}

impl TrafficSource for BackloggedBeSource {
    fn pre_cycle(&mut self, now: Cycle, node: NodeId, io: &mut ChipIo) {
        while io.inject_be.len() < self.queue_depth {
            let trace = PacketTrace {
                source: node,
                destination: self.destination,
                sequence: self.sequence,
                injected_at: now,
                ..PacketTrace::default()
            };
            io.inject_be.push_back(BePacket::new(
                self.offsets.0,
                self.offsets.1,
                self.payload.clone(),
                trace,
            ));
            self.sequence += 1;
        }
    }
}

/// Payload-size distribution for random sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeDist {
    /// Every packet has the same payload size.
    Fixed(usize),
    /// Uniformly random payload size in `[lo, hi]`.
    Uniform(usize, usize),
}

impl SizeDist {
    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            SizeDist::Fixed(n) => n,
            SizeDist::Uniform(lo, hi) => rng.gen_range(lo..=hi),
        }
    }
}

/// A seeded Bernoulli source: each cycle, with probability `rate`, queue one
/// packet to a pattern-chosen destination.
///
/// `rate × mean_packet_bytes` is the offered load in bytes per cycle (link
/// bandwidth is 1 byte per cycle).
#[derive(Debug)]
pub struct RandomBeSource {
    topo: Topology,
    pattern: TrafficPattern,
    rate: f64,
    size: SizeDist,
    /// Shared payload for `SizeDist::Fixed` sources; variable-size sources
    /// must allocate per packet.
    template: Option<Payload>,
    max_queue: usize,
    rng: StdRng,
    sequence: u64,
}

impl RandomBeSource {
    /// Creates a seeded random source.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not within `[0, 1]`.
    #[must_use]
    pub fn new(
        topo: Topology,
        pattern: TrafficPattern,
        rate: f64,
        size: SizeDist,
        seed: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        let template = match size {
            SizeDist::Fixed(n) => Some(vec![0xDA; n].into()),
            SizeDist::Uniform(..) => None,
        };
        RandomBeSource {
            topo,
            pattern,
            rate,
            size,
            template,
            max_queue: 64,
            rng: StdRng::seed_from_u64(seed),
            sequence: 0,
        }
    }

    /// Caps the injection queue (back-pressure on the generator).
    #[must_use]
    pub fn with_max_queue(mut self, max_queue: usize) -> Self {
        self.max_queue = max_queue.max(1);
        self
    }

    /// Packets generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.sequence
    }
}

impl TrafficSource for RandomBeSource {
    fn pre_cycle(&mut self, now: Cycle, node: NodeId, io: &mut ChipIo) {
        if io.inject_be.len() >= self.max_queue || !self.rng.gen_bool(self.rate) {
            return;
        }
        let dst = self.pattern.pick(&mut self.rng, &self.topo, node);
        let (x, y) = self.topo.be_offsets(node, dst);
        let payload = match &self.template {
            Some(p) => p.clone(),
            None => vec![0xDA; self.size.sample(&mut self.rng)].into(),
        };
        let trace = PacketTrace {
            source: node,
            destination: dst,
            sequence: self.sequence,
            injected_at: now,
            ..PacketTrace::default()
        };
        io.inject_be.push_back(BePacket::new(x, y, payload, trace));
        self.sequence += 1;
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // A Bernoulli source draws its RNG every cycle, so skipping cycles
        // would desynchronise the random stream — unless the rate is zero,
        // in which case every draw rejects and the skipped draws are
        // unobservable.
        (self.rate > 0.0).then_some(now + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backlogged_source_tops_up_queue() {
        let topo = Topology::mesh(2, 1);
        let mut src = BackloggedBeSource::new(&topo, NodeId(0), NodeId(1), 32, 2);
        let mut io = ChipIo::new();
        src.pre_cycle(0, NodeId(0), &mut io);
        assert_eq!(io.inject_be.len(), 2);
        io.inject_be.pop_front();
        src.pre_cycle(1, NodeId(0), &mut io);
        assert_eq!(io.inject_be.len(), 2);
        assert_eq!(src.injected(), 3);
        assert_eq!(io.inject_be[0].header.x_off, 1);
    }

    #[test]
    fn random_source_rate_is_roughly_honoured() {
        let topo = Topology::mesh(4, 4);
        let mut src =
            RandomBeSource::new(topo, TrafficPattern::Uniform, 0.25, SizeDist::Fixed(16), 42)
                .with_max_queue(100_000);
        let mut io = ChipIo::new();
        for now in 0..10_000 {
            src.pre_cycle(now, NodeId(5), &mut io);
        }
        let n = io.inject_be.len() as f64;
        assert!((n - 2500.0).abs() < 200.0, "generated {n} packets at rate 0.25");
    }

    #[test]
    fn random_source_respects_queue_cap() {
        let topo = Topology::mesh(2, 2);
        let mut src =
            RandomBeSource::new(topo, TrafficPattern::Uniform, 1.0, SizeDist::Uniform(1, 8), 1)
                .with_max_queue(5);
        let mut io = ChipIo::new();
        for now in 0..100 {
            src.pre_cycle(now, NodeId(0), &mut io);
        }
        assert_eq!(io.inject_be.len(), 5);
    }

    #[test]
    fn random_source_is_deterministic_per_seed() {
        let topo = Topology::mesh(3, 3);
        let run = |seed| {
            let mut src = RandomBeSource::new(
                topo.clone(),
                TrafficPattern::Uniform,
                0.5,
                SizeDist::Uniform(4, 64),
                seed,
            );
            let mut io = ChipIo::new();
            for now in 0..200 {
                src.pre_cycle(now, NodeId(0), &mut io);
            }
            io.inject_be.iter().map(|p| (p.trace.destination, p.payload.len())).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
