//! Trace capture and replay: record an injection schedule once, replay it
//! byte-for-byte against any router design — how the baseline comparisons
//! keep their offered load identical across designs.

use rtr_mesh::source::TrafficSource;
use rtr_types::chip::ChipIo;
use rtr_types::ids::NodeId;
use rtr_types::packet::{BePacket, TcPacket};
use rtr_types::time::Cycle;

/// One recorded injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A time-constrained packet queued at the given cycle.
    Tc(Cycle, TcPacket),
    /// A best-effort packet queued at the given cycle.
    Be(Cycle, BePacket),
}

impl TraceEvent {
    /// The injection cycle.
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        match self {
            TraceEvent::Tc(c, _) | TraceEvent::Be(c, _) => *c,
        }
    }
}

/// A recorded injection schedule for one node.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InjectionTrace {
    events: Vec<TraceEvent>,
}

impl InjectionTrace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        InjectionTrace::default()
    }

    /// Records a time-constrained injection.
    pub fn record_tc(&mut self, cycle: Cycle, packet: TcPacket) {
        self.push(TraceEvent::Tc(cycle, packet));
    }

    /// Records a best-effort injection.
    pub fn record_be(&mut self, cycle: Cycle, packet: BePacket) {
        self.push(TraceEvent::Be(cycle, packet));
    }

    fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.cycle() <= event.cycle()),
            "trace events must be recorded in cycle order"
        );
        self.events.push(event);
    }

    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in cycle order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Wraps the trace in a replaying [`TrafficSource`].
    #[must_use]
    pub fn into_source(self) -> ReplaySource {
        ReplaySource { trace: self, next: 0 }
    }
}

/// Replays a recorded injection schedule exactly.
#[derive(Debug)]
pub struct ReplaySource {
    trace: InjectionTrace,
    next: usize,
}

impl ReplaySource {
    /// Events not yet replayed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.next
    }
}

impl TrafficSource for ReplaySource {
    fn pre_cycle(&mut self, now: Cycle, _node: NodeId, io: &mut ChipIo) {
        while let Some(event) = self.trace.events.get(self.next) {
            if event.cycle() > now {
                break;
            }
            match event {
                TraceEvent::Tc(_, p) => io.inject_tc.push_back(p.clone()),
                TraceEvent::Be(_, p) => io.inject_be.push_back(p.clone()),
            }
            self.next += 1;
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The schedule is known exactly: the next unplayed event's cycle,
        // or nothing once the trace is exhausted.
        self.trace.events.get(self.next).map(|event| event.cycle().max(now + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_types::packet::PacketTrace;

    fn be(seq: u64) -> BePacket {
        BePacket::new(1, 0, vec![seq as u8], PacketTrace { sequence: seq, ..Default::default() })
    }

    #[test]
    fn replay_fires_at_recorded_cycles() {
        let mut trace = InjectionTrace::new();
        trace.record_be(5, be(0));
        trace.record_be(5, be(1));
        trace.record_be(40, be(2));
        let mut source = trace.into_source();
        let mut io = ChipIo::new();
        for now in 0..4 {
            source.pre_cycle(now, NodeId(0), &mut io);
        }
        assert!(io.inject_be.is_empty());
        source.pre_cycle(5, NodeId(0), &mut io);
        assert_eq!(io.inject_be.len(), 2, "both cycle-5 events fire together");
        source.pre_cycle(100, NodeId(0), &mut io);
        assert_eq!(io.inject_be.len(), 3, "late replay catches up");
        assert_eq!(source.remaining(), 0);
    }

    #[test]
    fn replaying_twice_gives_identical_queues() {
        let mut trace = InjectionTrace::new();
        for k in 0..10 {
            trace.record_be(k * 3, be(k));
        }
        let replay = |trace: InjectionTrace| {
            let mut source = trace.into_source();
            let mut io = ChipIo::new();
            for now in 0..100 {
                source.pre_cycle(now, NodeId(0), &mut io);
            }
            io.inject_be.into_iter().map(|p| p.trace.sequence).collect::<Vec<_>>()
        };
        assert_eq!(replay(trace.clone()), replay(trace));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cycle order")]
    fn out_of_order_recording_is_rejected() {
        let mut trace = InjectionTrace::new();
        trace.record_be(10, be(0));
        trace.record_be(3, be(1));
    }
}
