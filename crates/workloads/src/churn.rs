//! Connection-churn workloads: seeded Poisson arrivals of short-lived
//! channels.
//!
//! The live control plane (`rtr_channels::control_plane`) needs a traffic
//! model where channels come and go while the mesh runs. This module
//! provides the *schedule* half: a deterministic, seed-reproducible list of
//! [`ChurnEvent`]s — establishment times drawn from a Poisson process
//! (exponential inter-arrivals), lifetimes drawn from a shifted exponential
//! — plus [`WindowedSource`], an adaptor that confines any inner
//! [`TrafficSource`] to its channel's `[start, stop)` lifetime so the
//! driver can pre-register sources for connections that do not exist yet.
//!
//! The schedule is generated up front from the seed alone (no simulation
//! feedback), which is what makes four drive modes byte-identical: every
//! mode sees the same establishment requests at the same cycles.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rtr_mesh::source::TrafficSource;
use rtr_mesh::topology::Topology;
use rtr_types::chip::ChipIo;
use rtr_types::ids::NodeId;
use rtr_types::time::Cycle;

/// Parameters of a Poisson churn schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// RNG seed; the whole schedule is a pure function of it.
    pub seed: u64,
    /// Establishment attempts to generate.
    pub arrivals: usize,
    /// Mean inter-arrival gap between establishment attempts, in slots
    /// (the Poisson process rate is its reciprocal).
    pub mean_interarrival_slots: f64,
    /// Mean channel lifetime in slots (exponential, shifted by the
    /// minimum).
    pub mean_lifetime_slots: f64,
    /// Floor on lifetimes, in slots — a channel always lives long enough
    /// to carry at least one message.
    pub min_lifetime_slots: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            seed: 0xC0DE,
            arrivals: 64,
            mean_interarrival_slots: 32.0,
            mean_lifetime_slots: 256.0,
            min_lifetime_slots: 64,
        }
    }
}

/// One scheduled short-lived connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// Slot at which the establishment request is issued.
    pub start_slot: u64,
    /// Slots between establishment and the teardown request.
    pub lifetime_slots: u64,
    /// Source node.
    pub src: NodeId,
    /// Destination node (always distinct from `src`).
    pub dst: NodeId,
}

impl ChurnEvent {
    /// Slot at which the teardown request is issued.
    #[must_use]
    pub fn stop_slot(&self) -> u64 {
        self.start_slot + self.lifetime_slots
    }
}

/// Draws one exponential variate with the given mean (slots), via
/// inversion from the generator's 53-bit uniform.
fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    // u ∈ [0, 1); ln(1 − u) is finite because 1 − u > 0.
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    -mean * (1.0 - u).ln()
}

/// Generates the deterministic churn schedule for a mesh: `arrivals`
/// establishment attempts at Poisson times, each with an exponential
/// lifetime and a uniformly random distinct source/destination pair.
///
/// Events are returned sorted by `start_slot`.
///
/// # Panics
///
/// Panics if the topology has fewer than two nodes (no distinct pair
/// exists) or a mean parameter is not positive.
#[must_use]
pub fn churn_schedule(config: &ChurnConfig, topo: &Topology) -> Vec<ChurnEvent> {
    let nodes = u64::from(topo.width()) * u64::from(topo.height());
    assert!(nodes >= 2, "churn needs at least two nodes");
    assert!(
        config.mean_interarrival_slots > 0.0 && config.mean_lifetime_slots > 0.0,
        "mean parameters must be positive"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut at = 0.0_f64;
    let mut events = Vec::with_capacity(config.arrivals);
    for _ in 0..config.arrivals {
        at += exponential(&mut rng, config.mean_interarrival_slots);
        let lifetime =
            config.min_lifetime_slots + exponential(&mut rng, config.mean_lifetime_slots) as u64;
        let src = NodeId(rng.gen_range(0..nodes as u16));
        let dst = loop {
            let d = NodeId(rng.gen_range(0..nodes as u16));
            if d != src {
                break d;
            }
        };
        events.push(ChurnEvent { start_slot: at as u64, lifetime_slots: lifetime, src, dst });
    }
    events
}

/// Confines an inner source to a `[start, stop)` cycle window.
///
/// Outside the window the source is silent and (after `stop`) exhausted,
/// so the simulator's leaping modes can skip it entirely; before `start`
/// its next event is the window opening. The driver uses this to register
/// a churned channel's sender at build time while the channel itself is
/// only established mid-run.
#[derive(Debug)]
pub struct WindowedSource<S> {
    inner: S,
    start: Cycle,
    stop: Cycle,
}

impl<S> WindowedSource<S> {
    /// Wraps `inner`, active on cycles `start..stop`.
    #[must_use]
    pub fn new(inner: S, start: Cycle, stop: Cycle) -> Self {
        WindowedSource { inner, start, stop: stop.max(start) }
    }

    /// The wrapped source.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: TrafficSource> TrafficSource for WindowedSource<S> {
    fn pre_cycle(&mut self, now: Cycle, node: NodeId, io: &mut ChipIo) {
        if now >= self.start && now < self.stop {
            self.inner.pre_cycle(now, node, io);
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        if now >= self.stop.saturating_sub(1) {
            return None;
        }
        if now < self.start {
            return Some(self.start.max(now + 1));
        }
        // Inside the window: the inner source's own event, capped at the
        // window close (an exhausted inner source stays silent until then).
        let close = self.stop.saturating_sub(1).max(now + 1);
        Some(self.inner.next_event(now).map_or(close, |e| e.min(close)))
    }

    fn counters(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        self.inner.counters(emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_mesh::source::FnSource;

    #[test]
    fn schedule_is_deterministic_and_sorted() {
        let topo = Topology::mesh(4, 4);
        let config = ChurnConfig { seed: 42, arrivals: 50, ..ChurnConfig::default() };
        let a = churn_schedule(&config, &topo);
        let b = churn_schedule(&config, &topo);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 50);
        for w in a.windows(2) {
            assert!(w[0].start_slot <= w[1].start_slot, "sorted by start");
        }
        for e in &a {
            assert_ne!(e.src, e.dst);
            assert!(e.lifetime_slots >= config.min_lifetime_slots);
        }
        let c = churn_schedule(&ChurnConfig { seed: 43, ..config }, &topo);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn schedule_tracks_the_configured_rates() {
        let topo = Topology::mesh(8, 8);
        let config = ChurnConfig {
            seed: 7,
            arrivals: 2000,
            mean_interarrival_slots: 20.0,
            mean_lifetime_slots: 100.0,
            min_lifetime_slots: 10,
        };
        let events = churn_schedule(&config, &topo);
        let span = events.last().unwrap().start_slot as f64;
        let mean_gap = span / events.len() as f64;
        assert!((15.0..25.0).contains(&mean_gap), "mean inter-arrival {mean_gap}");
        let mean_life =
            events.iter().map(|e| e.lifetime_slots as f64).sum::<f64>() / events.len() as f64;
        assert!((90.0..130.0).contains(&mean_life), "mean lifetime {mean_life}");
    }

    #[test]
    fn windowed_source_fires_only_inside_its_window() {
        let mut fired = Vec::new();
        let probe = FnSource(|now: Cycle, _n: NodeId, _io: &mut ChipIo| {
            fired.push(now);
        });
        {
            let mut src = WindowedSource::new(probe, 10, 20);
            let mut io = ChipIo::new();
            for now in 0..30 {
                src.pre_cycle(now, NodeId(0), &mut io);
            }
        }
        assert_eq!(fired, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn windowed_next_event_respects_the_window() {
        let probe = FnSource(|_: Cycle, _: NodeId, _: &mut ChipIo| {});
        let src = WindowedSource::new(probe, 100, 200);
        // Before the window: wake exactly at the opening.
        assert_eq!(src.next_event(0), Some(100));
        // Inside: the inner default (now + 1), capped at the close.
        assert_eq!(src.next_event(150), Some(151));
        assert_eq!(src.next_event(198), Some(199), "cycle 199 is the last active one");
        assert_eq!(src.next_event(199), None, "nothing after the last active cycle");
        // After: exhausted.
        assert_eq!(src.next_event(500), None);
    }
}
