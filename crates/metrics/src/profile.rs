//! The phase profiler: wall-clock attribution per simulator drive phase.
//!
//! The simulator brackets each phase of its cycle loop with
//! [`PhaseProfiler::start`]/[`PhaseProfiler::stop`]; phases are placed so
//! they never nest, making accumulated time per phase *self* time. The
//! profiler is off by default even when compiled in (`Instant::now` twice
//! per phase is real cost); [`PhaseProfiler::set_enabled`] turns it on for
//! attribution runs, and a disabled `start` is a single predictable branch.
//!
//! Without the `metrics` feature the profiler is a zero-sized no-op.

/// One phase of the simulator's drive loop.
///
/// The enum is compiled regardless of the feature so call sites never need
/// gates. Variants map to the phases named in the bench reports:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Serial pre-tick work: source injection, link delivery into `rx`.
    LinkPre,
    /// The serial chip-tick loop.
    SerialTick,
    /// Parallel stepping: publishing the cycle's job to the persistent
    /// worker pool (epoch bump + unparks).
    PoolHandoff,
    /// Parallel stepping: the calling thread's own chunk of chip ticks.
    PoolLocalTick,
    /// Parallel stepping: waiting for the pool workers to drain their
    /// chunks (the per-cycle barrier).
    PoolWait,
    /// Serial post-tick work: collecting `tx`, credits, delivery drain.
    LinkPost,
    /// Calendar-queue pop (including wheel cascades) and due-list marking.
    WheelPop,
    /// Re-polling dirty components' `next_event` after a tick.
    Repoll,
    /// Leap planning: quiescence scans / `next_wake` horizon checks.
    LeapPlan,
    /// Applying a leap: synthesising gauge samples, `skip_quiet` patching.
    LeapApply,
}

impl Phase {
    /// Every phase, in report order.
    pub const ALL: [Phase; 10] = [
        Phase::LinkPre,
        Phase::SerialTick,
        Phase::PoolHandoff,
        Phase::PoolLocalTick,
        Phase::PoolWait,
        Phase::LinkPost,
        Phase::WheelPop,
        Phase::Repoll,
        Phase::LeapPlan,
        Phase::LeapApply,
    ];

    /// Stable snake_case name used in metric names and JSON columns.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::LinkPre => "link_pre",
            Phase::SerialTick => "serial_tick",
            Phase::PoolHandoff => "pool_handoff",
            Phase::PoolLocalTick => "pool_local_tick",
            Phase::PoolWait => "pool_wait",
            Phase::LinkPost => "link_post",
            Phase::WheelPop => "wheel_pop",
            Phase::Repoll => "repoll",
            Phase::LeapPlan => "leap_plan",
            Phase::LeapApply => "leap_apply",
        }
    }

    #[cfg(feature = "metrics")]
    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated self-time of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseLine {
    /// Which phase.
    pub phase: Phase,
    /// Total self-time in nanoseconds.
    pub ns: u64,
    /// Number of start/stop brackets recorded.
    pub calls: u64,
}

#[cfg(feature = "metrics")]
mod enabled {
    use std::cell::Cell;
    use std::time::Instant;

    use super::{Phase, PhaseLine};

    /// An in-flight phase measurement (`None` when profiling is off).
    #[derive(Debug)]
    pub struct PhaseToken(Option<Instant>);

    /// Wall-clock accumulator per [`Phase`]. See the module docs.
    #[derive(Debug, Default)]
    pub struct PhaseProfiler {
        enabled: Cell<bool>,
        ns: [Cell<u64>; Phase::ALL.len()],
        calls: [Cell<u64>; Phase::ALL.len()],
    }

    impl PhaseProfiler {
        /// A fresh profiler, disabled until [`PhaseProfiler::set_enabled`].
        #[must_use]
        pub fn new() -> Self {
            PhaseProfiler::default()
        }

        /// Turns measurement on or off.
        pub fn set_enabled(&self, on: bool) {
            self.enabled.set(on);
        }

        /// Whether measurement is on.
        #[must_use]
        pub fn enabled(&self) -> bool {
            self.enabled.get()
        }

        /// Opens a measurement bracket (cheap no-op token when disabled).
        #[inline]
        #[must_use]
        pub fn start(&self) -> PhaseToken {
            PhaseToken(self.enabled.get().then(Instant::now))
        }

        /// Closes a bracket, attributing the elapsed time to `phase`.
        #[inline]
        pub fn stop(&self, phase: Phase, token: PhaseToken) {
            if let Some(t0) = token.0 {
                let i = phase.index();
                let ns = &self.ns[i];
                ns.set(ns.get() + t0.elapsed().as_nanos() as u64);
                let calls = &self.calls[i];
                calls.set(calls.get() + 1);
            }
        }

        /// Closes a bracket for `phase` and immediately opens the next one,
        /// for back-to-back phases (one `Instant::now` instead of two).
        #[inline]
        #[must_use]
        pub fn lap(&self, phase: Phase, token: PhaseToken) -> PhaseToken {
            if let Some(t0) = token.0 {
                let now = Instant::now();
                let i = phase.index();
                let ns = &self.ns[i];
                ns.set(ns.get() + (now - t0).as_nanos() as u64);
                let calls = &self.calls[i];
                calls.set(calls.get() + 1);
                PhaseToken(Some(now))
            } else {
                PhaseToken(None)
            }
        }

        /// Accumulated self-time per phase, report order, zero rows kept.
        #[must_use]
        pub fn report(&self) -> Vec<PhaseLine> {
            Phase::ALL
                .iter()
                .map(|&phase| PhaseLine {
                    phase,
                    ns: self.ns[phase.index()].get(),
                    calls: self.calls[phase.index()].get(),
                })
                .collect()
        }

        /// The phase with the most self-time and its share of the total,
        /// `None` when nothing was recorded.
        #[must_use]
        pub fn dominant(&self) -> Option<(Phase, f64)> {
            let report = self.report();
            let total: u64 = report.iter().map(|l| l.ns).sum();
            if total == 0 {
                return None;
            }
            let top = report.iter().max_by_key(|l| l.ns)?;
            Some((top.phase, top.ns as f64 / total as f64))
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod disabled {
    use super::{Phase, PhaseLine};

    /// Inert measurement token.
    #[derive(Debug, Default)]
    pub struct PhaseToken;

    /// Zero-sized stand-in for the profiler; every method is a no-op.
    #[derive(Debug, Default)]
    pub struct PhaseProfiler;

    impl PhaseProfiler {
        /// A fresh (inert) profiler.
        #[must_use]
        pub fn new() -> Self {
            PhaseProfiler
        }

        /// No-op.
        pub fn set_enabled(&self, _on: bool) {}

        /// Always false.
        #[must_use]
        pub fn enabled(&self) -> bool {
            false
        }

        /// No-op.
        #[inline]
        #[must_use]
        pub fn start(&self) -> PhaseToken {
            PhaseToken
        }

        /// No-op.
        #[inline]
        pub fn stop(&self, _phase: Phase, _token: PhaseToken) {}

        /// No-op.
        #[inline]
        #[must_use]
        pub fn lap(&self, _phase: Phase, _token: PhaseToken) -> PhaseToken {
            PhaseToken
        }

        /// Always empty.
        #[must_use]
        pub fn report(&self) -> Vec<PhaseLine> {
            Vec::new()
        }

        /// Always `None`.
        #[must_use]
        pub fn dominant(&self) -> Option<(Phase, f64)> {
            None
        }
    }
}

#[cfg(feature = "metrics")]
pub use enabled::{PhaseProfiler, PhaseToken};

#[cfg(not(feature = "metrics"))]
pub use disabled::{PhaseProfiler, PhaseToken};

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = PhaseProfiler::new();
        let t = prof.start();
        prof.stop(Phase::SerialTick, t);
        assert!(prof.report().iter().all(|l| l.ns == 0 && l.calls == 0));
        assert!(prof.dominant().is_none());
    }

    #[test]
    fn enabled_profiler_attributes_time() {
        let prof = PhaseProfiler::new();
        prof.set_enabled(true);
        let t = prof.start();
        std::hint::black_box((0..10_000).sum::<u64>());
        let t = prof.lap(Phase::SerialTick, t);
        prof.stop(Phase::LinkPost, t);
        let report = prof.report();
        let tick = report.iter().find(|l| l.phase == Phase::SerialTick).unwrap();
        assert_eq!(tick.calls, 1);
        let (dom, share) = prof.dominant().unwrap();
        assert!(matches!(dom, Phase::SerialTick | Phase::LinkPost));
        assert!(share > 0.0 && share <= 1.0);
    }
}
