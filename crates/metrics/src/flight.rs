//! The flight recorder: a bounded ring of recent simulator events, dumped
//! with a metrics snapshot when something goes wrong.
//!
//! The recorder answers the question equivalence-suite failures used to
//! leave open: *what was the network doing just before the invariant
//! broke?* The simulator records cheap fixed-size events (deliveries,
//! leaps, injections) into the ring; on a conservation-ledger violation, a
//! missed deadline, or a panic (via [`FlightGuard`]), the last-N events and
//! a full [`MetricsSnapshot`] are written as flat JSONL for post-mortem
//! reading (`trace_dump` summarises these files).
//!
//! The recorder is `Arc`-shared and `Send`, so guards can outlive the
//! borrow of the simulator that armed them. Only the *first* dump wins;
//! later triggers are ignored so the dump reflects the original failure.
//!
//! Without the `metrics` feature every type here is a zero-sized no-op.

/// One recorded event: a fixed-size, allocation-free record.
///
/// `a`/`b` are kind-specific operands (connection id, leap bounds, …);
/// the JSONL form spells the kind in `"ev"` so dumps read without a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Cycle the event happened at.
    pub cycle: u64,
    /// Static event kind tag, e.g. `"deliver_tc"`, `"leap"`.
    pub kind: &'static str,
    /// Node involved (0 for network-wide events).
    pub node: u32,
    /// First operand (kind-specific).
    pub a: u64,
    /// Second operand (kind-specific).
    pub b: u64,
}

impl FlightEvent {
    /// Renders the event as one flat JSONL line (with trailing newline).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"cycle\": {}, \"node\": {}, \"ev\": \"{}\", \"a\": {}, \"b\": {}}}\n",
            self.cycle, self.node, self.kind, self.a, self.b
        )
    }
}

#[cfg(feature = "metrics")]
mod enabled {
    use std::collections::VecDeque;
    use std::io::Write as _;
    use std::path::PathBuf;
    use std::sync::{Arc, Mutex};

    use super::FlightEvent;
    use crate::snapshot::MetricsSnapshot;

    #[derive(Debug)]
    struct Inner {
        cap: usize,
        ring: VecDeque<FlightEvent>,
        dropped: u64,
        dump_path: Option<PathBuf>,
        dumped: Option<String>,
        pending: Option<&'static str>,
    }

    /// The flight recorder. See the module docs.
    #[derive(Debug, Clone)]
    pub struct FlightRecorder {
        inner: Arc<Mutex<Inner>>,
    }

    impl FlightRecorder {
        /// A recorder keeping the most recent `cap` events.
        #[must_use]
        pub fn new(cap: usize) -> Self {
            FlightRecorder {
                inner: Arc::new(Mutex::new(Inner {
                    cap: cap.max(1),
                    ring: VecDeque::new(),
                    dropped: 0,
                    dump_path: None,
                    dumped: None,
                    pending: None,
                })),
            }
        }

        /// Sets where dumps are written. Without a path, dumps are skipped.
        pub fn set_dump_path(&self, path: PathBuf) {
            self.inner.lock().unwrap().dump_path = Some(path);
        }

        /// Appends an event, evicting the oldest past capacity.
        pub fn record(&self, event: FlightEvent) {
            let mut inner = self.inner.lock().unwrap();
            if inner.ring.len() == inner.cap {
                inner.ring.pop_front();
                inner.dropped += 1;
            }
            inner.ring.push_back(event);
        }

        /// Events currently held.
        #[must_use]
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap().ring.len()
        }

        /// Whether the ring is empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Flags a failure noticed deep in the drive loop; the simulator
        /// collects it at the end of the step (where a snapshot can be
        /// taken) and calls [`FlightRecorder::dump`]. First flag wins.
        pub fn trigger(&self, reason: &'static str) {
            let mut inner = self.inner.lock().unwrap();
            if inner.pending.is_none() {
                inner.pending = Some(reason);
            }
        }

        /// Takes the pending trigger, if any.
        pub fn take_trigger(&self) -> Option<&'static str> {
            self.inner.lock().unwrap().pending.take()
        }

        /// The reason of the dump already written, if any.
        #[must_use]
        pub fn dumped(&self) -> Option<String> {
            self.inner.lock().unwrap().dumped.clone()
        }

        /// Writes the dump: a header line, the ring's events oldest-first,
        /// then the metrics snapshot. Returns the path written, `None` when
        /// no dump path is set or a dump was already written.
        ///
        /// # Panics
        ///
        /// On I/O errors — a failing dump during a post-mortem must be
        /// loud, not silent.
        pub fn dump(&self, reason: &str, snapshot: &MetricsSnapshot) -> Option<PathBuf> {
            let mut inner = self.inner.lock().unwrap();
            if inner.dumped.is_some() {
                return None;
            }
            let path = inner.dump_path.clone()?;
            let last_cycle = inner.ring.back().map_or(0, |e| e.cycle);
            let mut text = format!(
                "{{\"flight\": \"dump\", \"reason\": \"{}\", \"cycle\": {}, \
                 \"events\": {}, \"dropped\": {}}}\n",
                reason,
                last_cycle,
                inner.ring.len(),
                inner.dropped
            );
            for event in &inner.ring {
                text.push_str(&event.to_jsonl());
            }
            text.push_str(&snapshot.to_jsonl(last_cycle));
            let mut file = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("flight recorder: create {}: {e}", path.display()));
            file.write_all(text.as_bytes())
                .unwrap_or_else(|e| panic!("flight recorder: write {}: {e}", path.display()));
            inner.dumped = Some(reason.to_string());
            Some(path)
        }

        /// Arms a panic guard: if the current thread unwinds while the
        /// guard is alive, the recorder dumps with reason `"panic"` and the
        /// snapshot captured at arm time.
        #[must_use]
        pub fn panic_guard(&self, snapshot: MetricsSnapshot) -> FlightGuard {
            FlightGuard { recorder: self.clone(), snapshot }
        }
    }

    /// Dump-on-panic guard returned by [`FlightRecorder::panic_guard`].
    #[derive(Debug)]
    pub struct FlightGuard {
        recorder: FlightRecorder,
        snapshot: MetricsSnapshot,
    }

    impl FlightGuard {
        /// Refreshes the snapshot that a panic dump would include.
        pub fn update_snapshot(&mut self, snapshot: MetricsSnapshot) {
            self.snapshot = snapshot;
        }
    }

    impl Drop for FlightGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.recorder.dump("panic", &self.snapshot);
            }
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod disabled {
    use std::path::PathBuf;

    use super::FlightEvent;
    use crate::snapshot::MetricsSnapshot;

    /// Zero-sized stand-in for the recorder; every method is a no-op.
    #[derive(Debug, Clone, Default)]
    pub struct FlightRecorder;

    impl FlightRecorder {
        /// A fresh (inert) recorder.
        #[must_use]
        pub fn new(_cap: usize) -> Self {
            FlightRecorder
        }

        /// No-op.
        pub fn set_dump_path(&self, _path: PathBuf) {}

        /// No-op.
        pub fn record(&self, _event: FlightEvent) {}

        /// Always zero.
        #[must_use]
        pub fn len(&self) -> usize {
            0
        }

        /// Always true.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            true
        }

        /// No-op.
        pub fn trigger(&self, _reason: &'static str) {}

        /// Always `None`.
        pub fn take_trigger(&self) -> Option<&'static str> {
            None
        }

        /// Always `None`.
        #[must_use]
        pub fn dumped(&self) -> Option<String> {
            None
        }

        /// Never writes; always `None`.
        pub fn dump(&self, _reason: &str, _snapshot: &MetricsSnapshot) -> Option<PathBuf> {
            None
        }

        /// Returns an inert guard.
        #[must_use]
        pub fn panic_guard(&self, _snapshot: MetricsSnapshot) -> FlightGuard {
            FlightGuard
        }
    }

    /// Inert dump-on-panic guard.
    #[derive(Debug, Default)]
    pub struct FlightGuard;
}

#[cfg(feature = "metrics")]
pub use enabled::{FlightGuard, FlightRecorder};

#[cfg(not(feature = "metrics"))]
pub use disabled::{FlightGuard, FlightRecorder};

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::snapshot::{MetricLine, MetricsSnapshot};

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("rtr_flight_{tag}_{}.jsonl", std::process::id()))
    }

    fn event(cycle: u64) -> FlightEvent {
        FlightEvent { cycle, kind: "deliver_tc", node: 3, a: 7, b: 0 }
    }

    #[test]
    fn ring_evicts_oldest_and_dump_holds_last_n() {
        let rec = FlightRecorder::new(4);
        for cycle in 0..10 {
            rec.record(event(cycle));
        }
        assert_eq!(rec.len(), 4);
        let reg = MetricsRegistry::new();
        reg.absorb_counter("router.tc_arrived", 10);
        let path = temp_path("ring");
        rec.set_dump_path(path.clone());
        let written = rec.dump("conservation", &reg.snapshot()).unwrap();
        let text = std::fs::read_to_string(&written).unwrap();
        std::fs::remove_file(&written).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"reason\": \"conservation\""));
        assert!(lines[0].contains("\"events\": 4"));
        assert!(lines[0].contains("\"dropped\": 6"));
        assert!(lines[1].contains("\"cycle\": 6"), "oldest surviving event first");
        let metric = lines.iter().find_map(|l| MetricLine::parse(l)).unwrap();
        assert_eq!(metric.name, "router.tc_arrived");
        // A second trigger must not clobber the original post-mortem.
        assert!(rec.dump("later", &reg.snapshot()).is_none());
        assert_eq!(rec.dumped().as_deref(), Some("conservation"));
    }

    #[test]
    fn panic_guard_dumps_on_unwind() {
        let rec = FlightRecorder::new(8);
        rec.record(event(1));
        let path = temp_path("panic");
        rec.set_dump_path(path.clone());
        let rec2 = rec.clone();
        let result = std::panic::catch_unwind(move || {
            let _guard = rec2.panic_guard(MetricsSnapshot::empty());
            panic!("boom");
        });
        assert!(result.is_err());
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.lines().next().unwrap().contains("\"reason\": \"panic\""));
    }

    #[test]
    fn pending_trigger_is_first_wins() {
        let rec = FlightRecorder::new(2);
        rec.trigger("deadline_miss");
        rec.trigger("conservation");
        assert_eq!(rec.take_trigger(), Some("deadline_miss"));
        assert_eq!(rec.take_trigger(), None);
    }
}
