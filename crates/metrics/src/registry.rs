//! The metrics registry: named counters, gauges, and log₂ histograms.
//!
//! All storage is `Cell`-based so the hot path increments through `&self` —
//! the same interior-mutability discipline `rtr-core`'s `WakeTelemetry`
//! uses, generalised behind names. Registration returns copyable ids;
//! increments index straight into a flat `Cell` vector (no name lookup).
//! Snapshots iterate names in sorted order, so equivalent state always
//! renders byte-identically.
//!
//! Without the `metrics` feature every type here is a zero-sized no-op.

#[cfg(feature = "metrics")]
mod enabled {
    use std::cell::{Cell, RefCell};
    use std::collections::BTreeMap;

    use crate::snapshot::{HistogramSnapshot, MetricValue, MetricsSnapshot};

    /// Handle to a registered counter.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CounterId(u32);

    /// Handle to a registered gauge.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct GaugeId(u32);

    /// Handle to a registered histogram.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct HistogramId(u32);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Slot {
        Counter(u32),
        Gauge(u32),
        Histogram(u32),
    }

    /// One log₂-bucketed histogram; bucket `i` counts values `v` with
    /// `floor(log2(v)) == i` (value 0 shares bucket 0 with value 1).
    #[derive(Debug)]
    struct Log2Histogram {
        count: Cell<u64>,
        sum: Cell<u64>,
        min: Cell<u64>,
        max: Cell<u64>,
        buckets: [Cell<u64>; 64],
    }

    impl Default for Log2Histogram {
        fn default() -> Self {
            Log2Histogram {
                count: Cell::new(0),
                sum: Cell::new(0),
                min: Cell::new(0),
                max: Cell::new(0),
                buckets: std::array::from_fn(|_| Cell::new(0)),
            }
        }
    }

    impl Log2Histogram {
        fn record(&self, value: u64) {
            if self.count.get() == 0 || value < self.min.get() {
                self.min.set(value);
            }
            if value > self.max.get() {
                self.max.set(value);
            }
            self.count.set(self.count.get() + 1);
            self.sum.set(self.sum.get() + value);
            let bucket = if value == 0 { 0 } else { value.ilog2() as usize };
            self.buckets[bucket].set(self.buckets[bucket].get() + 1);
        }

        fn snapshot(&self) -> HistogramSnapshot {
            HistogramSnapshot {
                count: self.count.get(),
                sum: self.sum.get(),
                min: self.min.get(),
                max: self.max.get(),
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.get() > 0)
                    .map(|(b, c)| (b as u32, c.get()))
                    .collect(),
            }
        }
    }

    /// The unified registry. See the module docs.
    #[derive(Debug, Default)]
    pub struct MetricsRegistry {
        enabled: Cell<bool>,
        names: RefCell<BTreeMap<String, Slot>>,
        counters: RefCell<Vec<Cell<u64>>>,
        gauges: RefCell<Vec<Cell<i64>>>,
        histograms: RefCell<Vec<Log2Histogram>>,
    }

    impl MetricsRegistry {
        /// A fresh, enabled registry.
        #[must_use]
        pub fn new() -> Self {
            let reg = MetricsRegistry::default();
            reg.enabled.set(true);
            reg
        }

        /// Runtime switch: a disabled registry ignores `inc`/`set`/`observe`
        /// (one predictable branch each) and snapshots empty.
        pub fn set_enabled(&self, on: bool) {
            self.enabled.set(on);
        }

        /// Whether the registry is currently recording.
        #[must_use]
        pub fn enabled(&self) -> bool {
            self.enabled.get()
        }

        /// Registers (or finds) a counter by name.
        ///
        /// # Panics
        ///
        /// If `name` is already registered as a different metric kind.
        pub fn counter(&self, name: &str) -> CounterId {
            let mut names = self.names.borrow_mut();
            if let Some(slot) = names.get(name) {
                match slot {
                    Slot::Counter(i) => return CounterId(*i),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
            let mut counters = self.counters.borrow_mut();
            let id = counters.len() as u32;
            counters.push(Cell::new(0));
            names.insert(name.to_string(), Slot::Counter(id));
            CounterId(id)
        }

        /// Registers (or finds) a gauge by name.
        ///
        /// # Panics
        ///
        /// If `name` is already registered as a different metric kind.
        pub fn gauge(&self, name: &str) -> GaugeId {
            let mut names = self.names.borrow_mut();
            if let Some(slot) = names.get(name) {
                match slot {
                    Slot::Gauge(i) => return GaugeId(*i),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
            let mut gauges = self.gauges.borrow_mut();
            let id = gauges.len() as u32;
            gauges.push(Cell::new(0));
            names.insert(name.to_string(), Slot::Gauge(id));
            GaugeId(id)
        }

        /// Registers (or finds) a log₂ histogram by name.
        ///
        /// # Panics
        ///
        /// If `name` is already registered as a different metric kind.
        pub fn histogram(&self, name: &str) -> HistogramId {
            let mut names = self.names.borrow_mut();
            if let Some(slot) = names.get(name) {
                match slot {
                    Slot::Histogram(i) => return HistogramId(*i),
                    _ => panic!("metric {name:?} already registered with another kind"),
                }
            }
            let mut histograms = self.histograms.borrow_mut();
            let id = histograms.len() as u32;
            histograms.push(Log2Histogram::default());
            names.insert(name.to_string(), Slot::Histogram(id));
            HistogramId(id)
        }

        /// Adds `n` to a counter.
        #[inline]
        pub fn inc(&self, id: CounterId, n: u64) {
            if !self.enabled.get() {
                return;
            }
            let counters = self.counters.borrow();
            let cell = &counters[id.0 as usize];
            cell.set(cell.get() + n);
        }

        /// Overwrites a counter with an absorbed, authoritative total (how
        /// the simulator folds pre-existing stat structs into the registry).
        #[inline]
        pub fn set_counter(&self, id: CounterId, value: u64) {
            if !self.enabled.get() {
                return;
            }
            self.counters.borrow()[id.0 as usize].set(value);
        }

        /// Sets a gauge level.
        #[inline]
        pub fn set_gauge(&self, id: GaugeId, value: i64) {
            if !self.enabled.get() {
                return;
            }
            self.gauges.borrow()[id.0 as usize].set(value);
        }

        /// Records one histogram observation.
        #[inline]
        pub fn observe(&self, id: HistogramId, value: u64) {
            if !self.enabled.get() {
                return;
            }
            self.histograms.borrow()[id.0 as usize].record(value);
        }

        /// Absorbs a named counter total, registering the name on first use
        /// — the path for metrics whose source of truth lives elsewhere
        /// (router ledgers, queue stats, wake telemetry).
        pub fn absorb_counter(&self, name: &str, value: u64) {
            if !self.enabled.get() {
                return;
            }
            let id = self.counter(name);
            self.set_counter(id, value);
        }

        /// Freezes every registered metric, sorted by name.
        #[must_use]
        pub fn snapshot(&self) -> MetricsSnapshot {
            if !self.enabled.get() {
                return MetricsSnapshot::empty();
            }
            let names = self.names.borrow();
            let counters = self.counters.borrow();
            let gauges = self.gauges.borrow();
            let histograms = self.histograms.borrow();
            let entries = names
                .iter()
                .map(|(name, slot)| {
                    let value = match slot {
                        Slot::Counter(i) => MetricValue::Counter(counters[*i as usize].get()),
                        Slot::Gauge(i) => MetricValue::Gauge(gauges[*i as usize].get()),
                        Slot::Histogram(i) => {
                            MetricValue::Histogram(histograms[*i as usize].snapshot())
                        }
                    };
                    (name.clone(), value)
                })
                .collect();
            MetricsSnapshot { entries }
        }
    }
}

#[cfg(not(feature = "metrics"))]
mod disabled {
    use crate::snapshot::MetricsSnapshot;

    /// Handle to a registered counter (inert without the `metrics` feature).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct CounterId;

    /// Handle to a registered gauge (inert without the `metrics` feature).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct GaugeId;

    /// Handle to a registered histogram (inert without the `metrics`
    /// feature).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub struct HistogramId;

    /// Zero-sized stand-in for the registry; every method is a no-op.
    #[derive(Debug, Default)]
    pub struct MetricsRegistry;

    impl MetricsRegistry {
        /// A fresh (inert) registry.
        #[must_use]
        pub fn new() -> Self {
            MetricsRegistry
        }

        /// No-op.
        pub fn set_enabled(&self, _on: bool) {}

        /// Always false: nothing records.
        #[must_use]
        pub fn enabled(&self) -> bool {
            false
        }

        /// Returns an inert handle.
        pub fn counter(&self, _name: &str) -> CounterId {
            CounterId
        }

        /// Returns an inert handle.
        pub fn gauge(&self, _name: &str) -> GaugeId {
            GaugeId
        }

        /// Returns an inert handle.
        pub fn histogram(&self, _name: &str) -> HistogramId {
            HistogramId
        }

        /// No-op.
        #[inline]
        pub fn inc(&self, _id: CounterId, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn set_counter(&self, _id: CounterId, _value: u64) {}

        /// No-op.
        #[inline]
        pub fn set_gauge(&self, _id: GaugeId, _value: i64) {}

        /// No-op.
        #[inline]
        pub fn observe(&self, _id: HistogramId, _value: u64) {}

        /// No-op.
        pub fn absorb_counter(&self, _name: &str, _value: u64) {}

        /// Always empty.
        #[must_use]
        pub fn snapshot(&self) -> MetricsSnapshot {
            MetricsSnapshot::empty()
        }
    }
}

#[cfg(feature = "metrics")]
pub use enabled::{CounterId, GaugeId, HistogramId, MetricsRegistry};

#[cfg(not(feature = "metrics"))]
pub use disabled::{CounterId, GaugeId, HistogramId, MetricsRegistry};

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;
    use crate::snapshot::MetricValue;

    #[test]
    fn counters_and_gauges_snapshot_sorted() {
        let reg = MetricsRegistry::new();
        let b = reg.counter("b.total");
        let a = reg.counter("a.total");
        let g = reg.gauge("m.level");
        reg.inc(b, 2);
        reg.inc(a, 1);
        reg.set_gauge(g, -7);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.total", "b.total", "m.level"]);
        assert_eq!(snap.counter("b.total"), Some(2));
        assert_eq!(snap.get("m.level"), Some(&MetricValue::Gauge(-7)));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("leap.cycles");
        for v in [0, 1, 2, 3, 1024] {
            reg.observe(h, v);
        }
        let snap = reg.snapshot();
        let MetricValue::Histogram(hist) = snap.get("leap.cycles").unwrap() else {
            panic!("expected histogram");
        };
        assert_eq!(hist.count, 5);
        assert_eq!(hist.sum, 1030);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 1024);
        assert_eq!(hist.buckets, vec![(0, 2), (1, 2), (10, 1)]);
    }

    #[test]
    fn disabled_at_runtime_drops_updates() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        reg.inc(c, 1);
        reg.set_enabled(false);
        reg.inc(c, 100);
        assert!(reg.snapshot().is_empty());
        reg.set_enabled(true);
        assert_eq!(reg.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn re_registration_returns_same_id() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        assert_eq!(a, b);
        reg.inc(a, 1);
        reg.inc(b, 1);
        assert_eq!(reg.snapshot().counter("same"), Some(2));
    }

    #[test]
    fn absorb_counter_overwrites() {
        let reg = MetricsRegistry::new();
        reg.absorb_counter("router.tc_arrived", 5);
        reg.absorb_counter("router.tc_arrived", 9);
        assert_eq!(reg.snapshot().counter("router.tc_arrived"), Some(9));
    }
}
