//! Unified observability for the real-time router reproduction: a metrics
//! registry, a simulator phase profiler, and a crash-dump flight recorder.
//!
//! Everything here is built around one discipline: **observability must not
//! tax the datapath it observes**. The crate compiles to two shapes:
//!
//! - With the `metrics` feature, [`MetricsRegistry`], [`PhaseProfiler`], and
//!   [`FlightRecorder`] are real: `Cell`-based counters/gauges/log₂
//!   histograms with deterministic snapshot order, wall-clock attribution
//!   per simulator phase, and a bounded ring of recent events dumped as
//!   JSONL on conservation failures, deadline misses, or panics.
//! - Without it (the default), every one of those types is a zero-sized
//!   struct whose methods are empty `#[inline]` bodies, so hot structs that
//!   embed them grow by zero bytes and call sites compile to nothing — the
//!   same contract as `rtr-core`'s `trace` feature.
//!
//! [`MetricsSnapshot`] (and its JSONL rendering) is compiled in both shapes
//! so export surfaces and parsers never need feature gates; a disabled
//! registry simply snapshots to an empty set.

pub mod flight;
pub mod profile;
pub mod registry;
pub mod snapshot;

pub use flight::{FlightEvent, FlightGuard, FlightRecorder};
pub use profile::{Phase, PhaseProfiler, PhaseToken};
pub use registry::{CounterId, GaugeId, HistogramId, MetricsRegistry};
pub use snapshot::{HistogramSnapshot, MetricLine, MetricValue, MetricsSnapshot};

#[cfg(test)]
mod size_tests {
    //! The overhead guardrail: the disabled path must be size-zero so the
    //! simulator and routers can embed these types unconditionally.
    #![allow(unused_imports)]
    use super::*;

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_types_are_zero_sized() {
        assert_eq!(std::mem::size_of::<MetricsRegistry>(), 0);
        assert_eq!(std::mem::size_of::<PhaseProfiler>(), 0);
        assert_eq!(std::mem::size_of::<FlightRecorder>(), 0);
        assert_eq!(std::mem::size_of::<CounterId>(), 0);
        assert_eq!(std::mem::size_of::<GaugeId>(), 0);
        assert_eq!(std::mem::size_of::<HistogramId>(), 0);
        assert_eq!(std::mem::size_of::<PhaseToken>(), 0);
    }

    #[cfg(not(feature = "metrics"))]
    #[test]
    fn disabled_registry_snapshots_empty() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sim.ticks");
        reg.inc(c, 5);
        assert!(reg.snapshot().is_empty());
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn enabled_registry_is_live() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("sim.ticks");
        reg.inc(c, 5);
        assert_eq!(reg.snapshot().counter("sim.ticks"), Some(5));
    }
}
