//! Point-in-time metric snapshots and their JSONL wire form.
//!
//! Snapshots are plain data, compiled with or without the `metrics` feature,
//! so export surfaces (`bench_runner` columns, `network_console` streams,
//! `trace_dump` summaries) and their parsers never carry feature gates. A
//! disabled registry just produces an empty snapshot.
//!
//! Like the rest of the repository (vendored `serde` is a stub), the wire
//! form is hand-rolled flat JSON: one object per line, string values free of
//! escapes, histogram buckets packed into a `"b:count"` list string so every
//! line stays flat.

use std::fmt::Write as _;

/// The value of one named metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Log₂-bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// A frozen log₂ histogram: counts per power-of-two bucket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Occupied buckets as `(floor(log2(value)), count)`, ascending; value 0
    /// lands in bucket 0.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An ordered set of named metric values, frozen at one instant.
///
/// Entries are sorted by name, so two snapshots of equivalent state render
/// byte-identically — the property the stepped-vs-leaping equivalence test
/// leans on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn empty() -> Self {
        MetricsSnapshot::default()
    }

    /// Number of metrics captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was captured (always true with metrics disabled).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a metric by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Convenience: the value of a counter metric, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The subset of metrics whose name starts with `prefix`, e.g.
    /// `"router."` for the drive-mode-independent datapath ledger.
    #[must_use]
    pub fn filter_prefix(&self, prefix: &str) -> MetricsSnapshot {
        MetricsSnapshot {
            entries: self.entries.iter().filter(|(n, _)| n.starts_with(prefix)).cloned().collect(),
        }
    }

    /// The change since `earlier`: counters and histogram counts subtract
    /// (saturating), gauges keep this snapshot's level. Metrics absent from
    /// `earlier` pass through unchanged.
    #[must_use]
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let v = match (value, earlier.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        let mut d = now.clone();
                        d.count = d.count.saturating_sub(then.count);
                        d.sum = d.sum.saturating_sub(then.sum);
                        for (bucket, count) in &mut d.buckets {
                            if let Some((_, c0)) = then.buckets.iter().find(|(b0, _)| b0 == bucket)
                            {
                                *count = count.saturating_sub(*c0);
                            }
                        }
                        d.buckets.retain(|(_, c)| *c > 0);
                        MetricValue::Histogram(d)
                    }
                    (v, _) => v.clone(),
                };
                (name.clone(), v)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Renders the snapshot as JSONL, one flat object per metric, each
    /// stamped with `cycle`. Ends with a trailing newline unless empty.
    #[must_use]
    pub fn to_jsonl(&self, cycle: u64) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            render_line(&mut out, cycle, name, value);
        }
        out
    }

    /// Renders counters and gauges as one flat JSON object, histograms
    /// flattened to `name.count`/`name.sum`/`name.max` members — the shape
    /// `bench_runner` embeds next to its timing columns.
    #[must_use]
    pub fn render_object(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |out: &mut String, name: &str, v: String| {
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "\"{name}\": {v}");
        };
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => field(&mut out, name, v.to_string()),
                MetricValue::Gauge(v) => field(&mut out, name, v.to_string()),
                MetricValue::Histogram(h) => {
                    field(&mut out, &format!("{name}.count"), h.count.to_string());
                    field(&mut out, &format!("{name}.sum"), h.sum.to_string());
                    field(&mut out, &format!("{name}.max"), h.max.to_string());
                }
            }
        }
        out.push('}');
        out
    }
}

fn render_line(out: &mut String, cycle: u64, name: &str, value: &MetricValue) {
    match value {
        MetricValue::Counter(v) => {
            let _ = writeln!(
                out,
                "{{\"cycle\": {cycle}, \"metric\": \"{name}\", \"type\": \"counter\", \"value\": {v}}}"
            );
        }
        MetricValue::Gauge(v) => {
            let _ = writeln!(
                out,
                "{{\"cycle\": {cycle}, \"metric\": \"{name}\", \"type\": \"gauge\", \"value\": {v}}}"
            );
        }
        MetricValue::Histogram(h) => {
            let buckets =
                h.buckets.iter().map(|(b, c)| format!("{b}:{c}")).collect::<Vec<_>>().join(" ");
            let _ = writeln!(
                out,
                "{{\"cycle\": {cycle}, \"metric\": \"{name}\", \"type\": \"histogram\", \
                 \"count\": {count}, \"sum\": {sum}, \"min\": {min}, \"max\": {max}, \
                 \"buckets\": \"{buckets}\"}}",
                count = h.count,
                sum = h.sum,
                min = h.min,
                max = h.max,
            );
        }
    }
}

/// One parsed metric line from a JSONL stream (see
/// [`MetricsSnapshot::to_jsonl`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricLine {
    /// The cycle the snapshot was taken at.
    pub cycle: u64,
    /// Metric name.
    pub name: String,
    /// Parsed value.
    pub value: MetricValue,
}

impl MetricLine {
    /// Parses one JSONL metric line; `None` if the line is not a metric
    /// line (callers interleave these with trace records and skip the rest).
    #[must_use]
    pub fn parse(line: &str) -> Option<MetricLine> {
        let fields = parse_flat(line)?;
        let find = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        let name = match find("metric")? {
            Flat::Str(s) => s,
            _ => return None,
        };
        let cycle = match find("cycle")? {
            Flat::Int(v) => v as u64,
            _ => return None,
        };
        let kind = match find("type")? {
            Flat::Str(s) => s,
            _ => return None,
        };
        let int = |key: &str| match find(key) {
            Some(Flat::Int(v)) => Some(v),
            _ => None,
        };
        let value = match kind.as_str() {
            "counter" => MetricValue::Counter(int("value")? as u64),
            "gauge" => MetricValue::Gauge(int("value")?),
            "histogram" => {
                let buckets = match find("buckets") {
                    Some(Flat::Str(s)) if !s.is_empty() => s
                        .split(' ')
                        .filter_map(|pair| {
                            let (b, c) = pair.split_once(':')?;
                            Some((b.parse().ok()?, c.parse().ok()?))
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                MetricValue::Histogram(HistogramSnapshot {
                    count: int("count")? as u64,
                    sum: int("sum")? as u64,
                    min: int("min")? as u64,
                    max: int("max")? as u64,
                    buckets,
                })
            }
            _ => return None,
        };
        Some(MetricLine { cycle, name, value })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Flat {
    Int(i64),
    Str(String),
}

/// Minimal flat-JSON object parser: integer and escape-free string members
/// only, which is exactly what this crate emits. Returns `None` on anything
/// else rather than erroring — callers treat non-metric lines as foreign.
fn parse_flat(line: &str) -> Option<Vec<(String, Flat)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let (key, after) = rest.split_once('"')?;
        rest = after.trim_start().strip_prefix(':')?.trim_start();
        let value;
        if let Some(after) = rest.strip_prefix('"') {
            let (s, after) = after.split_once('"')?;
            if s.contains('\\') {
                return None;
            }
            value = Flat::Str(s.to_string());
            rest = after;
        } else {
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            value = Flat::Int(rest[..end].trim().parse().ok()?);
            rest = &rest[end..];
        }
        fields.push((key.to_string(), value));
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else {
            break;
        }
    }
    Some(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        MetricsSnapshot {
            entries: vec![
                ("a.count".into(), MetricValue::Counter(7)),
                ("b.level".into(), MetricValue::Gauge(-3)),
                (
                    "c.hist".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum: 70,
                        min: 2,
                        max: 64,
                        buckets: vec![(1, 2), (6, 1)],
                    }),
                ),
            ],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let snap = sample();
        let text = snap.to_jsonl(42);
        let parsed: Vec<MetricLine> = text.lines().filter_map(MetricLine::parse).collect();
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed[0].cycle, 42);
        for (line, (name, value)) in parsed.iter().zip(&snap.entries) {
            assert_eq!(&line.name, name);
            assert_eq!(&line.value, value);
        }
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let early = MetricsSnapshot {
            entries: vec![
                ("a.count".into(), MetricValue::Counter(2)),
                ("b.level".into(), MetricValue::Gauge(9)),
            ],
        };
        let d = sample().delta(&early);
        assert_eq!(d.counter("a.count"), Some(5));
        assert_eq!(d.get("b.level"), Some(&MetricValue::Gauge(-3)));
    }

    #[test]
    fn filter_prefix_selects_namespace() {
        let snap = sample();
        let only_a = snap.filter_prefix("a.");
        assert_eq!(only_a.len(), 1);
        assert_eq!(only_a.counter("a.count"), Some(7));
    }

    #[test]
    fn foreign_lines_parse_to_none() {
        assert!(MetricLine::parse("{\"cycle\": 3, \"node\": 1, \"tag\": \"tc_arrive\"}").is_none());
        assert!(MetricLine::parse("not json").is_none());
    }

    #[test]
    fn render_object_flattens_histograms() {
        let obj = sample().render_object();
        assert!(obj.starts_with('{') && obj.ends_with('}'));
        assert!(obj.contains("\"c.hist.count\": 3"));
        assert!(obj.contains("\"a.count\": 7"));
    }
}
