//! Criterion bench: admission-control cost — the link demand test and
//! whole-channel establishment (protocol-software operations, §4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use rtr_channels::admission::{LinkBook, LinkReservation};
use rtr_channels::establish::{ChannelManager, ControlPlane};
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::{ControlCommand, ControlError};
use rtr_mesh::Topology;
use rtr_types::config::RouterConfig;
use rtr_types::ids::NodeId;

struct NullPlane;

impl ControlPlane for NullPlane {
    fn apply(&mut self, _node: NodeId, _cmd: ControlCommand) -> Result<(), ControlError> {
        Ok(())
    }
}

fn bench_demand_test(c: &mut Criterion) {
    let mut book = LinkBook::new();
    for i in 0..24u32 {
        book.reserve(LinkReservation { packets: 1, period: 32 + i, delay: 8 + i % 16 });
    }
    let candidate = LinkReservation { packets: 1, period: 64, delay: 16 };
    c.bench_function("link_demand_test_24_connections", |b| {
        b.iter(|| book.admissible(candidate, 2));
    });
}

fn bench_establish(c: &mut Criterion) {
    let topo = Topology::mesh(8, 8);
    let config = RouterConfig::default();
    c.bench_function("establish_teardown_cross_mesh_channel", |b| {
        let mut manager = ChannelManager::new(&config);
        let request = ChannelRequest::unicast(
            topo.node_at(0, 0),
            topo.node_at(7, 7),
            TrafficSpec::periodic(32, 18),
            120,
        );
        b.iter(|| {
            let ch = manager.establish(&topo, request.clone(), &mut NullPlane).expect("admissible");
            manager.teardown(ch.id, &mut NullPlane).unwrap();
        });
    });
}

criterion_group!(benches, bench_demand_test, bench_establish);
criterion_main!(benches);
