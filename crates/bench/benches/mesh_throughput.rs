//! Criterion bench: full-mesh simulation throughput under random
//! best-effort load.

use criterion::{criterion_group, criterion_main, Criterion};
use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_workloads::be::{RandomBeSource, SizeDist};
use rtr_workloads::patterns::TrafficPattern;

fn make_sim() -> Simulator<RealTimeRouter> {
    let topo = Topology::mesh(4, 4);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(RouterConfig::default())).unwrap();
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.2,
                    SizeDist::Uniform(8, 64),
                    u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
    sim
}

fn bench_mesh(c: &mut Criterion) {
    c.bench_function("mesh_4x4_1000_cycles_be_load", |b| {
        b.iter_batched(
            make_sim,
            |mut sim| {
                sim.run(1000);
                sim.now()
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_mesh);
criterion_main!(benches);
