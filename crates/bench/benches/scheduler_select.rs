//! Criterion bench: comparator-tree selection cost vs leaf count
//! (experiment X4 — the §5.1 scalability claim that the scheduler could
//! serve more packets or more ports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtr_core::memory::SlotAddr;
use rtr_core::sched::leaf::Leaf;
use rtr_core::sched::tree::ComparatorTree;
use rtr_types::clock::SlotClock;
use rtr_types::ids::{Direction, Port};
use rtr_types::key::LatePolicy;

fn populated_tree(leaves: usize, fill: usize) -> ComparatorTree {
    let clock = SlotClock::new(8);
    let mut tree = ComparatorTree::new(leaves, clock, LatePolicy::Saturate);
    for i in 0..fill {
        // Deterministic spread of arrival times and delays around t = 100.
        let l = 60 + (i * 7) % 90;
        let d = 4 + (i * 13) % 100;
        tree.insert(Leaf {
            l: clock.wrap(l as u64),
            delay: d as u32,
            port_mask: 1 << (i % 5),
            addr: SlotAddr(i as u16),
        })
        .unwrap();
    }
    tree
}

fn bench_select(c: &mut Criterion) {
    let clock = SlotClock::new(8);
    let t = clock.wrap(100);
    let mut group = c.benchmark_group("tree_select");
    for &leaves in &[64usize, 256, 1024] {
        let tree = populated_tree(leaves, leaves);
        group.bench_with_input(BenchmarkId::from_parameter(leaves), &tree, |b, tree| {
            b.iter(|| {
                let mut acc = 0usize;
                for port in Port::ALL {
                    if let Some(sel) = tree.select(port, t) {
                        acc += sel.leaf;
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_banded_select(c: &mut Criterion) {
    use rtr_core::sched::banded::BandedScheduler;
    let clock = SlotClock::new(8);
    let t = clock.wrap(100);
    let mut group = c.benchmark_group("banded_select");
    for &shift in &[1u32, 3, 5] {
        let mut sched = BandedScheduler::new(256, clock, LatePolicy::Saturate, shift);
        for i in 0..256usize {
            let l = 60 + (i * 7) % 90;
            let d = 4 + (i * 13) % 100;
            sched
                .insert(Leaf {
                    l: clock.wrap(l as u64),
                    delay: d as u32,
                    port_mask: 1 << (i % 5),
                    addr: SlotAddr(i as u16),
                })
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(shift), &sched, |b, sched| {
            b.iter(|| {
                let mut acc = 0usize;
                for port in Port::ALL {
                    if let Some(sel) = sched.select(port, t) {
                        acc += sel.leaf;
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

/// The §5.1 complexity claim, measured: once the incremental tournament is
/// warm for a slot time, a select is a root read whose cost must not move
/// with occupancy. Sweeps the number of live leaves at fixed capacity.
fn bench_select_occupancy(c: &mut Criterion) {
    let clock = SlotClock::new(8);
    let t = clock.wrap(100);
    let mut group = c.benchmark_group("tree_select_occupancy");
    for &fill in &[16usize, 64, 128, 256] {
        let tree = populated_tree(256, fill);
        let _ = tree.select(Port::Dir(Direction::XPlus), t); // warm the cache
        group.bench_with_input(BenchmarkId::from_parameter(fill), &tree, |b, tree| {
            b.iter(|| {
                let mut acc = 0usize;
                for port in Port::ALL {
                    if let Some(sel) = tree.select(port, t) {
                        acc += sel.leaf;
                    }
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_insert_commit(c: &mut Criterion) {
    let clock = SlotClock::new(8);
    c.bench_function("tree_insert_commit_cycle", |b| {
        let mut tree = ComparatorTree::new(256, clock, LatePolicy::Saturate);
        b.iter(|| {
            let idx = tree
                .insert(Leaf {
                    l: clock.wrap(100),
                    delay: 10,
                    port_mask: Port::Dir(Direction::XPlus).mask(),
                    addr: SlotAddr(0),
                })
                .unwrap();
            tree.commit(idx, Port::Dir(Direction::XPlus))
        });
    });
}

criterion_group!(
    benches,
    bench_select,
    bench_select_occupancy,
    bench_banded_select,
    bench_insert_commit
);
criterion_main!(benches);
