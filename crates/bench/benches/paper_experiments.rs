//! Criterion bench: timed runs of the paper-reproduction experiments
//! themselves (E1 and a shortened Figure 7), so regressions in simulator
//! performance show up alongside the functional results.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_exp1(c: &mut Criterion) {
    c.bench_function("exp1_wormhole_loopback_b64", |b| {
        b.iter(|| rtr_bench::exp1::run(&[64]));
    });
}

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("fig7_service_10k_cycles", |b| {
        b.iter(|| rtr_bench::fig7::run(0, 92, 10_000, 2_000));
    });
    group.finish();
}

fn bench_vct(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.bench_function("vct_ablation_3_hops", |b| {
        b.iter(|| rtr_bench::vct::run(&[3], 20_000));
    });
    group.bench_function("sched_ablation_banded_shift3", |b| {
        b.iter(|| rtr_bench::sched_ablation::run(&[3], 20_000));
    });
    group.finish();
}

criterion_group!(benches, bench_exp1, bench_fig7, bench_vct);
criterion_main!(benches);
