//! Criterion bench: single-router simulation throughput under the
//! Figure 7 mixed-class load.

use criterion::{criterion_group, criterion_main, Criterion};
use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_types::chip::{Chip, ChipIo};
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, Port};
use rtr_types::packet::{BePacket, PacketTrace, TcPacket};

fn loaded_router() -> (RealTimeRouter, ChipIo) {
    let mut router = RealTimeRouter::new(RouterConfig::default()).unwrap();
    let out = Port::Dir(Direction::XPlus);
    for i in 1..=3u16 {
        router
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(i),
                outgoing: ConnectionId(i),
                delay: 4 * u32::from(i),
                out_mask: out.mask(),
            })
            .unwrap();
    }
    let mut io = ChipIo::new();
    for k in 0..64u64 {
        io.inject_tc.push_back(TcPacket {
            conn: ConnectionId((k % 3 + 1) as u16),
            arrival: router.clock().wrap(k),
            payload: vec![0; router.config().tc_data_bytes()].into(),
            trace: PacketTrace::default(),
        });
        io.inject_be.push_back(BePacket::new(1, 0, vec![0; 60], PacketTrace::default()));
    }
    (router, io)
}

fn bench_router_cycles(c: &mut Criterion) {
    c.bench_function("router_1000_cycles_mixed_load", |b| {
        b.iter_batched(
            loaded_router,
            |(mut router, mut io)| {
                for now in 0..1000u64 {
                    io.begin_cycle();
                    io.credit_in[1] = 1;
                    router.tick(now, &mut io);
                    io.tx = Default::default();
                    io.credit_out = [0; 5];
                }
                router.stats().tc_transmitted[1]
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_router_cycles);
criterion_main!(benches);
