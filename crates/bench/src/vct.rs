//! Extension experiment X7 (paper §7): virtual cut-through for
//! time-constrained traffic.
//!
//! "The router can improve link utilization and average latency by using
//! virtual cut-through switching for time-constrained traffic; this would
//! permit an arriving packet to proceed directly to its output link if no
//! other packets have smaller sorting keys."
//!
//! A lightly loaded periodic connection crosses chains of increasing
//! length with generous horizons; the ablation compares the fabricated
//! chip's store-and-forward behaviour against the cut-through extension.
//! Cut-through skips the packet's full reception, storage, and scheduling
//! waits at every hop, so the per-hop saving is roughly the packet length
//! plus the store/schedule latency — while guarantees are untouched.

use rtr_channels::establish::ChannelManager;
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::stats::LatencySummary;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::time::Cycle;
use rtr_workloads::tc::PeriodicTcSource;

/// One row of the ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VctRow {
    /// Network links crossed.
    pub hops: u16,
    /// Mean latency with the paper's store-and-forward, cycles.
    pub buffered_latency: f64,
    /// Mean latency with virtual cut-through, cycles.
    pub cut_latency: f64,
    /// Fraction of hop traversals that cut through.
    pub cut_fraction: f64,
    /// Deadline misses summed over both runs (must stay zero).
    pub misses: usize,
}

impl VctRow {
    /// Average cycles saved per hop by cut-through.
    #[must_use]
    pub fn saving_per_hop(&self) -> f64 {
        (self.buffered_latency - self.cut_latency) / f64::from(self.hops)
    }
}

fn run_chain(hops: u16, cut: bool, total_cycles: Cycle) -> (f64, f64, usize) {
    let config = RouterConfig { tc_cut_through: cut, ..RouterConfig::default() };
    let topo = Topology::mesh(hops + 1, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(hops, 0);
    let mut manager = ChannelManager::new(&config);
    manager.set_assumed_horizon(16);
    let i_min = 32;
    // Tight per-hop bounds (d = 3 slots) keep the packet near its logical
    // schedule at every hop, so downstream earliness stays within the
    // horizon — the regime where cut-through pays at every traversal.
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(i_min, 18),
                (u32::from(hops) + 1) * 3,
            ),
            &mut sim,
        )
        .expect("light load must be admissible");
    // Generous horizons let early packets proceed (the regime where
    // cut-through pays; guarantees rely on the reserved buffers either
    // way).
    for node in topo.nodes() {
        sim.chip_mut(node)
            .apply_control(ControlCommand::SetHorizon { port_mask: 0b1_1111, horizon: 16 })
            .unwrap();
    }
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    sim.add_source(
        src,
        Box::new(PeriodicTcSource::new(
            sender,
            u64::from(i_min),
            0,
            config.slot_bytes,
            vec![0xCC; config.tc_data_bytes()],
        )),
    );
    sim.run(total_cycles);
    let log = sim.log(dst);
    let mean = LatencySummary::of(&log.tc_latencies()).mean;
    let cut_events: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_cut_through).sum();
    let traversals: u64 =
        topo.nodes().map(|n| sim.chip(n).stats().tc_transmitted.iter().sum::<u64>()).sum();
    let fraction = if traversals == 0 { 0.0 } else { cut_events as f64 / traversals as f64 };
    (mean, fraction, log.tc_deadline_misses(config.slot_bytes))
}

/// Runs the ablation for each chain length.
#[must_use]
pub fn run(hop_counts: &[u16], total_cycles: Cycle) -> Vec<VctRow> {
    hop_counts
        .iter()
        .map(|&hops| {
            let (buffered_latency, _, m1) = run_chain(hops, false, total_cycles);
            let (cut_latency, cut_fraction, m2) = run_chain(hops, true, total_cycles);
            VctRow { hops, buffered_latency, cut_latency, cut_fraction, misses: m1 + m2 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_through_saves_latency_per_hop_without_misses() {
        let rows = run(&[1, 3], 40_000);
        for r in &rows {
            assert_eq!(r.misses, 0, "cut-through must not break guarantees");
            assert!(
                r.saving_per_hop() > 15.0,
                "expected ≥ 15 cycles saved per hop, got {} at {} hops",
                r.saving_per_hop(),
                r.hops
            );
            assert!(r.cut_fraction > 0.5, "most traversals cut: {}", r.cut_fraction);
        }
        // The saving compounds with route length.
        assert!(
            rows[1].buffered_latency - rows[1].cut_latency
                > rows[0].buffered_latency - rows[0].cut_latency
        );
    }
}
