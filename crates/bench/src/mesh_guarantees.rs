//! Extension experiment X3 (paper §7 future work): end-to-end guarantees
//! across a full mesh.
//!
//! A seeded batch of channel requests is offered to the admission
//! controller on a 4×4 mesh; admitted channels run periodic traffic under
//! uniform best-effort background load. The claim under test: **every
//! packet of every admitted channel arrives by its deadline**, with zero
//! sorting-key aliasing and buffer occupancy within reservations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_channels::establish::{ChannelManager, EstablishedChannel};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::NodeId;
use rtr_types::time::Cycle;
use rtr_workloads::be::{RandomBeSource, SizeDist};
use rtr_workloads::patterns::TrafficPattern;
use rtr_workloads::tc::PeriodicTcSource;

/// The experiment's outcome.
#[derive(Debug, Clone)]
pub struct GuaranteeResult {
    /// Channel requests offered.
    pub offered: usize,
    /// Channels admitted.
    pub admitted: usize,
    /// Time-constrained packets delivered across all destinations.
    pub delivered: usize,
    /// End-to-end deadline misses (the guarantee: zero).
    pub misses: usize,
    /// Minimum slack (slots) over all deliveries.
    pub min_slack: i64,
    /// Sorting keys aliased by rollover, summed over routers (should be 0).
    pub aliased_keys: u64,
    /// Peak packet-memory occupancy over all routers.
    pub peak_memory: usize,
    /// Best-effort packets delivered (the background kept flowing).
    pub be_delivered: usize,
}

/// Runs the guarantee experiment.
///
/// `offered` random unicast requests (seeded by `seed`) are offered on a
/// `side × side` mesh; admitted ones send periodically for `total_cycles`
/// with best-effort background at `be_rate`.
///
/// # Panics
///
/// Panics only on internal simulation errors.
#[must_use]
pub fn run(
    side: u16,
    offered: usize,
    be_rate: f64,
    seed: u64,
    total_cycles: Cycle,
) -> GuaranteeResult {
    let config = RouterConfig::default();
    let topo = Topology::mesh(side, side);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut admitted: Vec<EstablishedChannel> = Vec::new();
    for _ in 0..offered {
        let src = NodeId(rng.gen_range(0..topo.len() as u16));
        let dst = loop {
            let d = NodeId(rng.gen_range(0..topo.len() as u16));
            if d != src {
                break d;
            }
        };
        let i_min = *[8u32, 16, 32].get(rng.gen_range(0..3usize)).unwrap();
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let d_per = rng.gen_range(4..=8.min(i_min));
        let request =
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(i_min, 18), depth * d_per);
        if let Ok(channel) = manager.establish(&topo, request, &mut sim) {
            admitted.push(channel);
        }
    }

    for channel in &admitted {
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        let phase = channel.id % 8;
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(channel.request.spec.i_min),
                phase,
                config.slot_bytes,
                vec![0x33; config.tc_data_bytes()],
            )),
        );
    }
    if be_rate > 0.0 {
        for node in topo.nodes() {
            sim.add_source(
                node,
                Box::new(
                    RandomBeSource::new(
                        topo.clone(),
                        TrafficPattern::Uniform,
                        be_rate,
                        SizeDist::Uniform(8, 48),
                        seed.wrapping_mul(31) ^ u64::from(node.0),
                    )
                    .with_max_queue(8),
                ),
            );
        }
    }

    sim.run(total_cycles);

    let mut delivered = 0;
    let mut misses = 0;
    let mut min_slack = i64::MAX;
    let mut be_delivered = 0;
    for node in topo.nodes() {
        let log = sim.log(node);
        delivered += log.tc.len();
        misses += log.tc_deadline_misses(config.slot_bytes);
        for s in log.tc_slack_slots(config.slot_bytes) {
            min_slack = min_slack.min(s);
        }
        be_delivered += log.be.len();
    }
    GuaranteeResult {
        offered,
        admitted: admitted.len(),
        delivered,
        misses,
        min_slack: if min_slack == i64::MAX { 0 } else { min_slack },
        aliased_keys: topo.nodes().map(|n| sim.chip(n).stats().aliased_keys).sum(),
        peak_memory: topo.nodes().map(|n| sim.chip(n).memory_high_water()).max().unwrap_or(0),
        be_delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admitted_channels_never_miss() {
        let r = run(4, 12, 0.1, 1234, 80_000);
        assert!(r.admitted >= 6, "admitted {}/{}", r.admitted, r.offered);
        assert!(r.delivered > 500, "delivered {}", r.delivered);
        assert_eq!(r.misses, 0, "admission + EDF must guarantee all deadlines");
        assert!(r.min_slack >= 0);
        assert_eq!(r.aliased_keys, 0, "no rollover aliasing for admitted traffic");
        assert!(r.be_delivered > 0, "background kept flowing");
    }
}
