//! Extension experiment X2: the real-time router vs the §6 baselines.
//!
//! Scenario: a 4×4 mesh where one *tight-deadline* periodic connection
//! shares its row with two *aggressive* (backlogged) connections, under a
//! sweep of uniform best-effort background load. The same offered traffic
//! runs on three routers:
//!
//! * the **real-time router** — deadline scheduling plus logical-arrival
//!   regulation: the tight connection never misses, regardless of the
//!   aggressors or the background;
//! * the **priority-VC** baseline — class priority but FIFO service and no
//!   regulation: the aggressors' ahead-of-contract packets queue in front
//!   of the tight connection and cause misses;
//! * the **pure wormhole** baseline — deadline traffic rides the single
//!   best-effort channel and misses grow with background load.

use rtr_baselines::fifo_sf::FifoSfRouter;
use rtr_baselines::priority_vc::PriorityVcRouter;
use rtr_baselines::wormhole::WormholeRouter;
use rtr_channels::establish::{ChannelManager, ControlPlane, EstablishedChannel};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::{ControlCommand, ControlError};
use rtr_core::RealTimeRouter;
use rtr_mesh::stats::LatencySummary;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::NodeId;
use rtr_types::time::Cycle;
use rtr_workloads::be::{RandomBeSource, SizeDist};
use rtr_workloads::patterns::TrafficPattern;
use rtr_workloads::tc::{BurstyTcSource, PeriodicTcSource};

use crate::util::PeriodicDeadlineBeSource;

/// The router designs under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// The paper's real-time router.
    RealTime,
    /// Fixed class priority, FIFO within class.
    PriorityVc,
    /// Single-class wormhole.
    Wormhole,
    /// Store-and-forward FIFO for all traffic (the §3.1 strawman).
    StoreForward,
}

impl std::fmt::Display for Design {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Design::RealTime => f.write_str("real-time router"),
            Design::PriorityVc => f.write_str("priority-VC FIFO"),
            Design::Wormhole => f.write_str("pure wormhole"),
            Design::StoreForward => f.write_str("store&forward FIFO"),
        }
    }
}

/// One measured row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompareRow {
    /// The design measured.
    pub design: Design,
    /// Best-effort background injection rate (packets/cycle/node).
    pub be_rate: f64,
    /// Tight-connection packets delivered.
    pub delivered: usize,
    /// Tight-connection deadline misses.
    pub misses: usize,
    /// Tight-connection mean latency, cycles.
    pub mean_latency: f64,
    /// Tight-connection worst latency, cycles.
    pub max_latency: Cycle,
}

impl CompareRow {
    /// Miss ratio in percent.
    #[must_use]
    pub fn miss_percent(&self) -> f64 {
        if self.delivered == 0 {
            return 100.0;
        }
        100.0 * self.misses as f64 / self.delivered as f64
    }
}

/// The tight channel's contract: period 8 slots, end-to-end bound 16 slots
/// over the 4-hop route (3 links + reception).
const TIGHT_PERIOD: u32 = 8;
const TIGHT_DEADLINE: u32 = 12;
/// Aggressors: same long-run rate, but legally bursty (`B_max = 11`,
/// twelve messages dumped every 96 slots) with a loose end-to-end bound.
const AGGR_PERIOD: u32 = 8;
const AGGR_DEADLINE: u32 = 24;
const AGGR_BURST: u32 = 12;
const AGGR_BURST_PERIOD: u64 = 96;

struct Scenario {
    topo: Topology,
    tight: ChannelRequest,
    aggressors: Vec<ChannelRequest>,
}

fn scenario() -> Scenario {
    let topo = Topology::mesh(4, 4);
    // Destination (2,0): the tight channel arrives from the west, the
    // aggressors from the east and the north — three different input
    // ports converging on one scheduled reception port, so bursts pile up
    // there instead of being serialised by a shared upstream link.
    let dst = topo.node_at(2, 0);
    let tight = ChannelRequest::unicast(
        topo.node_at(0, 0),
        dst,
        TrafficSpec::periodic(TIGHT_PERIOD, 18),
        TIGHT_DEADLINE,
    );
    let aggr_spec = TrafficSpec { i_min: AGGR_PERIOD, s_max_bytes: 18, b_max: AGGR_BURST - 1 };
    let aggressors = vec![
        ChannelRequest::unicast(topo.node_at(3, 0), dst, aggr_spec, AGGR_DEADLINE),
        ChannelRequest::unicast(topo.node_at(2, 3), dst, aggr_spec, AGGR_DEADLINE),
    ];
    Scenario { topo, tight, aggressors }
}

fn add_background<C: rtr_types::chip::Chip>(
    sim: &mut Simulator<C>,
    topo: &Topology,
    rate: f64,
    seed: u64,
) {
    if rate <= 0.0 {
        return;
    }
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    rate,
                    SizeDist::Uniform(16, 64),
                    seed ^ u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
}

/// Translates Table 3 commands onto the priority-VC baseline (delays and
/// horizons have no meaning there).
struct PvPlane<'a>(&'a mut Simulator<PriorityVcRouter>);

impl ControlPlane for PvPlane<'_> {
    fn apply(&mut self, node: NodeId, cmd: ControlCommand) -> Result<(), ControlError> {
        match cmd {
            ControlCommand::SetConnection { incoming, outgoing, out_mask, .. } => self
                .0
                .chip_mut(node)
                .install(incoming, outgoing, out_mask)
                .map_err(ControlError::Table),
            ControlCommand::ClearConnection { .. } | ControlCommand::SetHorizon { .. } => Ok(()),
        }
    }
}

/// The same translation for the store-and-forward baseline.
struct SfPlane<'a>(&'a mut Simulator<FifoSfRouter>);

impl ControlPlane for SfPlane<'_> {
    fn apply(&mut self, node: NodeId, cmd: ControlCommand) -> Result<(), ControlError> {
        match cmd {
            ControlCommand::SetConnection { incoming, outgoing, out_mask, .. } => self
                .0
                .chip_mut(node)
                .install(incoming, outgoing, out_mask)
                .map_err(ControlError::Table),
            ControlCommand::ClearConnection { .. } | ControlCommand::SetHorizon { .. } => Ok(()),
        }
    }
}

fn channels_for<P: ControlPlane>(
    topo: &Topology,
    plane: &mut P,
) -> (EstablishedChannel, Vec<EstablishedChannel>) {
    let s = scenario();
    let config = RouterConfig::default();
    let mut manager = ChannelManager::new(&config);
    let tight = manager.establish(topo, s.tight, plane).expect("tight channel must be admissible");
    let aggressors = s
        .aggressors
        .into_iter()
        .map(|r| manager.establish(topo, r, plane).expect("aggressors admissible"))
        .collect();
    (tight, aggressors)
}

fn measure_tight(
    log: &rtr_mesh::stats::DeliveryLog,
    tight_source: NodeId,
    slot_bytes: usize,
    be_class: bool,
) -> (usize, usize, f64, Cycle) {
    let (delivered, misses, latencies) = if be_class {
        let packets: Vec<_> = log
            .be
            .iter()
            .filter(|(_, p)| p.trace.source == tight_source && p.trace.deadline != 0)
            .collect();
        let misses = packets
            .iter()
            .filter(|(c, p)| rtr_types::time::cycle_to_slot(*c, slot_bytes) > p.trace.deadline)
            .count();
        let lat: Vec<Cycle> =
            packets.iter().map(|(c, p)| c.saturating_sub(p.trace.injected_at)).collect();
        (packets.len(), misses, lat)
    } else {
        let packets: Vec<_> =
            log.tc.iter().filter(|(_, p)| p.trace.source == tight_source).collect();
        let misses = packets
            .iter()
            .filter(|(c, p)| rtr_types::time::cycle_to_slot(*c, slot_bytes) > p.trace.deadline)
            .count();
        let lat: Vec<Cycle> =
            packets.iter().map(|(c, p)| c.saturating_sub(p.trace.injected_at)).collect();
        (packets.len(), misses, lat)
    };
    let summary = LatencySummary::of(&latencies);
    (delivered, misses, summary.mean, summary.max)
}

/// Runs one design at one background load for `total_cycles`.
///
/// # Panics
///
/// Panics only on internal simulation errors.
#[must_use]
pub fn run_one(design: Design, be_rate: f64, total_cycles: Cycle) -> CompareRow {
    let config = RouterConfig::default();
    let s = scenario();
    let topo = s.topo.clone();
    let slot = config.slot_bytes;
    let data = config.tc_data_bytes();
    let tight_src = s.tight.source;
    let dst = s.tight.destinations[0];

    let make_tc_sources = |tight: &EstablishedChannel,
                           aggressors: &[EstablishedChannel],
                           clock: rtr_types::clock::SlotClock|
     -> Vec<(NodeId, Box<dyn rtr_mesh::TrafficSource>)> {
        let mut sources: Vec<(NodeId, Box<dyn rtr_mesh::TrafficSource>)> = Vec::new();
        let sender = ChannelSender::new(tight, clock, slot, data);
        sources.push((
            tight.request.source,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(TIGHT_PERIOD),
                0,
                slot,
                vec![0x71; data],
            )),
        ));
        for a in aggressors {
            let sender = ChannelSender::new(a, clock, slot, data);
            // Legally bursty: logical-arrival regulation at the links is
            // what keeps the burst away from the tight channel.
            sources.push((
                a.request.source,
                Box::new(BurstyTcSource::new(
                    sender,
                    AGGR_BURST,
                    AGGR_BURST_PERIOD,
                    slot,
                    vec![0xA6; data],
                )),
            ));
        }
        sources
    };

    match design {
        Design::RealTime => {
            let mut sim =
                Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
            let (tight, aggressors) = channels_for(&topo, &mut sim);
            let clock = sim.chip(tight_src).clock();
            for (node, src) in make_tc_sources(&tight, &aggressors, clock) {
                sim.add_source(node, src);
            }
            add_background(&mut sim, &topo, be_rate, 0xBEEF);
            sim.run(total_cycles);
            let (delivered, misses, mean, max) =
                measure_tight(sim.log(dst), tight_src, slot, false);
            CompareRow { design, be_rate, delivered, misses, mean_latency: mean, max_latency: max }
        }
        Design::PriorityVc => {
            let mut sim =
                Simulator::build(topo.clone(), |_| PriorityVcRouter::new(config.clone())).unwrap();
            let (tight, aggressors) = {
                let mut plane = PvPlane(&mut sim);
                channels_for(&topo, &mut plane)
            };
            let clock = rtr_types::clock::SlotClock::new(config.clock_bits);
            for (node, src) in make_tc_sources(&tight, &aggressors, clock) {
                sim.add_source(node, src);
            }
            add_background(&mut sim, &topo, be_rate, 0xBEEF);
            sim.run(total_cycles);
            let (delivered, misses, mean, max) =
                measure_tight(sim.log(dst), tight_src, slot, false);
            CompareRow { design, be_rate, delivered, misses, mean_latency: mean, max_latency: max }
        }
        Design::StoreForward => {
            let mut sim =
                Simulator::build(topo.clone(), |_| FifoSfRouter::new(config.clone())).unwrap();
            let (tight, aggressors) = {
                let mut plane = SfPlane(&mut sim);
                channels_for(&topo, &mut plane)
            };
            let clock = rtr_types::clock::SlotClock::new(config.clock_bits);
            for (node, src) in make_tc_sources(&tight, &aggressors, clock) {
                sim.add_source(node, src);
            }
            add_background(&mut sim, &topo, be_rate, 0xBEEF);
            sim.run(total_cycles);
            let (delivered, misses, mean, max) =
                measure_tight(sim.log(dst), tight_src, slot, false);
            CompareRow { design, be_rate, delivered, misses, mean_latency: mean, max_latency: max }
        }
        Design::Wormhole => {
            let mut sim =
                Simulator::build(topo.clone(), |_| WormholeRouter::new(config.clone())).unwrap();
            // No channels: deadline traffic goes out as best-effort
            // packets with the same periods and deadlines.
            sim.add_source(
                tight_src,
                Box::new(PeriodicDeadlineBeSource::new(
                    &topo,
                    tight_src,
                    dst,
                    u64::from(TIGHT_PERIOD),
                    u64::from(TIGHT_DEADLINE),
                    data,
                    slot,
                )),
            );
            for a in &s.aggressors {
                sim.add_source(
                    a.source,
                    Box::new(PeriodicDeadlineBeSource::new(
                        &topo,
                        a.source,
                        dst,
                        u64::from(AGGR_PERIOD),
                        u64::from(AGGR_DEADLINE),
                        data,
                        slot,
                    )),
                );
            }
            add_background(&mut sim, &topo, be_rate, 0xBEEF);
            sim.run(total_cycles);
            let (delivered, misses, mean, max) = measure_tight(sim.log(dst), tight_src, slot, true);
            CompareRow { design, be_rate, delivered, misses, mean_latency: mean, max_latency: max }
        }
    }
}

/// Runs the full comparison grid.
#[must_use]
pub fn run(be_rates: &[f64], total_cycles: Cycle) -> Vec<CompareRow> {
    let mut rows = Vec::new();
    for &rate in be_rates {
        for design in [Design::RealTime, Design::PriorityVc, Design::StoreForward, Design::Wormhole]
        {
            rows.push(run_one(design, rate, total_cycles));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_time_router_never_misses() {
        let row = run_one(Design::RealTime, 0.2, 60_000);
        assert!(row.delivered > 200, "delivered {}", row.delivered);
        assert_eq!(row.misses, 0, "EDF + regulation guarantee the tight channel");
    }

    #[test]
    fn priority_fifo_misses_under_aggressive_peers() {
        let row = run_one(Design::PriorityVc, 0.0, 60_000);
        assert!(row.delivered > 100);
        assert!(row.misses > 0, "unregulated FIFO must let aggressors delay the tight channel");
    }

    #[test]
    fn wormhole_degrades_with_background_load() {
        let quiet = run_one(Design::Wormhole, 0.0, 60_000);
        let busy = run_one(Design::Wormhole, 0.3, 60_000);
        assert!(
            busy.mean_latency > quiet.mean_latency,
            "background load must hurt: {} vs {}",
            busy.mean_latency,
            quiet.mean_latency
        );
        assert!(busy.misses >= quiet.misses);
    }
}
