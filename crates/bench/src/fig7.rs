//! Figure 7 (paper §5.2): time-constrained and best-effort service on a
//! single link.
//!
//! Three continually-backlogged connections with `(d, I_min)` = (4, 8),
//! (8, 16), (16, 32) in 20-byte slots, plus backlogged best-effort traffic,
//! all compete for one network link with horizon `h = 0`. The paper's
//! figure shows cumulative service: each connection receives exactly its
//! reserved share (1/8, 1/16, 1/32 of the link), every packet meets its
//! deadline, and best-effort traffic consumes the remaining bandwidth.

use rtr_channels::establish::{EstablishedChannel, Hop};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, NodeId, Port};
use rtr_types::time::Cycle;
use rtr_workloads::be::BackloggedBeSource;
use rtr_workloads::tc::BackloggedTcSource;

/// One sample of the cumulative-service series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Simulation time, cycles.
    pub cycle: Cycle,
    /// Cumulative bytes served per time-constrained connection.
    pub tc_bytes: [u64; 3],
    /// Cumulative best-effort bytes served.
    pub be_bytes: u64,
}

/// The full experiment result.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// The `(d, I_min)` parameters, in slots.
    pub params: [(u32, u32); 3],
    /// Sampled cumulative service.
    pub samples: Vec<Sample>,
    /// Long-run bandwidth share per connection (bytes per cycle).
    pub tc_shares: [f64; 3],
    /// Long-run best-effort share.
    pub be_share: f64,
    /// End-to-end deadline misses observed at the destination.
    pub deadline_misses: usize,
    /// Time-constrained packets delivered.
    pub delivered: usize,
}

/// Runs the Figure 7 scenario.
///
/// `horizon` is the link's horizon parameter (the paper uses 0);
/// `be_payload` sizes the competing best-effort packets; the series is
/// sampled every `sample_every` cycles for `total_cycles`.
///
/// # Panics
///
/// Panics only on internal simulation errors.
#[must_use]
pub fn run(
    horizon: u32,
    be_payload: usize,
    total_cycles: Cycle,
    sample_every: Cycle,
) -> Fig7Result {
    let params = [(4u32, 8u32), (8, 16), (16, 32)];
    let config = RouterConfig::default();
    let topo = Topology::mesh(2, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = NodeId(0);
    let dst = topo.node_at(1, 0);
    let out = Port::Dir(Direction::XPlus);

    for node in [src, dst] {
        sim.chip_mut(node)
            .apply_control(ControlCommand::SetHorizon { port_mask: 0b1_1111, horizon })
            .unwrap();
    }

    for (i, (d, i_min)) in params.iter().enumerate() {
        let conn = ConnectionId(i as u16 + 1);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: *d,
                out_mask: out.mask(),
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: *d,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let channel = EstablishedChannel {
            id: i as u64,
            ingress: conn,
            depth: 2,
            guaranteed: 2 * d,
            hops: vec![
                Hop {
                    node: src,
                    conn,
                    out_conn: conn,
                    delay: *d,
                    out_mask: out.mask(),
                    buffers: 4,
                },
                Hop {
                    node: dst,
                    conn,
                    out_conn: conn,
                    delay: *d,
                    out_mask: Port::Local.mask(),
                    buffers: 4,
                },
            ],
            request: ChannelRequest::unicast(src, dst, TrafficSpec::periodic(*i_min, 18), 2 * d),
        };
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(BackloggedTcSource::new(
                sender,
                *i_min,
                3,
                config.slot_bytes,
                vec![0x7C; config.tc_data_bytes()],
            )),
        );
    }
    sim.add_source(src, Box::new(BackloggedBeSource::new(&topo, src, dst, be_payload, 2)));

    let mut samples = Vec::new();
    while sim.now() < total_cycles {
        sim.run(sample_every.min(total_cycles - sim.now()));
        let stats = sim.chip(src).stats();
        samples.push(Sample {
            cycle: sim.now(),
            tc_bytes: [
                stats.tc_conn_bytes(out.index(), ConnectionId(1)),
                stats.tc_conn_bytes(out.index(), ConnectionId(2)),
                stats.tc_conn_bytes(out.index(), ConnectionId(3)),
            ],
            be_bytes: stats.be_bytes[out.index()],
        });
    }

    let last = *samples.last().expect("at least one sample");
    let t = last.cycle as f64;
    Fig7Result {
        params,
        tc_shares: [
            last.tc_bytes[0] as f64 / t,
            last.tc_bytes[1] as f64 / t,
            last.tc_bytes[2] as f64 / t,
        ],
        be_share: last.be_bytes as f64 / t,
        deadline_misses: sim.log(dst).tc_deadline_misses(config.slot_bytes),
        delivered: sim.log(dst).tc.len(),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_match_reserved_fractions() {
        let r = run(0, 92, 40_000, 2_000);
        // Reserved shares: 1/8, 1/16, 1/32 of the link (bytes per cycle).
        for (share, expect) in r.tc_shares.iter().zip([0.125, 0.0625, 0.03125]) {
            assert!((share - expect).abs() < 0.01, "share {share} vs reserved {expect}");
        }
        assert!(r.be_share > 0.5, "best-effort consumes the excess, got {}", r.be_share);
        assert_eq!(r.deadline_misses, 0, "every packet by its deadline");
        assert!(r.delivered > 300);
    }

    #[test]
    fn horizons_keep_shares_but_cut_latency() {
        // With a horizon, early packets use idle/best-effort slack, so
        // latency falls while the long-run shares stay at the reserved
        // fractions (the reservation is about bandwidth, not ordering).
        let strict = run(0, 92, 20_000, 5_000);
        let relaxed = run(24, 92, 20_000, 5_000);
        for k in 0..3 {
            assert!(
                (strict.tc_shares[k] - relaxed.tc_shares[k]).abs() < 0.02,
                "shares unchanged by the horizon"
            );
        }
        assert_eq!(relaxed.deadline_misses, 0);
        assert!(relaxed.delivered >= strict.delivered);
    }

    #[test]
    fn cumulative_series_is_monotone() {
        let r = run(0, 92, 10_000, 1_000);
        for w in r.samples.windows(2) {
            for k in 0..3 {
                assert!(w[1].tc_bytes[k] >= w[0].tc_bytes[k]);
            }
            assert!(w[1].be_bytes >= w[0].be_bytes);
        }
    }
}
