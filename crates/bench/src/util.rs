//! Shared helpers for the experiment harnesses.

use rtr_channels::arrival::ArrivalTracker;
use rtr_mesh::source::TrafficSource;
use rtr_mesh::topology::Topology;
use rtr_types::chip::ChipIo;
use rtr_types::ids::NodeId;
use rtr_types::packet::{BePacket, PacketTrace};
use rtr_types::time::{cycle_to_slot, Cycle};

/// A periodic source that sends deadline-stamped *best-effort* packets —
/// used to offer the real-time workload to baseline routers that have no
/// time-constrained channel (the wormhole baseline).
#[derive(Debug)]
pub struct PeriodicDeadlineBeSource {
    destination: NodeId,
    offsets: (i8, i8),
    period_slots: u64,
    deadline_slots: u64,
    payload_bytes: usize,
    slot_bytes: usize,
    tracker: ArrivalTracker,
    sent: u64,
}

impl PeriodicDeadlineBeSource {
    /// Creates the source; one packet of `payload_bytes` every
    /// `period_slots`, each due `deadline_slots` after its logical arrival.
    #[must_use]
    pub fn new(
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        period_slots: u64,
        deadline_slots: u64,
        payload_bytes: usize,
        slot_bytes: usize,
    ) -> Self {
        PeriodicDeadlineBeSource {
            destination: dst,
            offsets: topo.be_offsets(src, dst),
            period_slots,
            deadline_slots,
            payload_bytes,
            slot_bytes,
            tracker: ArrivalTracker::new(period_slots as u32),
            sent: 0,
        }
    }
}

impl TrafficSource for PeriodicDeadlineBeSource {
    fn pre_cycle(&mut self, now: Cycle, node: NodeId, io: &mut ChipIo) {
        let t = cycle_to_slot(now, self.slot_bytes);
        if t >= self.sent * self.period_slots && now.is_multiple_of(self.slot_bytes as u64) {
            let l0 = self.tracker.next(t);
            let trace = PacketTrace {
                source: node,
                destination: self.destination,
                sequence: self.sent,
                injected_at: now,
                logical_arrival: l0,
                deadline: l0 + self.deadline_slots,
            };
            io.inject_be.push_back(BePacket::new(
                self.offsets.0,
                self.offsets.1,
                vec![0xCD; self.payload_bytes],
                trace,
            ));
            self.sent += 1;
        }
    }
}

/// Mean of a sample set (0.0 when empty).
#[must_use]
pub fn mean(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_be_source_stamps_traces() {
        let topo = Topology::mesh(2, 1);
        let mut src = PeriodicDeadlineBeSource::new(&topo, NodeId(0), NodeId(1), 8, 20, 16, 20);
        let mut io = ChipIo::new();
        for now in 0..(8 * 20 * 3) {
            src.pre_cycle(now, NodeId(0), &mut io);
        }
        assert_eq!(io.inject_be.len(), 3);
        let p = &io.inject_be[1];
        assert_eq!(p.trace.logical_arrival, 8);
        assert_eq!(p.trace.deadline, 28);
        assert_eq!(p.header.x_off, 1);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2, 4]), 3.0);
    }
}
