//! Chaos scenarios: measured fault-tolerance outcomes for the recorded
//! benchmark suite.
//!
//! Three scripted scenarios exercise the fault plane end to end and
//! report *recovery* figures rather than wall-clock: a mid-run link kill
//! answered by the detection/re-route loop, a flaky-link regime absorbed
//! by the conservation ledger, and a node crash/restore blackout. Each
//! scenario is fully deterministic (seeded schedule, seeded traffic), so
//! the committed `BENCH_7.json` rows double as a regression surface: a
//! violation window or loss column that drifts means the fault plane or
//! the recovery loop changed behaviour.

use rtr_channels::establish::ChannelManager;
use rtr_channels::recovery::{watch_and_recover, RecoveryConfig};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::RealTimeRouter;
use rtr_mesh::{FaultKind, FaultSchedule, Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::{Direction, NodeId};
use rtr_workloads::tc::PeriodicTcSource;

/// Measured outcome of one chaos scenario.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// Scenario identifier (the benchmark row name).
    pub scenario: &'static str,
    /// Cycle the scripted fault fired.
    pub fault_at: u64,
    /// Cycle the monitor declared the fault (0 when no detector ran).
    pub detected_at: u64,
    /// Cycle the replacement channel went live (0 when no re-route ran).
    pub rerouted_at: u64,
    /// Cycle service resumed at the victim's destination.
    pub recovered_at: u64,
    /// Full service interruption seen by the victim, fault to first
    /// post-recovery arrival.
    pub violation_window: u64,
    /// Detection-to-installed control-plane latency (0 when no re-route).
    pub reroute_latency: u64,
    /// Deliveries on the victim channel across the whole run.
    pub victim_delivered: usize,
    /// Deadline misses on the victim channel.
    pub victim_misses: usize,
    /// Deliveries on the fault-avoiding bystander channel.
    pub bystander_delivered: usize,
    /// Deadline misses on the bystander — the guarantee under test: 0.
    pub bystander_misses: usize,
    /// Symbols blackholed or dropped by the fault plane.
    pub symbols_lost: u64,
    /// Symbols delivered corrupted by a flaky regime.
    pub symbols_corrupted: u64,
}

fn build_pair(
    topo: &Topology,
    config: &RouterConfig,
) -> (Simulator<RealTimeRouter>, ChannelManager, ChannelPair) {
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(config);
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);
    let far_src = topo.node_at(0, 2);
    let far_dst = topo.node_at(2, 2);
    let victim = manager
        .establish(
            topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
            &mut sim,
        )
        .unwrap();
    let bystander = manager
        .establish(
            topo,
            ChannelRequest::unicast(far_src, far_dst, TrafficSpec::periodic(16, 18), 60),
            &mut sim,
        )
        .unwrap();
    for (channel, node, offset, fill) in
        [(&victim, src, 0u64, 0x44u8), (&bystander, far_src, 5, 0x55)]
    {
        let sender = ChannelSender::new(
            channel,
            sim.chip(node).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            node,
            Box::new(PeriodicTcSource::new(
                sender,
                16,
                offset,
                config.slot_bytes,
                vec![fill; config.tc_data_bytes()],
            )),
        );
    }
    let pair = ChannelPair { victim_id: victim.id, dst, far_dst };
    (sim, manager, pair)
}

struct ChannelPair {
    victim_id: u64,
    dst: NodeId,
    far_dst: NodeId,
}

/// A mid-run link kill on the victim's row, answered by the full
/// watch → detect → localize → re-route loop while the mesh keeps
/// running. The bystander channel on a disjoint row must keep a zero
/// miss count throughout.
#[must_use]
pub fn link_down_recovery() -> ChaosOutcome {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let (mut sim, mut manager, pair) = build_pair(&topo, &config);
    let fault_at = 5_000;
    sim.run(4_000);
    sim.schedule_fault(
        fault_at,
        FaultKind::LinkDown { node: topo.node_at(1, 0), dir: Direction::XPlus },
    );
    let recovery = RecoveryConfig {
        check_every: 64,
        timeout: 768,
        max_cycles: 60_000,
        cycles_per_table_write: 8,
    };
    let report =
        watch_and_recover(&mut sim, &mut manager, &topo, pair.victim_id, pair.dst, &recovery)
            .expect("the 3x3 mesh always has a detour");
    sim.run(20_000);
    let stats = sim.fault_stats();
    ChaosOutcome {
        scenario: "chaos_link_down_recovery",
        fault_at,
        detected_at: report.detected_at,
        rerouted_at: report.rerouted_at,
        recovered_at: report.recovered_at,
        violation_window: report.recovered_at - fault_at,
        reroute_latency: report.reroute_latency(),
        victim_delivered: sim.log(pair.dst).tc.len(),
        victim_misses: sim.log(pair.dst).tc_deadline_misses(config.slot_bytes),
        bystander_delivered: sim.log(pair.far_dst).tc.len(),
        bystander_misses: sim.log(pair.far_dst).tc_deadline_misses(config.slot_bytes),
        symbols_lost: stats.symbols_lost,
        symbols_corrupted: stats.symbols_corrupted,
    }
}

/// A flaky regime on the victim's first-hop link: a seeded fraction of
/// packet heads is dropped whole-packet and another fraction delivered
/// corrupted, then the link heals. No re-route runs — the scenario
/// measures what the conservation ledger absorbs and that the healthy
/// bystander never notices.
#[must_use]
pub fn flaky_link() -> ChaosOutcome {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let (mut sim, _manager, pair) = build_pair(&topo, &config);
    let fault_at = 4_000;
    let schedule = FaultSchedule::new()
        .with_seed(0xF1A2)
        .link_flaky(fault_at, topo.node_at(0, 0), Direction::XPlus, 256, 128)
        .link_stable(24_000, topo.node_at(0, 0), Direction::XPlus);
    sim.set_fault_schedule(schedule);
    sim.run(40_000);
    sim.check_conservation().expect("losses must be ledgered, not leaked");
    let stats = sim.fault_stats();
    // Service was degraded, not interrupted: recovery is the heal cycle.
    ChaosOutcome {
        scenario: "chaos_flaky_link",
        fault_at,
        detected_at: 0,
        rerouted_at: 0,
        recovered_at: 24_000,
        violation_window: 24_000 - fault_at,
        reroute_latency: 0,
        victim_delivered: sim.log(pair.dst).tc.len(),
        victim_misses: sim.log(pair.dst).tc_deadline_misses(config.slot_bytes),
        bystander_delivered: sim.log(pair.far_dst).tc.len(),
        bystander_misses: sim.log(pair.far_dst).tc_deadline_misses(config.slot_bytes),
        symbols_lost: stats.symbols_lost,
        symbols_corrupted: stats.symbols_corrupted,
    }
}

/// A crash/restore blackout of the router in the middle of the victim's
/// route. No re-route: the scenario measures the self-healing gap — the
/// node comes back, half-received packets are aborted with their credits
/// refunded, and the channel resumes on its original reservation.
#[must_use]
pub fn node_crash() -> ChaosOutcome {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 3);
    let (mut sim, _manager, pair) = build_pair(&topo, &config);
    let fault_at = 6_000;
    let restore_at = 12_000;
    let schedule = FaultSchedule::new()
        .node_crash(fault_at, topo.node_at(1, 0))
        .node_restore(restore_at, topo.node_at(1, 0));
    sim.set_fault_schedule(schedule);
    sim.run(40_000);
    sim.check_conservation().expect("crash losses must be ledgered, not leaked");
    let stats = sim.fault_stats();
    let recovered_at = sim
        .log(pair.dst)
        .tc
        .iter()
        .map(|(cycle, _)| *cycle)
        .find(|&cycle| cycle > restore_at)
        .unwrap_or(0);
    ChaosOutcome {
        scenario: "chaos_node_crash",
        fault_at,
        detected_at: 0,
        rerouted_at: 0,
        recovered_at,
        violation_window: recovered_at.saturating_sub(fault_at),
        reroute_latency: 0,
        victim_delivered: sim.log(pair.dst).tc.len(),
        victim_misses: sim.log(pair.dst).tc_deadline_misses(config.slot_bytes),
        bystander_delivered: sim.log(pair.far_dst).tc.len(),
        bystander_misses: sim.log(pair.far_dst).tc_deadline_misses(config.slot_bytes),
        symbols_lost: stats.symbols_lost,
        symbols_corrupted: stats.symbols_corrupted,
    }
}

/// Runs all three scenarios in order.
#[must_use]
pub fn run_all() -> Vec<ChaosOutcome> {
    vec![link_down_recovery(), flaky_link(), node_crash()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_down_scenario_recovers_with_clean_bystander() {
        let outcome = link_down_recovery();
        assert_eq!(outcome.bystander_misses, 0);
        assert!(outcome.violation_window > 0);
        assert!(outcome.reroute_latency > 0);
        assert!(outcome.recovered_at > outcome.rerouted_at);
        assert!(outcome.symbols_lost > 0);
    }

    #[test]
    fn flaky_scenario_ledgers_its_losses() {
        let outcome = flaky_link();
        assert_eq!(outcome.bystander_misses, 0);
        assert!(outcome.symbols_lost > 0);
        assert!(outcome.symbols_corrupted > 0);
    }

    #[test]
    fn crash_scenario_heals_after_restore() {
        let outcome = node_crash();
        assert_eq!(outcome.bystander_misses, 0);
        assert!(outcome.recovered_at > 12_000, "service resumed: {outcome:?}");
        assert!(outcome.symbols_lost > 0);
    }
}
