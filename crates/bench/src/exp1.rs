//! Experiment E1 (paper §5.2, first experiment): best-effort wormhole
//! latency on the single-router loop-back configuration.
//!
//! The packet "proceeds from the injection port to the positive x link,
//! then travels from the negative x input link to the positive y
//! direction; after reentering the router on the negative y link, the
//! packet proceeds to the reception port" — three router traversals. The
//! paper reports an end-to-end latency of `30 + b` cycles for a `b`-byte
//! packet; our model reproduces the exact slope (one cycle per byte) with a
//! constant of `31` (one extra link-register cycle relative to the
//! directly-wired Verilog testbench; see `EXPERIMENTS.md`).
//!
//! For the §3.1 contrast ("packet switching would introduce additional
//! delay to buffer the packet at each hop"), the same route is also
//! measured on the store-and-forward baseline.

use rtr_baselines::fifo_sf::FifoSfRouter;
use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::NodeId;
use rtr_types::packet::{BePacket, PacketTrace};
use rtr_types::time::Cycle;

/// One measured row of the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Row {
    /// Total wormhole packet length in bytes (header + payload).
    pub bytes: usize,
    /// Measured end-to-end latency on the real-time router, cycles.
    pub wormhole_latency: Cycle,
    /// The paper's reported formula, `30 + b`.
    pub paper_formula: Cycle,
    /// The same packet over the same route on the store-and-forward
    /// baseline, cycles.
    pub store_forward_latency: Cycle,
}

/// Runs the loop-back experiment for each packet size.
///
/// # Panics
///
/// Panics if a packet fails to arrive (simulation bug) or a size is below
/// the 4-byte header.
#[must_use]
pub fn run(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&bytes| {
            assert!(bytes >= 4, "packets need the 4-byte header");
            Row {
                bytes,
                wormhole_latency: measure_wormhole(bytes),
                paper_formula: 30 + bytes as Cycle,
                store_forward_latency: measure_store_forward(bytes),
            }
        })
        .collect()
}

fn loopback_packet(bytes: usize) -> BePacket {
    // Offsets (1, 1): one +x hop (looped to −x), one +y hop (looped to −y),
    // then the reception port — the paper's exact route.
    BePacket::new(1, 1, vec![0xE1; bytes - 4], PacketTrace::default())
}

fn measure_wormhole(bytes: usize) -> Cycle {
    let mut sim =
        Simulator::build(Topology::loopback(), |_| RealTimeRouter::new(RouterConfig::default()))
            .expect("default config is valid");
    sim.inject_be(NodeId(0), loopback_packet(bytes));
    assert!(
        sim.run_until(100_000, |s| !s.log(NodeId(0)).be.is_empty()),
        "loop-back packet must arrive"
    );
    sim.log(NodeId(0)).be[0].0
}

fn measure_store_forward(bytes: usize) -> Cycle {
    let mut sim =
        Simulator::build(Topology::loopback(), |_| FifoSfRouter::new(RouterConfig::default()))
            .expect("default config is valid");
    sim.inject_be(NodeId(0), loopback_packet(bytes));
    assert!(
        sim.run_until(200_000, |s| !s.log(NodeId(0)).be.is_empty()),
        "store-and-forward packet must arrive"
    );
    sim.log(NodeId(0)).be[0].0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_linear_with_unit_slope() {
        let rows = run(&[8, 16, 32, 64, 128]);
        for w in rows.windows(2) {
            let db = (w[1].bytes - w[0].bytes) as Cycle;
            assert_eq!(w[1].wormhole_latency - w[0].wormhole_latency, db, "one cycle per byte");
        }
    }

    #[test]
    fn constant_is_within_one_cycle_of_the_paper() {
        for row in run(&[16, 64]) {
            let constant = row.wormhole_latency - row.bytes as Cycle;
            assert!((30..=31).contains(&constant), "constant {constant} vs the paper's 30");
        }
    }

    #[test]
    fn store_and_forward_pays_per_hop_buffering() {
        let rows = run(&[64]);
        let r = rows[0];
        // Three traversals, each buffering the whole packet: latency grows
        // roughly 3× the packet length instead of 1×.
        assert!(
            r.store_forward_latency > r.wormhole_latency + 2 * r.bytes as Cycle - 20,
            "S&F {} vs wormhole {}",
            r.store_forward_latency,
            r.wormhole_latency
        );
    }
}
