//! Event-driven leaping sweep: stepped vs leaping wall-clock across
//! injection rates.
//!
//! Builds an 8×8 mesh carrying four one-hop periodic TC channels whose
//! period sets the offered load (a period of `p` slots puts roughly `1/p`
//! of each source link's cycles under traffic), then runs the identical
//! workload through [`Simulator::run`] and [`Simulator::run_leaping`] and
//! reports the wall-clock ratio, alongside the wake-precision counters of
//! the leaping run. The results back the "Event-driven leaping" and
//! "Event core" sections of `EXPERIMENTS.md`; `bench_runner` records the
//! sparse points (8×8 and 32×32) in `BENCH_3.json`.

use std::time::Instant;

use rtr_channels::establish::{EstablishedChannel, Hop};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::chip::WakeStats;
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, Port};
use rtr_workloads::tc::PeriodicTcSource;

/// One row of the sweep: a single period (injection rate) measured both
/// ways over the same simulated span.
#[derive(Debug, Clone, Copy)]
pub struct LeapingPoint {
    /// Channel period in slots; injection fraction ≈ `1 / period`.
    pub period_slots: u64,
    /// Simulated cycles covered by both runs.
    pub cycles: u64,
    /// Wall-clock seconds for the plain stepped run (best of iters).
    pub stepped_s: f64,
    /// Wall-clock seconds for the leaping run (best of iters).
    pub leaping_s: f64,
    /// Chip ticks executed by the stepped run.
    pub stepped_ticks: u64,
    /// Chip ticks executed by the leaping run.
    pub leaping_ticks: u64,
    /// Aggregated `next_event` wake-precision counters from the leaping
    /// run — the measure of how much leapable time the chips' conservative
    /// wake predictions forego (ROADMAP's "shave the conservatism" item).
    /// Sourced from the unified metrics registry (`wake.*` counters), so
    /// the fields are zero unless the `metrics` feature is enabled.
    pub wake: WakeStats,
}

impl LeapingPoint {
    /// Wall-clock speedup of leaping over stepping.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.stepped_s / self.leaping_s
    }

    /// Fraction of wake polls that answered "next cycle" (`now + 1`) —
    /// each one pins the simulator to plain stepping for a cycle.
    #[must_use]
    pub fn short_poll_rate(&self) -> f64 {
        if self.wake.polls == 0 {
            return 0.0;
        }
        self.wake.short_polls as f64 / self.wake.polls as f64
    }
}

/// Builds the sweep's mesh: four one-hop channels with the given period.
#[must_use]
pub fn periodic_mesh(period_slots: u64) -> Simulator<RealTimeRouter> {
    periodic_mesh_sized(8, 8, period_slots)
}

/// Builds a `width × height` sweep mesh with four one-hop periodic TC
/// channels on rows spread across the height (rows 0, h/4, 5h/8, and h−1 —
/// for an 8-row mesh exactly the historical rows 0, 2, 5, 7, so `BENCH_2`
/// numbers stay comparable).
///
/// # Panics
///
/// Panics if the mesh is narrower than 2 columns or shorter than 4 rows.
#[must_use]
pub fn periodic_mesh_sized(
    width: u16,
    height: u16,
    period_slots: u64,
) -> Simulator<RealTimeRouter> {
    const DELAY: u32 = 6;
    assert!(width >= 2 && height >= 4, "sweep mesh needs at least 2 columns and 4 rows");
    let config = RouterConfig::default();
    let topo = Topology::mesh(width, height);
    // One template validates the config and builds the routing table once;
    // every router shares them, which is what keeps mega-mesh construction
    // (128×128 = 16 384 routers) from being dominated by per-router setup.
    let template = rtr_core::RouterTemplate::new(config.clone()).unwrap();
    let mut sim =
        Simulator::build(topo.clone(), |_| Ok::<_, std::convert::Infallible>(template.build()))
            .unwrap();
    let rows = [0, height / 4, height * 5 / 8, height - 1];
    for (i, y) in rows.into_iter().enumerate() {
        let conn = ConnectionId(10 + i as u16);
        let src = topo.node_at(0, y);
        let dst = topo.node_at(1, y);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let channel = EstablishedChannel {
            id: u64::from(conn.0),
            ingress: conn,
            depth: 2,
            guaranteed: 2 * DELAY,
            hops: vec![
                Hop {
                    node: src,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Dir(Direction::XPlus).mask(),
                    buffers: 2,
                },
                Hop {
                    node: dst,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Local.mask(),
                    buffers: 2,
                },
            ],
            request: ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(period_slots as u32, 18),
                2 * DELAY,
            ),
        };
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                period_slots,
                0,
                config.slot_bytes,
                vec![0xA0 + i as u8; config.tc_data_bytes()],
            )),
        );
    }
    sim
}

/// Measures one period both ways (best wall-clock of `iters` runs each)
/// and asserts the two runs delivered identically along the way.
#[must_use]
pub fn measure(period_slots: u64, cycles: u64, iters: usize) -> LeapingPoint {
    let mut stepped_s = f64::INFINITY;
    let mut leaping_s = f64::INFINITY;
    let mut stepped_ticks = 0;
    let mut leaping_ticks = 0;
    let mut stepped_delivered = 0;
    let mut leaping_delivered = 0;
    let mut wake = WakeStats::default();
    for _ in 0..iters {
        let mut sim = periodic_mesh(period_slots);
        let start = Instant::now();
        sim.run(cycles);
        stepped_s = stepped_s.min(start.elapsed().as_secs_f64());
        stepped_ticks = sim.ticks_executed();
        stepped_delivered = sim.topology().nodes().map(|n| sim.log(n).tc.len()).sum();

        let mut sim = periodic_mesh(period_slots);
        let start = Instant::now();
        sim.run_leaping(cycles);
        leaping_s = leaping_s.min(start.elapsed().as_secs_f64());
        leaping_ticks = sim.ticks_executed();
        leaping_delivered = sim.topology().nodes().map(|n| sim.log(n).tc.len()).sum();
        // Read the wake counters back through the metrics registry rather
        // than the chips directly: the sweep exercises the same export
        // surface bench_runner embeds in its JSON.
        let snapshot = sim.metrics_snapshot();
        wake = WakeStats {
            polls: snapshot.counter("wake.polls").unwrap_or(0),
            short_polls: snapshot.counter("wake.short_polls").unwrap_or(0),
            sync_guard_only: snapshot.counter("wake.sync_guard_only").unwrap_or(0),
            sync_guard_foregone: snapshot.counter("wake.sync_guard_foregone").unwrap_or(0),
        };
    }
    assert_eq!(
        stepped_delivered, leaping_delivered,
        "stepped and leaping runs must deliver identically"
    );
    LeapingPoint { period_slots, cycles, stepped_s, leaping_s, stepped_ticks, leaping_ticks, wake }
}

/// Runs the default sweep: ~1%, ~10%, and ~50% injection.
#[must_use]
pub fn run(cycles: u64, iters: usize) -> Vec<LeapingPoint> {
    [64, 10, 2].into_iter().map(|period| measure(period, cycles, iters)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_cover_the_same_span_and_agree() {
        let point = measure(64, 2_000, 1);
        assert_eq!(point.cycles, 2_000);
        assert!(
            point.leaping_ticks < point.stepped_ticks,
            "sparse load must leap: {} vs {}",
            point.leaping_ticks,
            point.stepped_ticks
        );
        assert_eq!(point.stepped_ticks, 64 * 2_000);
    }
}
