//! Event-driven leaping sweep: stepped vs leaping wall-clock across
//! injection rates.
//!
//! Builds an 8×8 mesh carrying four one-hop periodic TC channels whose
//! period sets the offered load (a period of `p` slots puts roughly `1/p`
//! of each source link's cycles under traffic), then runs the identical
//! workload through [`Simulator::run`] and [`Simulator::run_leaping`] and
//! reports the wall-clock ratio. The results back the "Event-driven
//! leaping" section of `EXPERIMENTS.md`; `bench_runner` records the
//! sparse point in `BENCH_2.json`.

use std::time::Instant;

use rtr_channels::establish::{EstablishedChannel, Hop};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, Port};
use rtr_workloads::tc::PeriodicTcSource;

/// One row of the sweep: a single period (injection rate) measured both
/// ways over the same simulated span.
#[derive(Debug, Clone, Copy)]
pub struct LeapingPoint {
    /// Channel period in slots; injection fraction ≈ `1 / period`.
    pub period_slots: u64,
    /// Simulated cycles covered by both runs.
    pub cycles: u64,
    /// Wall-clock seconds for the plain stepped run (best of iters).
    pub stepped_s: f64,
    /// Wall-clock seconds for the leaping run (best of iters).
    pub leaping_s: f64,
    /// Chip ticks executed by the stepped run.
    pub stepped_ticks: u64,
    /// Chip ticks executed by the leaping run.
    pub leaping_ticks: u64,
}

impl LeapingPoint {
    /// Wall-clock speedup of leaping over stepping.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.stepped_s / self.leaping_s
    }
}

/// Builds the sweep's mesh: four one-hop channels with the given period.
#[must_use]
pub fn periodic_mesh(period_slots: u64) -> Simulator<RealTimeRouter> {
    const DELAY: u32 = 6;
    let config = RouterConfig::default();
    let topo = Topology::mesh(8, 8);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    for (i, y) in [0u16, 2, 5, 7].into_iter().enumerate() {
        let conn = ConnectionId(10 + i as u16);
        let src = topo.node_at(0, y);
        let dst = topo.node_at(1, y);
        sim.chip_mut(src)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Dir(Direction::XPlus).mask(),
            })
            .unwrap();
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: conn,
                outgoing: conn,
                delay: DELAY,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        let channel = EstablishedChannel {
            id: u64::from(conn.0),
            ingress: conn,
            depth: 2,
            guaranteed: 2 * DELAY,
            hops: vec![
                Hop {
                    node: src,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Dir(Direction::XPlus).mask(),
                    buffers: 2,
                },
                Hop {
                    node: dst,
                    conn,
                    out_conn: conn,
                    delay: DELAY,
                    out_mask: Port::Local.mask(),
                    buffers: 2,
                },
            ],
            request: ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(period_slots as u32, 18),
                2 * DELAY,
            ),
        };
        let sender = ChannelSender::new(
            &channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                period_slots,
                0,
                config.slot_bytes,
                vec![0xA0 + i as u8; config.tc_data_bytes()],
            )),
        );
    }
    sim
}

/// Measures one period both ways (best wall-clock of `iters` runs each)
/// and asserts the two runs delivered identically along the way.
#[must_use]
pub fn measure(period_slots: u64, cycles: u64, iters: usize) -> LeapingPoint {
    let mut stepped_s = f64::INFINITY;
    let mut leaping_s = f64::INFINITY;
    let mut stepped_ticks = 0;
    let mut leaping_ticks = 0;
    let mut stepped_delivered = 0;
    let mut leaping_delivered = 0;
    for _ in 0..iters {
        let mut sim = periodic_mesh(period_slots);
        let start = Instant::now();
        sim.run(cycles);
        stepped_s = stepped_s.min(start.elapsed().as_secs_f64());
        stepped_ticks = sim.ticks_executed();
        stepped_delivered = sim.topology().nodes().map(|n| sim.log(n).tc.len()).sum();

        let mut sim = periodic_mesh(period_slots);
        let start = Instant::now();
        sim.run_leaping(cycles);
        leaping_s = leaping_s.min(start.elapsed().as_secs_f64());
        leaping_ticks = sim.ticks_executed();
        leaping_delivered = sim.topology().nodes().map(|n| sim.log(n).tc.len()).sum();
    }
    assert_eq!(
        stepped_delivered, leaping_delivered,
        "stepped and leaping runs must deliver identically"
    );
    LeapingPoint { period_slots, cycles, stepped_s, leaping_s, stepped_ticks, leaping_ticks }
}

/// Runs the default sweep: ~1%, ~10%, and ~50% injection.
#[must_use]
pub fn run(cycles: u64, iters: usize) -> Vec<LeapingPoint> {
    [64, 10, 2].into_iter().map(|period| measure(period, cycles, iters)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_points_cover_the_same_span_and_agree() {
        let point = measure(64, 2_000, 1);
        assert_eq!(point.cycles, 2_000);
        assert!(
            point.leaping_ticks < point.stepped_ticks,
            "sparse load must leap: {} vs {}",
            point.leaping_ticks,
            point.stepped_ticks
        );
        assert_eq!(point.stepped_ticks, 64 * 2_000);
    }
}
