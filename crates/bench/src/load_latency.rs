//! Extension experiment X12 (paper §7: "larger network configurations and
//! more diverse traffic patterns"): the classic load–latency curve of the
//! best-effort class, with and without real-time reservations underneath.
//!
//! Uniform random best-effort traffic is offered at increasing rates on a
//! 4×4 mesh while a grid of time-constrained channels consumes a fixed
//! fraction of every row link. The expected shape: best-effort latency
//! rises gently until the knee, then sharply as the network saturates; the
//! knee moves left as the reserved fraction grows — but the reservations
//! themselves never miss.

use rtr_channels::establish::ChannelManager;
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::RealTimeRouter;
use rtr_mesh::stats::LatencySummary;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::time::Cycle;
use rtr_workloads::be::{RandomBeSource, SizeDist};
use rtr_workloads::patterns::TrafficPattern;
use rtr_workloads::tc::BackloggedTcSource;

/// One point on the load–latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadPoint {
    /// Reserved time-constrained period (slots); `None` = no reservations.
    pub tc_period: Option<u32>,
    /// Offered best-effort injection rate (packets/cycle/node).
    pub offered: f64,
    /// Best-effort packets delivered.
    pub be_delivered: usize,
    /// Mean best-effort latency, cycles.
    pub be_mean: f64,
    /// 99th-percentile best-effort latency, cycles.
    pub be_p99: Cycle,
    /// Accepted best-effort throughput (delivered packets per cycle per
    /// node).
    pub throughput: f64,
    /// Deadline misses of the reserved channels (must stay zero).
    pub tc_misses: usize,
}

/// Runs one point.
///
/// # Panics
///
/// Panics only on internal simulation errors.
#[must_use]
pub fn run_point(tc_period: Option<u32>, offered: f64, total_cycles: Cycle) -> LoadPoint {
    let config = RouterConfig::default();
    let topo = Topology::mesh(4, 4);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();

    // Reservations: one backlogged channel per row, west to east, so every
    // row link carries a `20/period` reserved fraction.
    if let Some(period) = tc_period {
        let mut manager = ChannelManager::new(&config);
        for y in 0..topo.height() {
            let src = topo.node_at(0, y);
            let dst = topo.node_at(topo.width() - 1, y);
            let channel = manager
                .establish(
                    &topo,
                    ChannelRequest::unicast(
                        src,
                        dst,
                        TrafficSpec::periodic(period, 18),
                        4 * period.min(12),
                    ),
                    &mut sim,
                )
                .expect("row reservations must be admissible");
            let sender = ChannelSender::new(
                &channel,
                sim.chip(src).clock(),
                config.slot_bytes,
                config.tc_data_bytes(),
            );
            sim.add_source(
                src,
                Box::new(BackloggedTcSource::new(
                    sender,
                    period,
                    2,
                    config.slot_bytes,
                    vec![0x55; config.tc_data_bytes()],
                )),
            );
        }
    }

    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    offered,
                    SizeDist::Fixed(28),
                    0x10AD ^ u64::from(node.0),
                )
                .with_max_queue(16),
            ),
        );
    }

    sim.run(total_cycles);

    let mut be_lat = Vec::new();
    let mut be_delivered = 0;
    let mut tc_misses = 0;
    for node in topo.nodes() {
        let log = sim.log(node);
        be_lat.extend(log.be_latencies());
        be_delivered += log.be.len();
        tc_misses += log.tc_deadline_misses(config.slot_bytes);
    }
    let s = LatencySummary::of(&be_lat);
    LoadPoint {
        tc_period,
        offered,
        be_delivered,
        be_mean: s.mean,
        be_p99: s.p99,
        throughput: be_delivered as f64 / total_cycles as f64 / topo.len() as f64,
        tc_misses,
    }
}

/// Runs the full grid.
#[must_use]
pub fn run(
    tc_periods: &[Option<u32>],
    offered_rates: &[f64],
    total_cycles: Cycle,
) -> Vec<LoadPoint> {
    let mut points = Vec::new();
    for &period in tc_periods {
        for &rate in offered_rates {
            points.push(run_point(period, rate, total_cycles));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_rises_with_load_and_reservations_never_miss() {
        let light = run_point(Some(8), 0.002, 30_000);
        let heavy = run_point(Some(8), 0.02, 30_000);
        assert!(light.be_delivered > 50);
        assert!(heavy.be_delivered > light.be_delivered);
        assert!(
            heavy.be_mean > light.be_mean,
            "load must push latency up: {} vs {}",
            heavy.be_mean,
            light.be_mean
        );
        assert_eq!(light.tc_misses, 0);
        assert_eq!(heavy.tc_misses, 0);
    }

    #[test]
    fn reservations_shift_the_curve_up() {
        let free = run_point(None, 0.01, 30_000);
        let reserved = run_point(Some(8), 0.01, 30_000);
        assert!(
            reserved.be_mean > free.be_mean,
            "reserved bandwidth must cost best-effort latency: {} vs {}",
            reserved.be_mean,
            free.be_mean
        );
    }
}
