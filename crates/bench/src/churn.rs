//! Connection-churn scenario: live establish/teardown under load, with
//! admission-guaranteed bystanders.
//!
//! A seeded Poisson schedule of short-lived channels churns against a
//! running 8×8 mesh through the live control plane
//! ([`rtr_channels::control_plane::SignalingEngine`]): every request runs
//! the ordinary admission test against the live reservation books, and
//! accepted channels' table writes land as timed simulated work — no
//! global pause. Two long-lived bystander channels carry periodic traffic
//! across the whole run; the guarantee under test is that *no amount of
//! churn* makes them miss a deadline, because admission never lets a new
//! channel overload a link they reserve.
//!
//! The scenario is fully deterministic (the churn schedule is a pure
//! function of its seed) and drive-mode independent, so its committed
//! `BENCH_8.json` row is a regression surface for the whole signaling
//! path: setup throughput, per-establish table cost, rejection rate, and
//! the teardown-abort ledger.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rtr_channels::control_plane::{SignalingEngine, TeardownStyle};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::RealTimeRouter;
use rtr_mesh::{Quiescence, Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::NodeId;
use rtr_types::time::{cycle_to_slot, slot_to_cycle, Cycle};
use rtr_workloads::churn::{churn_schedule, ChurnConfig, WindowedSource};
use rtr_workloads::tc::PeriodicTcSource;

/// How the churn driver advances the simulator between control events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Cycle-by-cycle stepping.
    Stepped,
    /// Serial event-driven leaping.
    SerialLeaping,
    /// Leaping with a 4-way parallel tick.
    ParallelLeaping,
    /// Leaping with scan-based quiescence detection.
    ScanQuiescence,
}

/// Measured outcome of the churn scenario.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Scenario identifier (the benchmark row name).
    pub scenario: &'static str,
    /// Establishment attempts issued.
    pub attempted: u64,
    /// Attempts admitted.
    pub accepted: u64,
    /// Attempts rejected by admission (reservation books untouched).
    pub rejected: u64,
    /// Teardowns performed.
    pub teardowns: u64,
    /// Routing-table writes scheduled across the run.
    pub table_writes: u64,
    /// Modeled cost of one table write, in cycles.
    pub write_cost_cycles: u64,
    /// Mean table-update cost of one accepted establishment, in cycles.
    pub setup_cycles_per_establish: u64,
    /// Accepted establishments per million cycles of run time.
    pub accepted_per_mcycle: u64,
    /// Total run length in cycles.
    pub span_cycles: u64,
    /// Control ops the simulator applied (table writes that landed).
    pub control_ops_applied: u64,
    /// Control ops that failed at the router (must be 0).
    pub control_ops_rejected: u64,
    /// Packets aborted into the teardown ledger by `Abort` teardowns.
    pub aborted_packets: u64,
    /// Deliveries on the two long-lived bystander channels.
    pub bystander_delivered: usize,
    /// Deadline misses on the bystanders — the guarantee under test: 0.
    pub bystander_misses: usize,
    /// Deliveries on churned (short-lived) channels.
    pub churn_delivered: usize,
}

enum Action {
    Establish(usize),
    Teardown(u64, TeardownStyle),
}

fn apply_mode(sim: &mut Simulator<RealTimeRouter>, mode: DriveMode) {
    match mode {
        DriveMode::Stepped | DriveMode::SerialLeaping => {}
        DriveMode::ParallelLeaping => sim.set_parallelism(4),
        DriveMode::ScanQuiescence => sim.set_quiescence(Quiescence::Scan),
    }
}

fn advance(sim: &mut Simulator<RealTimeRouter>, mode: DriveMode, cycles: Cycle) {
    if cycles == 0 {
        return;
    }
    match mode {
        DriveMode::Stepped => sim.run(cycles),
        _ => sim.run_leaping(cycles),
    }
}

/// Runs the churn scenario under one drive mode.
///
/// All four modes produce byte-identical network state (asserted by
/// `tests/churn.rs`); the benchmark records the stepped run.
#[must_use]
pub fn run_churn(mode: DriveMode) -> ChurnOutcome {
    let config = RouterConfig::default();
    let topo = Topology::mesh(8, 8);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    apply_mode(&mut sim, mode);
    let mut engine = SignalingEngine::new(&config);

    // Two long-lived bystanders on the mesh's top and bottom rows; their
    // reservations sit in the same books every churn admission runs
    // against.
    let bystander_dsts = [topo.node_at(7, 0), topo.node_at(7, 7)];
    for (i, (src, dst)) in
        [(topo.node_at(0, 0), bystander_dsts[0]), (topo.node_at(0, 7), bystander_dsts[1])]
            .into_iter()
            .enumerate()
    {
        let request = ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 96);
        let ticket = engine
            .request_establish(&topo, request, &mut sim)
            .expect("an empty mesh admits the bystanders");
        let sender = ChannelSender::new(
            &ticket.channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        let start_slot = cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1;
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                16,
                start_slot + i as u64,
                config.slot_bytes,
                vec![0x55 + i as u8; config.tc_data_bytes()],
            )),
        );
    }

    // The churn schedule: establishment times and lifetimes are a pure
    // function of the seed, so every drive mode sees the same requests at
    // the same cycles.
    // Heavy enough that admission has to say no sometimes: ~30 concurrent
    // channels, each reserving a quarter of every link it crosses.
    let churn = ChurnConfig {
        seed: 0xC4A2,
        arrivals: 48,
        mean_interarrival_slots: 12.0,
        mean_lifetime_slots: 384.0,
        min_lifetime_slots: 64,
    };
    let events = churn_schedule(&churn, &topo);

    let mut actions: Vec<Action> = Vec::new();
    let mut due: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::new();
    for (i, event) in events.iter().enumerate() {
        let at = slot_to_cycle(event.start_slot, config.slot_bytes).max(1);
        due.push(Reverse((at, actions.len())));
        actions.push(Action::Establish(i));
    }

    let mut churn_dsts: Vec<NodeId> = Vec::new();
    let mut last_clear = 0;
    while let Some(Reverse((at, seq))) = due.pop() {
        let gap = at.saturating_sub(sim.now());
        advance(&mut sim, mode, gap);
        match actions[seq] {
            Action::Establish(i) => {
                let event = events[i];
                let (sx, sy) = topo.coords(event.src);
                let (dx, dy) = topo.coords(event.dst);
                let dist = u32::from(sx.abs_diff(dx) + sy.abs_diff(dy));
                let request = ChannelRequest::unicast(
                    event.src,
                    event.dst,
                    TrafficSpec::periodic(4, 18),
                    4 * (dist + 1),
                );
                let Ok(ticket) = engine.request_establish(&topo, request, &mut sim) else {
                    continue;
                };
                let stop = slot_to_cycle(event.stop_slot(), config.slot_bytes);
                // Alternate teardown styles so the run exercises both the
                // drain path and the abort ledger.
                let style = if i % 2 == 0 { TeardownStyle::Abort } else { TeardownStyle::Drain };
                due.push(Reverse((stop.max(ticket.ready_at + 1), actions.len())));
                actions.push(Action::Teardown(ticket.channel.id, style));

                let sender = ChannelSender::new(
                    &ticket.channel,
                    sim.chip(event.src).clock(),
                    config.slot_bytes,
                    config.tc_data_bytes(),
                );
                let first_slot = cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1;
                let limit = (event.lifetime_slots / 4).max(1);
                let source = PeriodicTcSource::new(
                    sender,
                    4,
                    first_slot,
                    config.slot_bytes,
                    vec![0x80 ^ i as u8; config.tc_data_bytes()],
                )
                .with_limit(limit);
                sim.add_source(
                    event.src,
                    Box::new(WindowedSource::new(source, ticket.ready_at, stop)),
                );
                churn_dsts.push(event.dst);
            }
            Action::Teardown(id, style) => {
                let ticket = engine
                    .request_teardown(id, style, &mut sim)
                    .expect("teardown of a known channel");
                last_clear = last_clear.max(ticket.cleared_at);
            }
        }
    }
    // Let the last drains land and the bystanders run a comfortable tail.
    let tail = last_clear.saturating_sub(sim.now()) + 20_000;
    advance(&mut sim, mode, tail);

    sim.check_conservation().expect("churn losses must be ledgered, not leaked");
    let control = sim.control_stats();
    let stats = engine.stats();
    let aborted_packets: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_aborted_teardown).sum();
    let span_cycles = sim.now();
    let bystander_delivered: usize = bystander_dsts.iter().map(|d| sim.log(*d).tc.len()).sum();
    let bystander_misses: usize =
        bystander_dsts.iter().map(|d| sim.log(*d).tc_deadline_misses(config.slot_bytes)).sum();
    churn_dsts.sort_unstable();
    churn_dsts.dedup();
    let churn_delivered: usize = churn_dsts
        .iter()
        .filter(|d| !bystander_dsts.contains(d))
        .map(|d| sim.log(*d).tc.len())
        .sum();
    ChurnOutcome {
        scenario: "churn_admission_under_load",
        attempted: stats.establish_attempted,
        accepted: stats.establish_accepted,
        rejected: stats.establish_rejected,
        teardowns: stats.teardowns,
        table_writes: stats.table_writes,
        write_cost_cycles: engine.write_cost(),
        // Teardown writes are charged to their establishment: every
        // churned channel pays for both ends of its life.
        setup_cycles_per_establish: (stats.table_writes * engine.write_cost())
            .checked_div(stats.establish_accepted)
            .unwrap_or(0),
        accepted_per_mcycle: stats.establish_accepted * 1_000_000 / span_cycles.max(1),
        span_cycles,
        control_ops_applied: control.ops_applied,
        control_ops_rejected: control.ops_rejected,
        aborted_packets,
        bystander_delivered,
        bystander_misses,
        churn_delivered,
    }
}

/// Runs the scenario in the default (stepped) drive mode.
#[must_use]
pub fn run() -> ChurnOutcome {
    run_churn(DriveMode::Stepped)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_scenario_admits_rejects_and_keeps_bystanders_clean() {
        let outcome = run();
        assert_eq!(outcome.bystander_misses, 0, "{outcome:?}");
        assert!(outcome.accepted > 0, "{outcome:?}");
        assert!(outcome.attempted == outcome.accepted + outcome.rejected);
        assert_eq!(outcome.control_ops_rejected, 0, "{outcome:?}");
        assert_eq!(outcome.control_ops_applied, outcome.table_writes, "{outcome:?}");
        assert!(outcome.bystander_delivered > 0);
        assert!(outcome.churn_delivered > 0, "{outcome:?}");
        assert!(outcome.setup_cycles_per_establish > 0);
    }
}
