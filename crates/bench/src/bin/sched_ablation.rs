//! Extension X8 (paper §7): exact comparator-tree scheduling vs the
//! banded (reduced-complexity) approximation.

use rtr_hwcost::HardwareModel;
use rtr_types::config::{RouterConfig, SchedulerKind};

fn main() {
    let rows = rtr_bench::sched_ablation::run(&[0, 1, 2, 3, 4, 5], 60_000);
    println!("Scheduler ablation — tight connection (d = 2) vs six loose (d = 8), period 8");
    println!();
    println!(
        "{:>24} {:>11} {:>10} {:>8} {:>12}",
        "scheduler", "band slots", "delivered", "misses", "mean cycles"
    );
    for r in &rows {
        let name = match r.kind {
            SchedulerKind::ComparatorTree => "comparator tree".to_string(),
            SchedulerKind::Oracle => "table-1 oracle".to_string(),
            SchedulerKind::Banded { band_shift } => format!("banded (shift {band_shift})"),
        };
        println!(
            "{:>24} {:>11} {:>10} {:>8} {:>12.1}",
            name, r.band_slots, r.delivered, r.misses, r.mean_latency
        );
    }
    println!();
    println!("hardware cost of the scheduling logic (analytical model):");
    let tree = HardwareModel::new(RouterConfig::default()).report();
    println!("{:>24} {:>12} transistors", "comparator tree", tree.block("link scheduler"));
    for shift in [1u32, 3, 5] {
        let banded = HardwareModel::new(RouterConfig {
            scheduler: SchedulerKind::Banded { band_shift: shift },
            ..RouterConfig::default()
        })
        .report();
        println!(
            "{:>24} {:>12} transistors",
            format!("banded (shift {shift})"),
            banded.block("link scheduler")
        );
    }
    println!();
    println!("expected shape: the tree never misses; bands are safe while narrower than");
    println!("the laxity gap, then invert the tight connection — the §7 complexity/");
    println!("fidelity trade-off.");
}
