//! Extension X2: the real-time router against the §6 baselines. One
//! tight-deadline channel shares its destination with two legally-bursty
//! aggressors under rising best-effort background load.

use rtr_bench::baseline_compare::run;

fn main() {
    let rows = run(&[0.0, 0.1, 0.2, 0.3], 60_000);
    println!("Baseline comparison — tight channel: period 8 slots, deadline 12 slots");
    println!();
    println!(
        "{:>20} {:>8} {:>10} {:>8} {:>8} {:>12} {:>10}",
        "design", "BE rate", "delivered", "misses", "miss %", "mean cycles", "max cycles"
    );
    for r in &rows {
        println!(
            "{:>20} {:>8.2} {:>10} {:>8} {:>8.1} {:>12.1} {:>10}",
            r.design.to_string(),
            r.be_rate,
            r.delivered,
            r.misses,
            r.miss_percent(),
            r.mean_latency,
            r.max_latency
        );
    }
    println!();
    println!("expected shape: the real-time router never misses; priority-FIFO misses under");
    println!("bursty peers (no regulation, no deadlines); wormhole degrades with load.");
}
