//! Extension X12: best-effort load–latency curves under real-time
//! reservations (4×4 mesh, uniform random traffic).

fn main() {
    let periods = [None, Some(16), Some(8)];
    let rates = [0.002, 0.005, 0.01, 0.02, 0.03, 0.045];
    println!("Best-effort load–latency curves (4×4 mesh, uniform random, 28-byte payloads)");
    println!();
    println!(
        "{:>14} {:>9} {:>10} {:>12} {:>10} {:>12} {:>9}",
        "reserved", "offered", "delivered", "mean cycles", "p99", "throughput", "tc miss"
    );
    for &period in &periods {
        for &rate in &rates {
            let p = rtr_bench::load_latency::run_point(period, rate, 60_000);
            let reserved = match period {
                None => "none".to_string(),
                Some(per) => format!("20/{per} slots"),
            };
            println!(
                "{:>14} {:>9.3} {:>10} {:>12.1} {:>10} {:>12.5} {:>9}",
                reserved, rate, p.be_delivered, p.be_mean, p.be_p99, p.throughput, p.tc_misses
            );
        }
        println!();
    }
    println!("expected shape: latency knees upward with offered load; heavier reservations");
    println!("shift the knee left; the reserved channels never miss at any point.");
}
