//! Experiment E1 (paper §5.2): best-effort wormhole latency on the
//! single-router loop-back configuration. The paper reports `30 + b`
//! cycles for a `b`-byte packet; see `EXPERIMENTS.md` for the one-cycle
//! constant offset of our link model.

fn main() {
    let rows = rtr_bench::exp1::run(&[8, 16, 20, 32, 64, 96, 128, 192, 256]);
    println!("Experiment 1 — wormhole loop-back latency (3 router traversals)");
    println!();
    println!(
        "{:>8} {:>16} {:>14} {:>10} {:>20}",
        "bytes b", "measured cycles", "paper 30 + b", "delta", "store&forward cycles"
    );
    for r in &rows {
        println!(
            "{:>8} {:>16} {:>14} {:>10} {:>20}",
            r.bytes,
            r.wormhole_latency,
            r.paper_formula,
            r.wormhole_latency as i64 - r.paper_formula as i64,
            r.store_forward_latency,
        );
    }
    println!();
    let d0 = rows[0].wormhole_latency as i64 - rows[0].bytes as i64;
    let all_linear = rows.iter().all(|r| r.wormhole_latency as i64 - r.bytes as i64 == d0);
    println!(
        "latency = {} + b for every size (paper: 30 + b): linear fit {}",
        d0,
        if all_linear { "EXACT" } else { "FAILED" }
    );
    println!(
        "store-and-forward pays ≈ 3× the packet length (the §3.1 contrast): {} vs {} cycles at b = 256",
        rows.last().unwrap().store_forward_latency,
        rows.last().unwrap().wormhole_latency
    );
}
