//! Extension X3 (paper §7): end-to-end guarantees across a 4×4 mesh —
//! seeded random channel set, periodic senders, best-effort background.

use rtr_bench::mesh_guarantees::run;

fn main() {
    println!("Mesh guarantees — 4×4 mesh, random admitted channels + background load");
    println!();
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>7} {:>10} {:>8} {:>9} {:>12}",
        "seed",
        "offered",
        "admitted",
        "delivered",
        "misses",
        "min slack",
        "aliased",
        "peak mem",
        "BE delivered"
    );
    for seed in [1u64, 7, 42, 1234] {
        let r = run(4, 16, 0.15, seed, 100_000);
        println!(
            "{:>6} {:>8} {:>9} {:>10} {:>7} {:>10} {:>8} {:>9} {:>12}",
            seed,
            r.offered,
            r.admitted,
            r.delivered,
            r.misses,
            r.min_slack,
            r.aliased_keys,
            r.peak_memory,
            r.be_delivered
        );
    }
    println!();
    println!("scalability (8×8 mesh, 48 offered channels):");
    let r = run(8, 48, 0.1, 2026, 100_000);
    println!(
        "{:>6} {:>8} {:>9} {:>10} {:>7} {:>10} {:>8} {:>9} {:>12}",
        2026,
        r.offered,
        r.admitted,
        r.delivered,
        r.misses,
        r.min_slack,
        r.aliased_keys,
        r.peak_memory,
        r.be_delivered
    );
    println!();
    println!("the guarantee under test: zero misses, zero key aliasing for every admitted set");
}
