//! An ops-style console: build a mesh scenario from the command line, run
//! it, and print the manager's reservation report plus the network report
//! (deliveries, latency histograms, hottest links).
//!
//! ```text
//! cargo run --release -p rtr-bench --bin network_console -- \
//!     [side=4] [channels=12] [be_rate=0.1] [cycles=100000] \
//!     [scheduler=tree|banded:<shift>] [vct=0|1] [seed=42]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_channels::establish::ChannelManager;
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::RealTimeRouter;
use rtr_mesh::{NetworkReport, Simulator, Topology};
use rtr_types::config::{RouterConfig, SchedulerKind};
use rtr_types::ids::NodeId;
use rtr_workloads::be::{RandomBeSource, SizeDist};
use rtr_workloads::patterns::TrafficPattern;
use rtr_workloads::tc::PeriodicTcSource;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let side: u16 = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let offered: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let be_rate: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let cycles: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(100_000);
    let scheduler = match args.get(4).map(String::as_str) {
        Some(s) if s.starts_with("banded:") => SchedulerKind::Banded {
            band_shift: s["banded:".len()..].parse().unwrap_or(1),
        },
        _ => SchedulerKind::ComparatorTree,
    };
    let vct = args.get(5).map(String::as_str) == Some("1");
    let seed: u64 = args.get(6).and_then(|s| s.parse().ok()).unwrap_or(42);

    let config = RouterConfig { scheduler, tc_cut_through: vct, ..RouterConfig::default() };
    println!(
        "scenario: {side}×{side} mesh, {offered} offered channels, BE rate {be_rate}, \
         {cycles} cycles, scheduler {scheduler:?}, cut-through {vct}, seed {seed}"
    );
    println!();

    let topo = Topology::mesh(side, side);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let mut manager = ChannelManager::new(&config);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut admitted = Vec::new();
    for _ in 0..offered {
        let src = NodeId(rng.gen_range(0..topo.len() as u16));
        let dst = loop {
            let d = NodeId(rng.gen_range(0..topo.len() as u16));
            if d != src {
                break d;
            }
        };
        let i_min = *[8u32, 16, 32].get(rng.gen_range(0..3)).unwrap();
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let d_per = rng.gen_range(4..=8.min(i_min));
        if let Ok(channel) = manager.establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(i_min, 18), depth * d_per),
            &mut sim,
        ) {
            admitted.push(channel);
        }
    }
    println!("admitted {}/{} channels", admitted.len(), offered);
    for channel in &admitted {
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(channel.request.spec.i_min),
                channel.id % 8,
                config.slot_bytes,
                vec![0x42; config.tc_data_bytes()],
            )),
        );
    }
    if be_rate > 0.0 && topo.len() > 1 {
        for node in topo.nodes() {
            sim.add_source(
                node,
                Box::new(
                    RandomBeSource::new(
                        topo.clone(),
                        TrafficPattern::Uniform,
                        be_rate,
                        SizeDist::Uniform(8, 64),
                        seed.wrapping_mul(7919) ^ u64::from(node.0),
                    )
                    .with_max_queue(8),
                ),
            );
        }
    }

    sim.run(cycles);

    println!();
    println!("reserved links (top 8, densest first):");
    for row in manager.utilization_report().iter().take(8) {
        println!(
            "  node {:>4} port {:<5}  {:>2} conn  util {:.4}  headroom {:>3} slots",
            row.node.to_string(),
            row.port.to_string(),
            row.connections,
            row.utilization,
            row.headroom_slots
        );
    }

    let report = NetworkReport::capture(&sim, config.slot_bytes);
    println!();
    println!(
        "deliveries: {} time-constrained ({} misses), {} best-effort",
        report.tc_delivered, report.deadline_misses, report.be_delivered
    );
    println!(
        "tc latency: mean {:.0}  p50 {}  p99 {}  max {} cycles",
        report.tc_latency.mean(),
        report.tc_latency.percentile(50.0),
        report.tc_latency.percentile(99.0),
        report.tc_latency.max()
    );
    println!(
        "be latency: mean {:.0}  p50 {}  p99 {}  max {} cycles",
        report.be_latency.mean(),
        report.be_latency.percentile(50.0),
        report.be_latency.percentile(99.0),
        report.be_latency.max()
    );
    println!();
    println!("hottest links (symbols carried):");
    for (node, dir, usage) in report.hottest_links(6) {
        println!(
            "  node {:>4} {:<2}  tc {:>8}  be {:>8}  util {:.3}",
            node.to_string(),
            dir.to_string(),
            usage.tc_symbols,
            usage.be_symbols,
            usage.utilization(report.cycles)
        );
    }
    let cut: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_cut_through).sum();
    if vct {
        println!();
        println!("virtual cut-through traversals: {cut}");
    }
}
