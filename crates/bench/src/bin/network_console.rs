//! An ops-style console: build a mesh scenario from the command line, run
//! it, and print the manager's reservation report plus the network report
//! (deliveries, latency histograms, deadline slack, occupancy, hottest
//! links).
//!
//! Arguments are `key=value` pairs in any order; bare values are accepted
//! positionally in the order below for backwards compatibility.
//!
//! ```text
//! cargo run --release -p rtr-bench --bin network_console -- \
//!     [side=4] [channels=12] [be_rate=0.1] [cycles=100000] \
//!     [scheduler=tree|banded:<shift>] [vct=0|1] [seed=42] \
//!     [sample=<N>] [trace=<path>] [metrics=<path>] [metrics_every=<N>] \
//!     [faults=<path>]
//! ```
//!
//! `sample=N` snapshots packet-memory/scheduler/queue gauges every N cycles
//! and prints an occupancy summary. `trace=<path>` streams the cycle-level
//! packet lifecycle as JSONL (requires building with `--features trace`;
//! replay it with the `trace_dump` bin). `metrics=<path>` writes the
//! unified metrics registry as JSONL — one line per counter/gauge/histogram
//! at the end of the run, or every `metrics_every=N` cycles when given
//! (requires `--features metrics` for non-empty output; `trace_dump`
//! summarises the file). `faults=<path>` loads a scripted fault schedule
//! (`<cycle> link_down|link_up|node_crash|node_restore|link_flaky|\
//! link_stable <x>,<y> [dir] [drop=N corrupt=N]`, plus `seed <n>` lines
//! and `#` comments) and applies it mid-run; the run then reports the
//! `fault.*` loss columns and any links still dark at the end.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rtr_channels::control_plane::{SignalingEngine, TeardownStyle};
use rtr_channels::establish::ChannelManager;
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::RealTimeRouter;
use rtr_mesh::{FaultSchedule, NetworkReport, Simulator, Topology};
use rtr_types::config::{RouterConfig, SchedulerKind};
use rtr_types::ids::NodeId;
use rtr_types::time::{cycle_to_slot, slot_to_cycle};
use rtr_workloads::be::{RandomBeSource, SizeDist};
use rtr_workloads::churn::{churn_schedule, ChurnConfig, WindowedSource};
use rtr_workloads::patterns::TrafficPattern;
use rtr_workloads::tc::PeriodicTcSource;

const USAGE: &str = "\
usage: network_console [key=value ...]

  side=N                 mesh side length            (default 4)
  channels=N             offered channels            (default 12)
  be_rate=F              best-effort injection rate  (default 0.1)
  cycles=N               cycles to simulate          (default 100000)
  scheduler=tree         comparator-tree EDF         (default)
  scheduler=banded:S     banded scheduler, shift S
  vct=0|1                TC virtual cut-through      (default 0)
  seed=N                 RNG seed                    (default 42)
  sample=N               gauge-sample every N cycles (default 0 = off)
  trace=PATH             write JSONL packet trace (needs --features trace)
  metrics=PATH           write metrics-registry JSONL (needs --features metrics)
  metrics_every=N        snapshot metrics every N cycles (default 0 = end only)
  faults=PATH            scripted fault schedule applied mid-run
  churn=N                live establish/teardown arrivals mid-run (default 0 = off)

Bare values are read positionally: side channels be_rate cycles scheduler
vct seed.";

#[derive(Debug)]
struct Options {
    side: u16,
    channels: usize,
    be_rate: f64,
    cycles: u64,
    scheduler: SchedulerKind,
    vct: bool,
    seed: u64,
    sample: u64,
    trace: Option<String>,
    metrics: Option<String>,
    metrics_every: u64,
    faults: Option<String>,
    churn: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            side: 4,
            channels: 12,
            be_rate: 0.1,
            cycles: 100_000,
            scheduler: SchedulerKind::ComparatorTree,
            vct: false,
            seed: 42,
            sample: 0,
            trace: None,
            metrics: None,
            metrics_every: 0,
            faults: None,
            churn: 0,
        }
    }
}

fn parse_scheduler(value: &str) -> Result<SchedulerKind, String> {
    if value == "tree" {
        return Ok(SchedulerKind::ComparatorTree);
    }
    if let Some(shift) = value.strip_prefix("banded:") {
        let band_shift =
            shift.parse().map_err(|_| format!("bad band shift in scheduler={value}"))?;
        return Ok(SchedulerKind::Banded { band_shift });
    }
    Err(format!("unknown scheduler `{value}` (want tree or banded:<shift>)"))
}

fn parse_bool(key: &str, value: &str) -> Result<bool, String> {
    match value {
        "1" | "true" => Ok(true),
        "0" | "false" => Ok(false),
        _ => Err(format!("bad value for {key}={value} (want 0 or 1)")),
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("bad value for {key}={value}"))
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    // Positional order mirrors the historical interface.
    const POSITIONAL: [&str; 7] =
        ["side", "channels", "be_rate", "cycles", "scheduler", "vct", "seed"];
    let mut next_positional = 0;
    for arg in args {
        let (key, value) = match arg.split_once('=') {
            Some((k, v)) => (k.to_string(), v),
            None => {
                let key = *POSITIONAL
                    .get(next_positional)
                    .ok_or_else(|| format!("too many positional arguments at `{arg}`"))?;
                next_positional += 1;
                (key.to_string(), arg.as_str())
            }
        };
        match key.as_str() {
            "side" => opts.side = parse_num(&key, value)?,
            "channels" => opts.channels = parse_num(&key, value)?,
            "be_rate" => opts.be_rate = parse_num(&key, value)?,
            "cycles" => opts.cycles = parse_num(&key, value)?,
            "scheduler" => opts.scheduler = parse_scheduler(value)?,
            "vct" => opts.vct = parse_bool(&key, value)?,
            "seed" => opts.seed = parse_num(&key, value)?,
            "sample" => opts.sample = parse_num(&key, value)?,
            "trace" => opts.trace = Some(value.to_string()),
            "metrics" => opts.metrics = Some(value.to_string()),
            "metrics_every" => opts.metrics_every = parse_num(&key, value)?,
            "faults" => opts.faults = Some(value.to_string()),
            "churn" => opts.churn = parse_num(&key, value)?,
            _ => return Err(format!("unknown key `{key}`")),
        }
    }
    if opts.side == 0 {
        return Err("side must be at least 1".to_string());
    }
    Ok(opts)
}

#[cfg(feature = "trace")]
fn attach_trace(
    sim: &mut Simulator<RealTimeRouter>,
    topo: &Topology,
    path: &str,
) -> std::sync::Arc<std::sync::Mutex<rtr_types::trace::JsonlSink<std::fs::File>>> {
    use rtr_types::trace::{shared, JsonlSink};
    let sink = shared(JsonlSink::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create trace file {path}: {e}");
        std::process::exit(2);
    }));
    for node in topo.nodes() {
        sim.chip_mut(node).set_trace_sink(node, sink.clone());
    }
    sink
}

/// Drives `arrivals` live establish/teardown events through the signaling
/// engine while the run progresses, then runs out the remaining cycles.
/// The schedule is a pure function of the seed and fits inside the run
/// window; churned channels carry periodic traffic for their lifetime.
fn drive_churn(
    sim: &mut Simulator<RealTimeRouter>,
    engine: &mut SignalingEngine,
    topo: &Topology,
    config: &RouterConfig,
    seed: u64,
    arrivals: usize,
    cycles: u64,
) {
    let slots_total = cycles / config.slot_bytes as u64;
    let churn_cfg = ChurnConfig {
        seed: seed ^ 0xC4A2,
        arrivals,
        mean_interarrival_slots: (slots_total as f64 * 0.6 / (arrivals as f64 + 1.0)).max(1.0),
        mean_lifetime_slots: (slots_total as f64 / 4.0).max(32.0),
        min_lifetime_slots: 32,
    };
    let events = churn_schedule(&churn_cfg, topo);

    enum Action {
        Establish(usize),
        Teardown(u64, TeardownStyle),
    }
    let mut actions: Vec<Action> = Vec::new();
    let mut due: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    for (i, event) in events.iter().enumerate() {
        let at = slot_to_cycle(event.start_slot, config.slot_bytes).max(1);
        if at >= cycles {
            continue; // the Poisson tail can overshoot the run window
        }
        due.push(Reverse((at, actions.len())));
        actions.push(Action::Establish(i));
    }
    while let Some(Reverse((at, seq))) = due.pop() {
        let gap = at.saturating_sub(sim.now());
        sim.run(gap);
        match actions[seq] {
            Action::Establish(i) => {
                let event = events[i];
                let (sx, sy) = topo.coords(event.src);
                let (dx, dy) = topo.coords(event.dst);
                let dist = u32::from(sx.abs_diff(dx) + sy.abs_diff(dy));
                let request = ChannelRequest::unicast(
                    event.src,
                    event.dst,
                    TrafficSpec::periodic(8, 18),
                    6 * (dist + 1),
                );
                let Ok(ticket) = engine.request_establish(topo, request, sim) else {
                    continue;
                };
                // Tear down inside the run window so the clears land.
                let stop = slot_to_cycle(event.stop_slot(), config.slot_bytes)
                    .clamp(ticket.ready_at + 1, cycles.saturating_sub(1).max(1));
                let style = if i % 2 == 0 { TeardownStyle::Abort } else { TeardownStyle::Drain };
                due.push(Reverse((stop, actions.len())));
                actions.push(Action::Teardown(ticket.channel.id, style));

                let sender = ChannelSender::new(
                    &ticket.channel,
                    sim.chip(event.src).clock(),
                    config.slot_bytes,
                    config.tc_data_bytes(),
                );
                let first_slot = cycle_to_slot(ticket.ready_at, config.slot_bytes) + 1;
                let source = PeriodicTcSource::new(
                    sender,
                    8,
                    first_slot,
                    config.slot_bytes,
                    vec![0x80 ^ i as u8; config.tc_data_bytes()],
                )
                .with_limit((event.lifetime_slots / 8).max(1));
                sim.add_source(
                    event.src,
                    Box::new(WindowedSource::new(source, ticket.ready_at, stop)),
                );
            }
            Action::Teardown(id, style) => {
                engine.request_teardown(id, style, sim).expect("teardown of a known channel");
            }
        }
    }
    let tail = cycles.saturating_sub(sim.now());
    sim.run(tail);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("network_console: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    #[cfg(not(feature = "trace"))]
    if let Some(path) = &opts.trace {
        eprintln!(
            "network_console: trace={path} needs the `trace` feature; rebuild with\n  \
             cargo run --release -p rtr-bench --features trace --bin network_console"
        );
        std::process::exit(2);
    }

    let config = RouterConfig {
        scheduler: opts.scheduler,
        tc_cut_through: opts.vct,
        ..RouterConfig::default()
    };
    let Options { side, channels: offered, be_rate, cycles, vct, seed, .. } = opts;
    println!(
        "scenario: {side}×{side} mesh, {offered} offered channels, BE rate {be_rate}, \
         {cycles} cycles, scheduler {:?}, cut-through {vct}, seed {seed}",
        config.scheduler
    );
    println!();

    let topo = Topology::mesh(side, side);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    if opts.sample > 0 {
        sim.enable_gauge_sampling(opts.sample);
    }
    #[cfg(feature = "trace")]
    let trace_sink = opts.trace.as_deref().map(|p| attach_trace(&mut sim, &topo, p));
    if let Some(path) = &opts.faults {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read fault schedule {path}: {e}");
            std::process::exit(2);
        });
        let schedule = FaultSchedule::parse(&text, &topo).unwrap_or_else(|e| {
            eprintln!("bad fault schedule {path}: {e}");
            std::process::exit(2);
        });
        println!(
            "fault schedule: {} scripted events, seed {}",
            schedule.events().len(),
            schedule.seed()
        );
        sim.set_fault_schedule(schedule);
    }
    let mut manager = ChannelManager::new(&config);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut admitted = Vec::new();
    for _ in 0..offered {
        let src = NodeId(rng.gen_range(0..topo.len() as u16));
        let dst = loop {
            let d = NodeId(rng.gen_range(0..topo.len() as u16));
            if d != src {
                break d;
            }
        };
        let i_min = [8u32, 16, 32][rng.gen_range(0..3usize)];
        let depth = topo.dor_route(src, dst).len() as u32 + 1;
        let d_per = rng.gen_range(4..=8.min(i_min));
        if let Ok(channel) = manager.establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(i_min, 18), depth * d_per),
            &mut sim,
        ) {
            admitted.push(channel);
        }
    }
    println!("admitted {}/{} channels", admitted.len(), offered);
    for channel in &admitted {
        let src = channel.request.source;
        let sender = ChannelSender::new(
            channel,
            sim.chip(src).clock(),
            config.slot_bytes,
            config.tc_data_bytes(),
        );
        sim.add_source(
            src,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(channel.request.spec.i_min),
                channel.id % 8,
                config.slot_bytes,
                vec![0x42; config.tc_data_bytes()],
            )),
        );
    }
    if be_rate > 0.0 && topo.len() > 1 {
        for node in topo.nodes() {
            sim.add_source(
                node,
                Box::new(
                    RandomBeSource::new(
                        topo.clone(),
                        TrafficPattern::Uniform,
                        be_rate,
                        SizeDist::Uniform(8, 64),
                        seed.wrapping_mul(7919) ^ u64::from(node.0),
                    )
                    .with_max_queue(8),
                ),
            );
        }
    }

    let mut engine = SignalingEngine::from_manager(manager, &config);
    let mut metrics_file = opts.metrics.as_deref().map(|path| {
        std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create metrics file {path}: {e}");
            std::process::exit(2);
        })
    });
    if let Some(file) = &metrics_file {
        let _ = file;
        if !sim.metrics_registry().enabled() {
            eprintln!("note: metrics registry inactive; rebuild with --features metrics for data");
        }
    }
    if opts.churn > 0 {
        if opts.metrics_every > 0 {
            eprintln!("note: metrics_every is ignored with churn= (one end-of-run snapshot)");
        }
        drive_churn(&mut sim, &mut engine, &topo, &config, seed, opts.churn, cycles);
        if let Some(file) = metrics_file.as_mut() {
            use std::io::Write as _;
            file.write_all(sim.metrics_snapshot().to_jsonl(sim.now()).as_bytes())
                .expect("write metrics JSONL");
        }
    } else if let Some(file) = metrics_file.as_mut() {
        use std::io::Write as _;
        // Run in snapshot-sized chunks so the JSONL stream carries one
        // full registry snapshot per boundary (cycle-stamped lines).
        let every = if opts.metrics_every > 0 { opts.metrics_every } else { cycles };
        let mut done = 0;
        while done < cycles {
            let span = every.min(cycles - done);
            sim.run(span);
            done += span;
            file.write_all(sim.metrics_snapshot().to_jsonl(sim.now()).as_bytes())
                .expect("write metrics JSONL");
        }
    } else {
        sim.run(cycles);
    }

    if opts.churn > 0 {
        let stats = engine.stats();
        let aborted: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_aborted_teardown).sum();
        let control = sim.control_stats();
        println!();
        println!(
            "churn: {} attempted, {} accepted, {} rejected ({:.1}% rejection)",
            stats.establish_attempted,
            stats.establish_accepted,
            stats.establish_rejected,
            stats.rejection_rate() * 100.0
        );
        println!(
            "  table writes {} at {} cycles each ({} applied, {} failed); \
             teardown-aborted packets {}",
            stats.table_writes,
            engine.write_cost(),
            control.ops_applied,
            control.ops_rejected,
            aborted
        );
        match sim.check_conservation() {
            Ok(()) => println!("  conservation: every arrival delivered, in flight, or ledgered"),
            Err(violation) => println!("  CONSERVATION VIOLATION: {violation}"),
        }
    }

    println!();
    println!("reserved links (top 8, densest first):");
    for row in engine.manager().utilization_report().iter().take(8) {
        println!(
            "  node {:>4} port {:<5}  {:>2} conn  util {:.4}  headroom {:>3} slots",
            row.node.to_string(),
            row.port.to_string(),
            row.connections,
            row.utilization,
            row.headroom_slots
        );
    }

    let report = NetworkReport::capture(&sim, config.slot_bytes);
    println!();
    println!(
        "deliveries: {} time-constrained ({} misses), {} best-effort",
        report.tc_delivered, report.deadline_misses, report.be_delivered
    );
    println!(
        "tc latency: mean {:.0}  p50 {}  p99 {}  max {} cycles",
        report.tc_latency.mean(),
        report.tc_latency.percentile(50.0),
        report.tc_latency.percentile(99.0),
        report.tc_latency.max()
    );
    println!(
        "be latency: mean {:.0}  p50 {}  p99 {}  max {} cycles",
        report.be_latency.mean(),
        report.be_latency.percentile(50.0),
        report.be_latency.percentile(99.0),
        report.be_latency.max()
    );
    if !report.slack.is_empty() {
        println!();
        println!("per-connection deadline slack (slots, at the delivering router):");
        for row in &report.slack {
            println!(
                "  conn {:>3}  delivered {:>6}  misses {:>4}  min {:>4}  mean {:>6.1}  \
                 p50 {:>3}  p99 {:>3}",
                row.conn.0,
                row.delivered,
                row.misses,
                row.min_slack,
                row.mean_slack,
                row.slack.percentile(50.0),
                row.slack.percentile(99.0),
            );
        }
        if let Some(min) = report.min_slack() {
            println!("  network-wide minimum slack: {min} slots");
        }
    }
    if let Some(occ) = &report.occupancy {
        println!();
        println!("occupancy ({} samples every {} cycles):", occ.samples, opts.sample);
        println!(
            "  packet memory: mean {:.2} slots/node, peak {} (node {})",
            occ.mean_memory_occupied, occ.peak_memory_occupied, occ.peak_memory_node
        );
        println!(
            "  scheduler backlog: mean {:.2} packets/node;  peak link queue depth: {}",
            occ.mean_sched_backlog, occ.peak_queue_depth
        );
    }
    println!();
    println!("hottest links (symbols carried):");
    for (node, dir, usage) in report.hottest_links(6) {
        println!(
            "  node {:>4} {:<2}  tc {:>8}  be {:>8}  util {:.3}",
            node.to_string(),
            dir.to_string(),
            usage.tc_symbols,
            usage.be_symbols,
            usage.utilization(report.cycles)
        );
    }
    if opts.faults.is_some() {
        let stats = sim.fault_stats();
        println!();
        println!(
            "fault plane: {} link-down, {} link-up, {} crash, {} restore, \
             {} flaky, {} stable events",
            stats.link_down_events,
            stats.link_up_events,
            stats.node_crash_events,
            stats.node_restore_events,
            stats.link_flaky_events,
            stats.link_stable_events
        );
        println!(
            "  symbols lost {}  corrupted {}  credits lost {}  late arrivals dropped {}",
            stats.symbols_lost,
            stats.symbols_corrupted,
            stats.credits_lost,
            stats.late_arrivals_dropped
        );
        for (node, dir) in sim.downed_links() {
            println!("  still down at end of run: node {node} {dir}");
        }
        if let Err(violation) = sim.check_conservation() {
            println!("  CONSERVATION VIOLATION: {violation}");
        } else {
            println!("  conservation: every symbol delivered, in flight, or counted lost");
        }
    }
    let cut: u64 = topo.nodes().map(|n| sim.chip(n).stats().tc_cut_through).sum();
    if vct {
        println!();
        println!("virtual cut-through traversals: {cut}");
    }
    #[cfg(feature = "trace")]
    if let Some(sink) = trace_sink {
        use rtr_types::trace::TraceSink;
        sink.lock().unwrap().flush();
        println!();
        println!(
            "trace: wrote {} records to {}",
            sink.lock().unwrap().written(),
            opts.trace.as_deref().unwrap_or("?")
        );
    }
}
