//! Figure 7 (paper §5.2): cumulative time-constrained and best-effort
//! service on one link; three backlogged connections with
//! `(d, I_min)` = (4,8), (8,16), (16,32) slots plus backlogged best-effort
//! traffic, horizon `h = 0`.

fn main() {
    let result = rtr_bench::fig7::run(0, 92, 40_000, 2_000);
    println!("Figure 7 — time-constrained and best-effort service (cumulative bytes)");
    println!();
    println!("connection parameters (20-byte slots):");
    for (i, (d, i_min)) in result.params.iter().enumerate() {
        println!("  connection {}: d = {d}, I_min = {i_min}", i + 1);
    }
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "cycles", "conn 1", "conn 2", "conn 3", "best-effort"
    );
    for s in &result.samples {
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>12}",
            s.cycle, s.tc_bytes[0], s.tc_bytes[1], s.tc_bytes[2], s.be_bytes
        );
    }
    println!();
    println!("long-run bandwidth shares (bytes/cycle; link capacity 1.0):");
    for (i, (share, reserved)) in
        result.tc_shares.iter().zip([1.0 / 8.0, 1.0 / 16.0, 1.0 / 32.0]).enumerate()
    {
        println!("  connection {}: measured {:.5}  reserved {:.5}", i + 1, share, reserved);
    }
    println!("  best-effort:  measured {:.5}  (absorbs the excess)", result.be_share);
    println!();
    println!(
        "deadline misses: {} / {} delivered (paper: every packet by its deadline)",
        result.deadline_misses, result.delivered
    );
}
