//! `rtr-bench` runner: the recorded wall-clock benchmark suite.
//!
//! Runs the performance-critical scenarios — single-router cycle
//! throughput, scheduler selection cost across occupancies, full-mesh
//! stepping (serial and pool-parallel), the sparse leaping suite (8×8,
//! 32×32, 128×128, and the 256×256 mega-mesh; event-queue vs
//! quiescence-scan), mesh construction cost (with a per-node memory
//! footprint column), the chaos fault-tolerance scenarios (link-kill
//! recovery, flaky link, node crash — rows carrying measured
//! violation-window, re-route-latency, and loss columns rather than just
//! wall-clock), and the connection-churn scenario (live establish/teardown
//! through the signaling engine, with setup-throughput, rejection-rate,
//! and teardown-ledger columns) — with fixed seeds and hand-rolled
//! timing, then writes the results as JSON so a run can be committed next
//! to the code it measured (`BENCH_8.json`; earlier revisions live in
//! `BENCH_1.json` through `BENCH_7.json`).
//!
//! Built with `--features metrics`, rows additionally embed counter and
//! phase-profile columns from the unified metrics registry (wake polls,
//! stale re-polls, wheel cascades, key computations, barrier share), a
//! metrics-on-vs-off overhead pair for the mixed-load router cycle, and
//! phase-attribution rows for the 8×8 mesh (serial and 4-worker).
//!
//! Usage:
//!
//! ```text
//! bench_runner [--smoke] [--out <path>] [--flight-sample <path>]
//! ```
//!
//! `--smoke` shrinks iteration counts so CI can exercise the whole
//! pipeline in seconds; committed numbers come from a full run.
//! `--flight-sample` additionally forces a conservation violation on a
//! throwaway router and writes the resulting flight-recorder JSONL dump
//! to the given path (needs `--features metrics` to be non-trivial).

use std::fmt::Write as _;
use std::time::Instant;

use rtr_core::control::ControlCommand;
use rtr_core::memory::SlotAddr;
use rtr_core::sched::leaf::Leaf;
use rtr_core::sched::tree::ComparatorTree;
use rtr_core::RealTimeRouter;
use rtr_mesh::{Quiescence, Simulator, Topology};
use rtr_metrics::MetricsRegistry;
use rtr_types::chip::{Chip, ChipIo};
use rtr_types::clock::SlotClock;
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, Port};
use rtr_types::key::LatePolicy;
use rtr_types::packet::{BePacket, PacketTrace, TcPacket};

/// One recorded benchmark result.
struct BenchResult {
    name: String,
    iters: usize,
    min_s: f64,
    mean_s: f64,
    /// Scenario-specific throughput figure.
    metric: f64,
    unit: &'static str,
    /// Extra JSON members spliced verbatim into the row (already encoded,
    /// no surrounding braces), e.g. registry counters or phase shares.
    extra: Option<String>,
}

/// Times `iters` runs of `work` over fresh untimed `setup` state (after
/// one untimed warm-up), returning (min, mean) seconds per run — the
/// `iter_batched` discipline of the Criterion benches, so numbers compare.
/// State is passed by `&mut` and dropped after the clock stops, so
/// teardown (e.g. joining a simulator's worker pool) is never measured.
fn time_runs<S>(
    iters: usize,
    mut setup: impl FnMut() -> S,
    mut work: impl FnMut(&mut S) -> u64,
) -> (f64, f64) {
    let mut sink = 0u64;
    sink = sink.wrapping_add(work(&mut setup())); // warm-up
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let mut state = setup();
        let start = Instant::now();
        sink = sink.wrapping_add(work(&mut state));
        times.push(start.elapsed().as_secs_f64());
        drop(state);
    }
    // Keep the checksum alive so the work cannot be optimised away.
    std::hint::black_box(sink);
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

/// A single router with three TC connections and a mixed TC/BE backlog of
/// `tc_packets` + 64 BE packets — the Criterion `router_cycle` scenario.
fn loaded_router(tc_packets: u64) -> (RealTimeRouter, ChipIo) {
    let mut router = RealTimeRouter::new(RouterConfig::default()).unwrap();
    let out = Port::Dir(Direction::XPlus);
    for i in 1..=3u16 {
        router
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(i),
                outgoing: ConnectionId(i),
                delay: 4 * u32::from(i),
                out_mask: out.mask(),
            })
            .unwrap();
    }
    let mut io = ChipIo::new();
    for k in 0..tc_packets {
        io.inject_tc.push_back(TcPacket {
            conn: ConnectionId((k % 3 + 1) as u16),
            arrival: router.clock().wrap(k),
            payload: vec![0; router.config().tc_data_bytes()].into(),
            trace: PacketTrace::default(),
        });
        if k < 64 {
            io.inject_be.push_back(BePacket::new(1, 0, vec![0; 60], PacketTrace::default()));
        }
    }
    (router, io)
}

fn run_router_cycle(name: &str, tc_packets: u64, iters: usize) -> BenchResult {
    const CYCLES: u64 = 1000;
    let (min_s, mean_s) = time_runs(
        iters,
        || loaded_router(tc_packets),
        |(router, io)| {
            for now in 0..CYCLES {
                io.begin_cycle();
                io.credit_in[1] = 1;
                router.tick(now, io);
                io.tx = Default::default();
                io.credit_out = [0; 5];
            }
            router.stats().tc_transmitted[1]
        },
    );
    BenchResult {
        name: name.to_string(),
        iters,
        min_s,
        mean_s,
        metric: CYCLES as f64 / min_s,
        unit: "cycles/s",
        extra: None,
    }
}

/// The mixed-load router cycle with live metrics collection: a registry
/// counter bumped every cycle plus an end-of-run absorb of the router's
/// counters — the same pattern the simulator uses. Paired with the plain
/// `router_1000_cycles_mixed_load` row, the two quantify the registry's
/// runtime overhead (the acceptance bar is within 5%). Without the
/// `metrics` feature the registry is a zero-sized no-op and the pair
/// should be statistically identical.
fn run_router_cycle_metrics(tc_packets: u64, iters: usize) -> BenchResult {
    const CYCLES: u64 = 1000;
    let registry = MetricsRegistry::new();
    let cycles_ctr = registry.counter("bench.cycles");
    let (min_s, mean_s) = time_runs(
        iters,
        || loaded_router(tc_packets),
        |(router, io)| {
            for now in 0..CYCLES {
                io.begin_cycle();
                io.credit_in[1] = 1;
                router.tick(now, io);
                registry.inc(cycles_ctr, 1);
                io.tx = Default::default();
                io.credit_out = [0; 5];
            }
            router.counters(&mut |name, value| registry.absorb_counter(name, value));
            router.stats().tc_transmitted[1]
        },
    );
    let snapshot = registry.snapshot();
    let mut extra = String::from("\"metrics\": \"on\"");
    for name in ["router.tc_transmitted", "router.tc_retired", "sched.key_computations"] {
        if let Some(value) = snapshot.counter(name) {
            let _ = write!(extra, ", \"{name}\": {value}");
        }
    }
    BenchResult {
        name: "router_1000_cycles_mixed_load_metrics".to_string(),
        iters,
        min_s,
        mean_s,
        metric: CYCLES as f64 / min_s,
        unit: "cycles/s",
        extra: Some(extra),
    }
}

/// Counter columns embedded next to a leaping row's timings: wake
/// precision, event-core queue activity, stale re-polls, and scheduler
/// key computations, all read back through the metrics registry. Empty
/// without the `metrics` feature.
fn registry_columns(sim: &Simulator<RealTimeRouter>) -> Option<String> {
    let snapshot = sim.metrics_snapshot();
    if snapshot.is_empty() {
        return None;
    }
    let mut extra = String::from("\"counters\": {");
    let mut first = true;
    for name in [
        "wake.polls",
        "wake.short_polls",
        "wake.sync_guard_only",
        "wake.sync_guard_foregone",
        "queue.filed",
        "queue.fired",
        "queue.cascaded",
        "queue.stale_discarded",
        "sim.stale_repolls",
        "sim.leaps",
        "sim.ticks_executed",
        "sched.key_computations",
    ] {
        if let Some(value) = snapshot.counter(name) {
            let comma = if first { "" } else { ", " };
            let _ = write!(extra, "{comma}\"{name}\": {value}");
            first = false;
        }
    }
    extra.push('}');
    Some(extra)
}

/// One profiled run of the 8×8 best-effort mesh: enables the phase
/// profiler, runs once, and reports each phase's share of the measured
/// wall-clock plus the dominant phase by name — the row that attributes
/// the serial-vs-parallel stepping gap (pool hand-off and wait cost,
/// formerly thread spawn + barrier). The `metric` is the dominant phase's
/// share. Without the `metrics` feature the profiler records nothing and
/// the row reports "none".
fn run_mesh_phases(name: &str, workers: usize, cycles: u64) -> BenchResult {
    let mut sim = loaded_mesh(workers);
    sim.phase_profiler().set_enabled(true);
    let start = Instant::now();
    sim.run_parallel(cycles);
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sim.now());
    let report = sim.phase_profiler().report();
    let total_ns: u64 = report.iter().map(|l| l.ns).sum();
    let mut extra = String::from("\"phases\": {");
    let mut first = true;
    for line in &report {
        if line.calls == 0 {
            continue;
        }
        let comma = if first { "" } else { ", " };
        let share = line.ns as f64 / total_ns.max(1) as f64;
        let _ = write!(extra, "{comma}\"{}\": {share:.4}", line.phase.name());
        first = false;
    }
    let (dominant, share) = sim
        .phase_profiler()
        .dominant()
        .map_or(("none", 0.0), |(phase, share)| (phase.name(), share));
    let _ = write!(extra, "}}, \"dominant\": \"{dominant}\"");
    BenchResult {
        name: name.to_string(),
        iters: 1,
        min_s: elapsed,
        mean_s: elapsed,
        metric: share,
        unit: "dominant-share",
        extra: Some(extra),
    }
}

/// Forces a conservation violation on a two-node mesh with an armed
/// flight recorder, so a sample JSONL dump (recent trace events plus a
/// full metrics snapshot) lands at `path`. A no-op dump (header only)
/// without the `metrics` feature.
fn write_flight_sample(path: &str) {
    let mut sim =
        Simulator::build(Topology::mesh(2, 1), |_| RealTimeRouter::new(RouterConfig::default()))
            .unwrap();
    sim.arm_flight_recorder(64, path);
    sim.inject_be(
        rtr_types::ids::NodeId(0),
        BePacket::new(1, 0, vec![0x55; 40], PacketTrace::default()),
    );
    sim.run(300);
    // Corrupt one counter so the arrived = routed ledger fails.
    sim.chip_mut(rtr_types::ids::NodeId(0)).stats_mut().tc_arrived += 1;
    match sim.check_conservation() {
        Err(violation) => eprintln!("flight sample: induced violation: {violation}"),
        Ok(()) => eprintln!("flight sample: conservation unexpectedly clean (metrics off?)"),
    }
    if sim.flight_recorder().and_then(|r| r.dumped()).is_some() {
        eprintln!("wrote flight-recorder sample to {path}");
    } else {
        // Still leave a marker file so CI artifact upload has something.
        let _ = std::fs::write(
            path,
            "{\"flight\": \"unavailable\", \"reason\": \"metrics feature disabled\"}\n",
        );
        eprintln!("flight recorder inactive (metrics feature off); wrote placeholder {path}");
    }
}

fn populated_tree(capacity: usize, fill: usize) -> ComparatorTree {
    let clock = SlotClock::new(8);
    let mut tree = ComparatorTree::new(capacity, clock, LatePolicy::Saturate);
    for i in 0..fill {
        tree.insert(Leaf {
            l: clock.wrap(60 + (i as u64 * 7) % 90),
            delay: 4 + (i as u32 * 13) % 100,
            port_mask: 1 << (i % 5),
            addr: SlotAddr(i as u16),
        })
        .unwrap();
    }
    tree
}

/// Warm selects over all five ports at a fixed slot time — the per-cycle
/// cost the router pays once the tournament cache is built.
fn run_scheduler_select(fill: usize, iters: usize) -> BenchResult {
    const READS_PER_ITER: u64 = 10_000;
    let clock = SlotClock::new(8);
    let t = clock.wrap(100);
    let tree = populated_tree(256, fill);
    let _ = tree.select(Port::Dir(Direction::XPlus), t); // build the cache
    let (min_s, mean_s) = time_runs(
        iters,
        || (),
        |&mut ()| {
            let mut acc = 0u64;
            for _ in 0..READS_PER_ITER / 5 {
                for port in Port::ALL {
                    if let Some(sel) = tree.select(port, t) {
                        acc = acc.wrapping_add(sel.leaf as u64);
                    }
                }
            }
            acc
        },
    );
    BenchResult {
        name: format!("scheduler_select_occ{fill}"),
        iters,
        min_s,
        mean_s,
        metric: min_s / READS_PER_ITER as f64 * 1e9,
        unit: "ns/select",
        extra: None,
    }
}

/// An 8×8 mesh under seeded uniform best-effort load.
fn loaded_mesh(workers: usize) -> Simulator<RealTimeRouter> {
    use rtr_workloads::be::{RandomBeSource, SizeDist};
    use rtr_workloads::patterns::TrafficPattern;
    let topo = Topology::mesh(8, 8);
    let template = rtr_core::RouterTemplate::new(RouterConfig::default()).unwrap();
    let mut sim =
        Simulator::build(topo.clone(), |_| Ok::<_, std::convert::Infallible>(template.build()))
            .unwrap();
    sim.set_parallelism(workers);
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.2,
                    SizeDist::Fixed(32),
                    u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
    sim
}

fn run_mesh(name: &str, workers: usize, cycles: u64, iters: usize) -> BenchResult {
    let nodes = 64u64;
    let (min_s, mean_s) = time_runs(
        iters,
        || loaded_mesh(workers),
        |sim| {
            sim.run_parallel(cycles);
            sim.now()
        },
    );
    BenchResult {
        name: name.to_string(),
        iters,
        min_s,
        mean_s,
        metric: (nodes * cycles) as f64 / min_s,
        unit: "node-cycles/s",
        extra: None,
    }
}

/// How a sparse-mesh scenario advances simulated time.
#[derive(Clone, Copy)]
enum Drive {
    /// Plain cycle stepping.
    Stepped,
    /// Leaping with the calendar-queue event core (the default).
    LeapQueue,
    /// Leaping with the original O(components) quiescence scan — kept so
    /// the pop-vs-scan cost difference stays measured.
    LeapScan,
}

/// A sparse mesh (four long-period one-hop TC channels — see
/// [`rtr_bench::leaping::periodic_mesh_sized`]) driven by one of the
/// [`Drive`] modes; the stepped/leaping pairs are the headline speedup
/// comparisons, and the queue/scan pair is the event-core cost comparison.
fn run_sparse_mesh(
    name: &str,
    width: u16,
    height: u16,
    period_slots: u64,
    drive: Drive,
    cycles: u64,
    iters: usize,
) -> BenchResult {
    let nodes = u64::from(width) * u64::from(height);
    let (min_s, mean_s) = time_runs(
        iters,
        || {
            let mut sim = rtr_bench::leaping::periodic_mesh_sized(width, height, period_slots);
            if let Drive::LeapScan = drive {
                sim.set_quiescence(Quiescence::Scan);
            }
            sim
        },
        |sim| {
            match drive {
                Drive::Stepped => sim.run(cycles),
                Drive::LeapQueue | Drive::LeapScan => sim.run_leaping(cycles),
            }
            sim.ticks_executed()
        },
    );
    // One extra untimed run on the event-queue drive to read the registry
    // counter columns (the timed runs stay measurement-only).
    let extra = match drive {
        Drive::LeapQueue => {
            let mut sim = rtr_bench::leaping::periodic_mesh_sized(width, height, period_slots);
            sim.run_leaping(cycles);
            let snapshot = sim.metrics_snapshot();
            if let Some(stale) = snapshot.counter("sim.stale_repolls") {
                // The cold-start prime re-polls every chip and source but
                // only the links actually carrying traffic, and nothing
                // re-primes mid-run — so the whole run's stale-repoll bill
                // is one prime, not a per-leap O(nodes) sweep. The slack
                // covers the handful of primed link handles.
                let sources = 4;
                let budget = nodes + sources + 256;
                assert!(
                    stale <= budget,
                    "{name}: sim.stale_repolls = {stale} exceeds the one-prime \
                     budget {budget} (stale-repoll blowup regressed)",
                );
            }
            registry_columns(&sim)
        }
        Drive::Stepped | Drive::LeapScan => None,
    };
    BenchResult {
        name: name.to_string(),
        iters,
        min_s,
        mean_s,
        metric: (nodes * cycles) as f64 / min_s,
        unit: "node-cycles/s",
        extra,
    }
}

/// Construction cost of a sparse sweep mesh — topology wiring, the router
/// chips (built from one shared [`rtr_core::RouterTemplate`]), CSR
/// link/feeder tables, and source hookup. Kept measured so big-mesh setup
/// stays cheap enough to amortise over a sweep; the 256×256 row is the
/// mega-mesh build-time deliverable (must land well under a second). Each
/// row also reports the freshly built simulator's per-node footprint
/// estimate as a `bytes_per_node` column — the struct-of-arrays layout's
/// memory guardrail, asserted under a hard ceiling by `tests/mega_mesh.rs`.
fn run_mesh_build(width: u16, height: u16, period_slots: u64, iters: usize) -> BenchResult {
    let (min_s, mean_s) = time_runs(
        iters,
        || (),
        |&mut ()| {
            let sim = rtr_bench::leaping::periodic_mesh_sized(width, height, period_slots);
            sim.topology().len() as u64
        },
    );
    let bytes_per_node =
        rtr_bench::leaping::periodic_mesh_sized(width, height, period_slots).bytes_per_node();
    BenchResult {
        name: format!("mesh_{width}x{height}_build"),
        iters,
        min_s,
        mean_s,
        metric: min_s * 1e3,
        unit: "ms/build",
        extra: Some(format!("\"bytes_per_node\": {bytes_per_node}")),
    }
}

/// A completely idle mesh leaped end to end — the O(events) floor of the
/// fast path (almost all wall-clock here is simulator bookkeeping).
fn run_idle_leap(cycles: u64, iters: usize) -> BenchResult {
    let nodes = 64u64;
    let (min_s, mean_s) = time_runs(
        iters,
        || {
            Simulator::build(Topology::mesh(8, 8), |_| RealTimeRouter::new(RouterConfig::default()))
                .unwrap()
        },
        |sim: &mut Simulator<RealTimeRouter>| {
            sim.run_leaping(cycles);
            sim.ticks_executed()
        },
    );
    BenchResult {
        name: "mesh_8x8_idle_leaping".to_string(),
        iters,
        min_s,
        mean_s,
        metric: (nodes * cycles) as f64 / min_s,
        unit: "node-cycles/s",
        extra: None,
    }
}

fn render_json(results: &[BenchResult], smoke: bool) -> String {
    // The vendored serde stub has no real serialisation, so the JSON is
    // written by hand; the format is flat on purpose.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"suite\": \"rtr-bench runner\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let extra = r.extra.as_ref().map(|e| format!(", {e}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_s\": {:.9}, \"mean_s\": {:.9}, \
             \"metric\": {:.1}, \"unit\": \"{}\"{extra}}}{comma}",
            r.name, r.iters, r.min_s, r.mean_s, r.metric, r.unit
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_8.json");
    let mut flight_sample: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            "--flight-sample" => match args.next() {
                Some(p) => flight_sample = Some(p),
                None => {
                    eprintln!("--flight-sample needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_runner [--smoke] [--out <path>] [--flight-sample <path>]");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &flight_sample {
        eprintln!("writing flight-recorder sample...");
        write_flight_sample(path);
    }

    let (router_iters, sched_iters, mesh_iters, mesh_cycles) =
        if smoke { (3, 3, 2, 200) } else { (30, 20, 10, 2000) };

    let mut results = Vec::new();
    eprintln!("router cycle throughput (1000 cycles, mixed TC/BE load)...");
    results.push(run_router_cycle("router_1000_cycles_mixed_load", 64, router_iters));
    eprintln!("router cycle throughput, same load, metrics collection on...");
    results.push(run_router_cycle_metrics(64, router_iters));
    eprintln!("router cycle throughput at full 256-slot occupancy...");
    results.push(run_router_cycle("router_1000_cycles_occ256", 256, router_iters));
    for fill in [16usize, 64, 128, 256] {
        eprintln!("scheduler select at occupancy {fill}...");
        results.push(run_scheduler_select(fill, sched_iters));
    }
    eprintln!("8x8 mesh stepping, serial...");
    results.push(run_mesh("mesh_8x8_serial", 1, mesh_cycles, mesh_iters));
    eprintln!("8x8 mesh stepping, 4 workers...");
    results.push(run_mesh("mesh_8x8_parallel4", 4, mesh_cycles, mesh_iters));
    eprintln!("8x8 mesh phase attribution, serial...");
    results.push(run_mesh_phases("mesh_8x8_serial_phases", 1, mesh_cycles));
    eprintln!("8x8 mesh phase attribution, 4 workers...");
    results.push(run_mesh_phases("mesh_8x8_parallel4_phases", 4, mesh_cycles));
    let (leap_cycles, idle_cycles) = if smoke { (2_000, 20_000) } else { (100_000, 1_000_000) };
    eprintln!("8x8 sparse mesh ({leap_cycles} cycles), stepped...");
    results.push(run_sparse_mesh(
        "mesh_8x8_sparse_stepped",
        8,
        8,
        64,
        Drive::Stepped,
        leap_cycles,
        mesh_iters,
    ));
    eprintln!("8x8 sparse mesh ({leap_cycles} cycles), leaping (event queue)...");
    results.push(run_sparse_mesh(
        "mesh_8x8_sparse_leaping",
        8,
        8,
        64,
        Drive::LeapQueue,
        leap_cycles,
        mesh_iters,
    ));
    eprintln!("8x8 sparse mesh ({leap_cycles} cycles), leaping (quiescence scan)...");
    results.push(run_sparse_mesh(
        "mesh_8x8_sparse_leaping_scan",
        8,
        8,
        64,
        Drive::LeapScan,
        leap_cycles,
        mesh_iters,
    ));
    eprintln!("8x8 idle mesh ({idle_cycles} cycles), leaping...");
    results.push(run_idle_leap(idle_cycles, mesh_iters));
    eprintln!("32x32 sparse mesh construction...");
    results.push(run_mesh_build(32, 32, 1024, mesh_iters));
    // 0.1% injection: period-1024 channels on the 1024-node mesh. The
    // stepped reference covers fewer cycles (1024 nodes make stepping
    // ~16× the 8×8 cost) — rates are per node-cycle, so they compare.
    let (sparse32_cycles, sparse32_stepped_cycles, sparse32_iters) =
        if smoke { (2_000, 500, 2) } else { (100_000, 25_000, 3.min(mesh_iters)) };
    eprintln!("32x32 sparse mesh ({sparse32_stepped_cycles} cycles), stepped...");
    results.push(run_sparse_mesh(
        "mesh_32x32_sparse_stepped",
        32,
        32,
        1024,
        Drive::Stepped,
        sparse32_stepped_cycles,
        sparse32_iters,
    ));
    eprintln!("32x32 sparse mesh ({sparse32_cycles} cycles), leaping (event queue)...");
    results.push(run_sparse_mesh(
        "mesh_32x32_sparse_leaping",
        32,
        32,
        1024,
        Drive::LeapQueue,
        sparse32_cycles,
        sparse32_iters,
    ));
    eprintln!("32x32 sparse mesh ({sparse32_cycles} cycles), leaping (quiescence scan)...");
    results.push(run_sparse_mesh(
        "mesh_32x32_sparse_leaping_scan",
        32,
        32,
        1024,
        Drive::LeapScan,
        sparse32_cycles,
        sparse32_iters,
    ));
    // The mega-mesh: 16 384 routers. Only the leaping drive is viable —
    // sparse ticking touches the handful of active chips and leaps over
    // everything else, so simulated throughput is set by events, not nodes.
    let (sparse128_cycles, sparse128_iters) = if smoke { (2_000, 1) } else { (100_000, 3) };
    eprintln!("128x128 sparse mesh construction...");
    results.push(run_mesh_build(128, 128, 4096, sparse128_iters));
    eprintln!("128x128 sparse mesh ({sparse128_cycles} cycles), leaping (event queue)...");
    results.push(run_sparse_mesh(
        "mesh_128x128_sparse_leaping",
        128,
        128,
        4096,
        Drive::LeapQueue,
        sparse128_cycles,
        sparse128_iters,
    ));
    // The 65 536-node mega-mesh — the full u16 node-identifier space. The
    // struct-of-arrays arenas and Arc-shared cold state are what make this
    // buildable in well under a second and leapable at all.
    let (sparse256_cycles, sparse256_iters) = if smoke { (2_000, 1) } else { (100_000, 2) };
    eprintln!("256x256 mega-mesh construction...");
    results.push(run_mesh_build(256, 256, 4096, sparse256_iters));
    eprintln!("256x256 mega-mesh ({sparse256_cycles} cycles), leaping (event queue)...");
    results.push(run_sparse_mesh(
        "mesh_256x256_sparse_leaping",
        256,
        256,
        4096,
        Drive::LeapQueue,
        sparse256_cycles,
        sparse256_iters,
    ));

    // The chaos rows are deterministic measurements (recovery windows and
    // loss columns), identical in smoke and full runs; wall-clock is
    // recorded but incidental.
    eprintln!("chaos fault-tolerance scenarios...");
    type ChaosFn = fn() -> rtr_bench::chaos::ChaosOutcome;
    let scenarios: [ChaosFn; 3] = [
        rtr_bench::chaos::link_down_recovery,
        rtr_bench::chaos::flaky_link,
        rtr_bench::chaos::node_crash,
    ];
    for scenario in scenarios {
        let start = Instant::now();
        let outcome = scenario();
        let elapsed = start.elapsed().as_secs_f64();
        let extra = format!(
            "\"fault_at\": {}, \"detected_at\": {}, \"rerouted_at\": {}, \
             \"recovered_at\": {}, \"reroute_latency\": {}, \
             \"victim_delivered\": {}, \"victim_misses\": {}, \
             \"bystander_delivered\": {}, \"bystander_misses\": {}, \
             \"symbols_lost\": {}, \"symbols_corrupted\": {}",
            outcome.fault_at,
            outcome.detected_at,
            outcome.rerouted_at,
            outcome.recovered_at,
            outcome.reroute_latency,
            outcome.victim_delivered,
            outcome.victim_misses,
            outcome.bystander_delivered,
            outcome.bystander_misses,
            outcome.symbols_lost,
            outcome.symbols_corrupted,
        );
        results.push(BenchResult {
            name: outcome.scenario.to_string(),
            iters: 1,
            min_s: elapsed,
            mean_s: elapsed,
            metric: outcome.violation_window as f64,
            unit: "cycles",
            extra: Some(extra),
        });
    }

    // The churn row: live establish/teardown under load through the
    // signaling engine. Deterministic like the chaos rows; the metric is
    // setup throughput, the columns are the admission/teardown ledger.
    eprintln!("connection churn under load...");
    {
        let start = Instant::now();
        let outcome = rtr_bench::churn::run();
        let elapsed = start.elapsed().as_secs_f64();
        let extra = format!(
            "\"attempted\": {}, \"accepted\": {}, \"rejected\": {}, \
             \"teardowns\": {}, \"table_writes\": {}, \"write_cost_cycles\": {}, \
             \"setup_cycles_per_establish\": {}, \"span_cycles\": {}, \
             \"control_ops_applied\": {}, \"control_ops_rejected\": {}, \
             \"aborted_packets\": {}, \"churn_delivered\": {}, \
             \"bystander_delivered\": {}, \"bystander_misses\": {}",
            outcome.attempted,
            outcome.accepted,
            outcome.rejected,
            outcome.teardowns,
            outcome.table_writes,
            outcome.write_cost_cycles,
            outcome.setup_cycles_per_establish,
            outcome.span_cycles,
            outcome.control_ops_applied,
            outcome.control_ops_rejected,
            outcome.aborted_packets,
            outcome.churn_delivered,
            outcome.bystander_delivered,
            outcome.bystander_misses,
        );
        results.push(BenchResult {
            name: outcome.scenario.to_string(),
            iters: 1,
            min_s: elapsed,
            mean_s: elapsed,
            metric: outcome.accepted_per_mcycle as f64,
            unit: "establishments/Mcycle",
            extra: Some(extra),
        });
    }

    let json = render_json(&results, smoke);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
