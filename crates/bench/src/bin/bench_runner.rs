//! `rtr-bench` runner: the recorded wall-clock benchmark suite.
//!
//! Runs the performance-critical scenarios — single-router cycle
//! throughput, scheduler selection cost across occupancies, full-mesh
//! stepping (serial and parallel), and the sparse leaping suite (8×8 and
//! 32×32, event-queue vs quiescence-scan) — with fixed seeds and
//! hand-rolled timing, then writes the results as JSON so a run can be
//! committed next to the code it measured (`BENCH_3.json`; earlier
//! revisions live in `BENCH_1.json` and `BENCH_2.json`).
//!
//! Usage:
//!
//! ```text
//! bench_runner [--smoke] [--out <path>]
//! ```
//!
//! `--smoke` shrinks iteration counts so CI can exercise the whole
//! pipeline in seconds; committed numbers come from a full run.

use std::fmt::Write as _;
use std::time::Instant;

use rtr_core::control::ControlCommand;
use rtr_core::memory::SlotAddr;
use rtr_core::sched::leaf::Leaf;
use rtr_core::sched::tree::ComparatorTree;
use rtr_core::RealTimeRouter;
use rtr_mesh::{Quiescence, Simulator, Topology};
use rtr_types::chip::{Chip, ChipIo};
use rtr_types::clock::SlotClock;
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, Port};
use rtr_types::key::LatePolicy;
use rtr_types::packet::{BePacket, PacketTrace, TcPacket};

/// One recorded benchmark result.
struct BenchResult {
    name: String,
    iters: usize,
    min_s: f64,
    mean_s: f64,
    /// Scenario-specific throughput figure.
    metric: f64,
    unit: &'static str,
}

/// Times `iters` runs of `work` over fresh untimed `setup` state (after
/// one untimed warm-up), returning (min, mean) seconds per run — the
/// `iter_batched` discipline of the Criterion benches, so numbers compare.
fn time_runs<S>(
    iters: usize,
    mut setup: impl FnMut() -> S,
    mut work: impl FnMut(S) -> u64,
) -> (f64, f64) {
    let mut sink = 0u64;
    sink = sink.wrapping_add(work(setup())); // warm-up
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let state = setup();
        let start = Instant::now();
        sink = sink.wrapping_add(work(state));
        times.push(start.elapsed().as_secs_f64());
    }
    // Keep the checksum alive so the work cannot be optimised away.
    std::hint::black_box(sink);
    let min = times.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    (min, mean)
}

/// A single router with three TC connections and a mixed TC/BE backlog of
/// `tc_packets` + 64 BE packets — the Criterion `router_cycle` scenario.
fn loaded_router(tc_packets: u64) -> (RealTimeRouter, ChipIo) {
    let mut router = RealTimeRouter::new(RouterConfig::default()).unwrap();
    let out = Port::Dir(Direction::XPlus);
    for i in 1..=3u16 {
        router
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(i),
                outgoing: ConnectionId(i),
                delay: 4 * u32::from(i),
                out_mask: out.mask(),
            })
            .unwrap();
    }
    let mut io = ChipIo::new();
    for k in 0..tc_packets {
        io.inject_tc.push_back(TcPacket {
            conn: ConnectionId((k % 3 + 1) as u16),
            arrival: router.clock().wrap(k),
            payload: vec![0; router.config().tc_data_bytes()].into(),
            trace: PacketTrace::default(),
        });
        if k < 64 {
            io.inject_be.push_back(BePacket::new(1, 0, vec![0; 60], PacketTrace::default()));
        }
    }
    (router, io)
}

fn run_router_cycle(name: &str, tc_packets: u64, iters: usize) -> BenchResult {
    const CYCLES: u64 = 1000;
    let (min_s, mean_s) = time_runs(
        iters,
        || loaded_router(tc_packets),
        |(mut router, mut io)| {
            for now in 0..CYCLES {
                io.begin_cycle();
                io.credit_in[1] = 1;
                router.tick(now, &mut io);
                io.tx = Default::default();
                io.credit_out = [0; 5];
            }
            router.stats().tc_transmitted[1]
        },
    );
    BenchResult {
        name: name.to_string(),
        iters,
        min_s,
        mean_s,
        metric: CYCLES as f64 / min_s,
        unit: "cycles/s",
    }
}

fn populated_tree(capacity: usize, fill: usize) -> ComparatorTree {
    let clock = SlotClock::new(8);
    let mut tree = ComparatorTree::new(capacity, clock, LatePolicy::Saturate);
    for i in 0..fill {
        tree.insert(Leaf {
            l: clock.wrap(60 + (i as u64 * 7) % 90),
            delay: 4 + (i as u32 * 13) % 100,
            port_mask: 1 << (i % 5),
            addr: SlotAddr(i as u16),
        })
        .unwrap();
    }
    tree
}

/// Warm selects over all five ports at a fixed slot time — the per-cycle
/// cost the router pays once the tournament cache is built.
fn run_scheduler_select(fill: usize, iters: usize) -> BenchResult {
    const READS_PER_ITER: u64 = 10_000;
    let clock = SlotClock::new(8);
    let t = clock.wrap(100);
    let tree = populated_tree(256, fill);
    let _ = tree.select(Port::Dir(Direction::XPlus), t); // build the cache
    let (min_s, mean_s) = time_runs(
        iters,
        || (),
        |()| {
            let mut acc = 0u64;
            for _ in 0..READS_PER_ITER / 5 {
                for port in Port::ALL {
                    if let Some(sel) = tree.select(port, t) {
                        acc = acc.wrapping_add(sel.leaf as u64);
                    }
                }
            }
            acc
        },
    );
    BenchResult {
        name: format!("scheduler_select_occ{fill}"),
        iters,
        min_s,
        mean_s,
        metric: min_s / READS_PER_ITER as f64 * 1e9,
        unit: "ns/select",
    }
}

/// An 8×8 mesh under seeded uniform best-effort load.
fn loaded_mesh(workers: usize) -> Simulator<RealTimeRouter> {
    use rtr_workloads::be::{RandomBeSource, SizeDist};
    use rtr_workloads::patterns::TrafficPattern;
    let topo = Topology::mesh(8, 8);
    let mut sim =
        Simulator::build(topo.clone(), |_| RealTimeRouter::new(RouterConfig::default())).unwrap();
    sim.set_parallelism(workers);
    for node in topo.nodes() {
        sim.add_source(
            node,
            Box::new(
                RandomBeSource::new(
                    topo.clone(),
                    TrafficPattern::Uniform,
                    0.2,
                    SizeDist::Fixed(32),
                    u64::from(node.0),
                )
                .with_max_queue(8),
            ),
        );
    }
    sim
}

fn run_mesh(name: &str, workers: usize, cycles: u64, iters: usize) -> BenchResult {
    let nodes = 64u64;
    let (min_s, mean_s) = time_runs(
        iters,
        || loaded_mesh(workers),
        |mut sim| {
            sim.run_parallel(cycles);
            sim.now()
        },
    );
    BenchResult {
        name: name.to_string(),
        iters,
        min_s,
        mean_s,
        metric: (nodes * cycles) as f64 / min_s,
        unit: "node-cycles/s",
    }
}

/// How a sparse-mesh scenario advances simulated time.
#[derive(Clone, Copy)]
enum Drive {
    /// Plain cycle stepping.
    Stepped,
    /// Leaping with the calendar-queue event core (the default).
    LeapQueue,
    /// Leaping with the original O(components) quiescence scan — kept so
    /// the pop-vs-scan cost difference stays measured.
    LeapScan,
}

/// A sparse mesh (four long-period one-hop TC channels — see
/// [`rtr_bench::leaping::periodic_mesh_sized`]) driven by one of the
/// [`Drive`] modes; the stepped/leaping pairs are the headline speedup
/// comparisons, and the queue/scan pair is the event-core cost comparison.
fn run_sparse_mesh(
    name: &str,
    width: u16,
    height: u16,
    period_slots: u64,
    drive: Drive,
    cycles: u64,
    iters: usize,
) -> BenchResult {
    let nodes = u64::from(width) * u64::from(height);
    let (min_s, mean_s) = time_runs(
        iters,
        || {
            let mut sim = rtr_bench::leaping::periodic_mesh_sized(width, height, period_slots);
            if let Drive::LeapScan = drive {
                sim.set_quiescence(Quiescence::Scan);
            }
            sim
        },
        |mut sim| {
            match drive {
                Drive::Stepped => sim.run(cycles),
                Drive::LeapQueue | Drive::LeapScan => sim.run_leaping(cycles),
            }
            sim.ticks_executed()
        },
    );
    BenchResult {
        name: name.to_string(),
        iters,
        min_s,
        mean_s,
        metric: (nodes * cycles) as f64 / min_s,
        unit: "node-cycles/s",
    }
}

/// Construction cost of the 32×32 sparse mesh — topology wiring, 1024
/// router chips, link/feeder tables, and source hookup. Kept measured so
/// big-mesh setup stays cheap enough to amortise over a sweep.
fn run_mesh_build(iters: usize) -> BenchResult {
    let (min_s, mean_s) = time_runs(
        iters,
        || (),
        |()| {
            let sim = rtr_bench::leaping::periodic_mesh_sized(32, 32, 1024);
            sim.topology().len() as u64
        },
    );
    BenchResult {
        name: "mesh_32x32_build".to_string(),
        iters,
        min_s,
        mean_s,
        metric: min_s * 1e3,
        unit: "ms/build",
    }
}

/// A completely idle mesh leaped end to end — the O(events) floor of the
/// fast path (almost all wall-clock here is simulator bookkeeping).
fn run_idle_leap(cycles: u64, iters: usize) -> BenchResult {
    let nodes = 64u64;
    let (min_s, mean_s) = time_runs(
        iters,
        || {
            Simulator::build(Topology::mesh(8, 8), |_| RealTimeRouter::new(RouterConfig::default()))
                .unwrap()
        },
        |mut sim: Simulator<RealTimeRouter>| {
            sim.run_leaping(cycles);
            sim.ticks_executed()
        },
    );
    BenchResult {
        name: "mesh_8x8_idle_leaping".to_string(),
        iters,
        min_s,
        mean_s,
        metric: (nodes * cycles) as f64 / min_s,
        unit: "node-cycles/s",
    }
}

fn render_json(results: &[BenchResult], smoke: bool) -> String {
    // The vendored serde stub has no real serialisation, so the JSON is
    // written by hand; the format is flat on purpose.
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"suite\": \"rtr-bench runner\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"iters\": {}, \"min_s\": {:.9}, \"mean_s\": {:.9}, \
             \"metric\": {:.1}, \"unit\": \"{}\"}}{comma}",
            r.name, r.iters, r.min_s, r.mean_s, r.metric, r.unit
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_3.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_runner [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let (router_iters, sched_iters, mesh_iters, mesh_cycles) =
        if smoke { (3, 3, 2, 200) } else { (30, 20, 10, 2000) };

    let mut results = Vec::new();
    eprintln!("router cycle throughput (1000 cycles, mixed TC/BE load)...");
    results.push(run_router_cycle("router_1000_cycles_mixed_load", 64, router_iters));
    eprintln!("router cycle throughput at full 256-slot occupancy...");
    results.push(run_router_cycle("router_1000_cycles_occ256", 256, router_iters));
    for fill in [16usize, 64, 128, 256] {
        eprintln!("scheduler select at occupancy {fill}...");
        results.push(run_scheduler_select(fill, sched_iters));
    }
    eprintln!("8x8 mesh stepping, serial...");
    results.push(run_mesh("mesh_8x8_serial", 1, mesh_cycles, mesh_iters));
    eprintln!("8x8 mesh stepping, 4 workers...");
    results.push(run_mesh("mesh_8x8_parallel4", 4, mesh_cycles, mesh_iters));
    let (leap_cycles, idle_cycles) = if smoke { (2_000, 20_000) } else { (100_000, 1_000_000) };
    eprintln!("8x8 sparse mesh ({leap_cycles} cycles), stepped...");
    results.push(run_sparse_mesh(
        "mesh_8x8_sparse_stepped",
        8,
        8,
        64,
        Drive::Stepped,
        leap_cycles,
        mesh_iters,
    ));
    eprintln!("8x8 sparse mesh ({leap_cycles} cycles), leaping (event queue)...");
    results.push(run_sparse_mesh(
        "mesh_8x8_sparse_leaping",
        8,
        8,
        64,
        Drive::LeapQueue,
        leap_cycles,
        mesh_iters,
    ));
    eprintln!("8x8 sparse mesh ({leap_cycles} cycles), leaping (quiescence scan)...");
    results.push(run_sparse_mesh(
        "mesh_8x8_sparse_leaping_scan",
        8,
        8,
        64,
        Drive::LeapScan,
        leap_cycles,
        mesh_iters,
    ));
    eprintln!("8x8 idle mesh ({idle_cycles} cycles), leaping...");
    results.push(run_idle_leap(idle_cycles, mesh_iters));
    eprintln!("32x32 sparse mesh construction...");
    results.push(run_mesh_build(mesh_iters));
    // 0.1% injection: period-1024 channels on the 1024-node mesh. The
    // stepped reference covers fewer cycles (1024 nodes make stepping
    // ~16× the 8×8 cost) — rates are per node-cycle, so they compare.
    let (sparse32_cycles, sparse32_stepped_cycles, sparse32_iters) =
        if smoke { (2_000, 500, 2) } else { (100_000, 25_000, 3.min(mesh_iters)) };
    eprintln!("32x32 sparse mesh ({sparse32_stepped_cycles} cycles), stepped...");
    results.push(run_sparse_mesh(
        "mesh_32x32_sparse_stepped",
        32,
        32,
        1024,
        Drive::Stepped,
        sparse32_stepped_cycles,
        sparse32_iters,
    ));
    eprintln!("32x32 sparse mesh ({sparse32_cycles} cycles), leaping (event queue)...");
    results.push(run_sparse_mesh(
        "mesh_32x32_sparse_leaping",
        32,
        32,
        1024,
        Drive::LeapQueue,
        sparse32_cycles,
        sparse32_iters,
    ));
    eprintln!("32x32 sparse mesh ({sparse32_cycles} cycles), leaping (quiescence scan)...");
    results.push(run_sparse_mesh(
        "mesh_32x32_sparse_leaping_scan",
        32,
        32,
        1024,
        Drive::LeapScan,
        sparse32_cycles,
        sparse32_iters,
    ));

    let json = render_json(&results, smoke);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
