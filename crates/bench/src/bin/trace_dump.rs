//! Replays a JSONL trace (written by `network_console trace=<path>` or any
//! [`rtr_types::trace::JsonlSink`]) into human-readable per-connection
//! timelines plus a slack summary. Metric lines (`network_console
//! metrics=<path>`) and flight-recorder dumps share the same flat-JSONL
//! shape, so the tool reads those too: metric lines become a `metrics_dump`
//! summary and flight events a post-mortem timeline, interleaved or alone.
//!
//! The JSONL codecs live in `rtr-types`/`rtr-metrics` and need no feature
//! flags, so this tool always builds — only *recording* needs
//! `--features trace` (packet traces) or `--features metrics` (snapshots).
//!
//! ```text
//! cargo run --release -p rtr-bench --bin trace_dump -- <trace.jsonl> \
//!     [conn=<id>] [packets=<K>]
//! ```
//!
//! `conn=` restricts the report to one connection; `packets=` controls how
//! many per-packet timelines are printed per connection (default 1).

use std::collections::BTreeMap;

use rtr_metrics::{MetricLine, MetricValue};
use rtr_types::trace::{parse_jsonl, TraceEvent, TraceRecord};

const USAGE: &str = "\
usage: trace_dump <trace.jsonl> [conn=<id>] [packets=<K>]

  conn=N      only report connection N
  packets=K   per-packet timelines printed per connection (default 1)";

/// Everything we learned about one packet from its event chain.
struct PacketChain {
    conn: Option<u16>,
    records: Vec<TraceRecord>,
    delivered_slack: Option<i64>,
    dropped: bool,
}

fn describe(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::TcInject { conn, .. } => format!("tc_inject     conn {}", conn.0),
        TraceEvent::TcArrive { conn, port, .. } => {
            format!("tc_arrive     conn {}  in-port {port}", conn.0)
        }
        TraceEvent::SlotAlloc { conn, slot, .. } => {
            format!("slot_alloc    conn {}  slot {slot}", conn.0)
        }
        TraceEvent::SlotFree { slot } => format!("slot_free     slot {slot}"),
        TraceEvent::SchedSelect { conn, port, class, .. } => {
            format!("sched_select  conn {}  out-port {port}  {class:?}", conn.0)
        }
        TraceEvent::TcTransmit { conn, port, early, slack, .. } => format!(
            "tc_transmit   conn {}  out-port {port}  slack {slack}{}",
            conn.0,
            if early { "  (early)" } else { "" }
        ),
        TraceEvent::TcCutThrough { conn, port, .. } => {
            format!("tc_cut_through conn {}  out-port {port}", conn.0)
        }
        TraceEvent::TcDrop { conn, reason, .. } => {
            format!("tc_drop       conn {}  {reason:?}", conn.0)
        }
        TraceEvent::TcDeliver { conn, slack, .. } => {
            format!("tc_deliver    conn {}  slack {slack}", conn.0)
        }
        TraceEvent::BeSelect { port, input } => {
            format!("be_select     out-port {port}  from in-port {input}")
        }
        TraceEvent::BeDeliver { .. } => "be_deliver".to_string(),
    }
}

fn event_conn(event: &TraceEvent) -> Option<u16> {
    match *event {
        TraceEvent::TcInject { conn, .. }
        | TraceEvent::TcArrive { conn, .. }
        | TraceEvent::SlotAlloc { conn, .. }
        | TraceEvent::SchedSelect { conn, .. }
        | TraceEvent::TcTransmit { conn, .. }
        | TraceEvent::TcCutThrough { conn, .. }
        | TraceEvent::TcDrop { conn, .. }
        | TraceEvent::TcDeliver { conn, .. } => Some(conn.0),
        TraceEvent::SlotFree { .. }
        | TraceEvent::BeSelect { .. }
        | TraceEvent::BeDeliver { .. } => None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut only_conn: Option<u16> = None;
    let mut packets_per_conn = 1usize;
    for arg in &args {
        if let Some(v) = arg.strip_prefix("conn=") {
            match v.parse() {
                Ok(c) => only_conn = Some(c),
                Err(_) => fail(&format!("bad value for conn={v}")),
            }
        } else if let Some(v) = arg.strip_prefix("packets=") {
            match v.parse() {
                Ok(k) => packets_per_conn = k,
                Err(_) => fail(&format!("bad value for packets={v}")),
            }
        } else if arg.contains('=') || path.is_some() {
            fail(&format!("unexpected argument `{arg}`"));
        } else {
            path = Some(arg.clone());
        }
    }
    let Some(path) = path else {
        fail("missing trace file path");
    };

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    // Partition observability lines (metric snapshots, flight-recorder
    // headers and events) out of the stream before trace parsing, so one
    // tool reads console traces, metrics files, and flight dumps alike.
    let mut metric_lines: Vec<MetricLine> = Vec::new();
    let mut flight_header: Option<String> = None;
    let mut flight_events: Vec<String> = Vec::new();
    let mut trace_text = String::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(metric) = MetricLine::parse(trimmed) {
            metric_lines.push(metric);
        } else if trimmed.contains("\"flight\": \"dump\"") {
            flight_header = Some(trimmed.to_string());
        } else if trimmed.contains("\"ev\": \"") {
            flight_events.push(trimmed.to_string());
        } else {
            trace_text.push_str(trimmed);
            trace_text.push('\n');
        }
    }

    if let Some(header) = &flight_header {
        println!("flight-recorder dump: {header}");
        for event in &flight_events {
            println!("  {event}");
        }
    }
    print_metrics_dump(&metric_lines);

    let records =
        parse_jsonl(&trace_text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
    if records.is_empty() {
        if flight_header.is_none() && metric_lines.is_empty() && flight_events.is_empty() {
            println!("{path}: empty trace");
        }
        return;
    }

    let first = records.iter().map(|r| r.cycle).min().unwrap();
    let last = records.iter().map(|r| r.cycle).max().unwrap();
    let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rec in &records {
        *by_kind.entry(rec.event.tag()).or_default() += 1;
    }
    println!("{path}: {} records, cycles {first}..{last}", records.len());
    print!("events:");
    for (tag, n) in &by_kind {
        print!("  {tag} {n}");
    }
    println!();

    // Stitch per-packet chains across nodes using the (src, seq) provenance.
    // Best-effort events are left out: BE sources number their packets
    // independently of the channel senders, so a BE (src, seq) pair can
    // collide with a time-constrained one.
    let mut chains: BTreeMap<(u16, u64), PacketChain> = BTreeMap::new();
    for rec in &records {
        if matches!(rec.event, TraceEvent::BeSelect { .. } | TraceEvent::BeDeliver { .. }) {
            continue;
        }
        let Some((src, seq)) = rec.event.packet_id() else { continue };
        let chain = chains.entry((src.0, seq)).or_insert(PacketChain {
            conn: None,
            records: Vec::new(),
            delivered_slack: None,
            dropped: false,
        });
        if chain.conn.is_none() {
            chain.conn = event_conn(&rec.event);
        }
        match rec.event {
            TraceEvent::TcDeliver { slack, .. } => chain.delivered_slack = Some(slack),
            TraceEvent::TcDrop { .. } => chain.dropped = true,
            _ => {}
        }
        chain.records.push(*rec);
    }
    for chain in chains.values_mut() {
        chain.records.sort_by_key(|r| r.cycle);
    }

    // Group packets by connection for the per-connection report.
    let mut by_conn: BTreeMap<u16, Vec<&PacketChain>> = BTreeMap::new();
    for chain in chains.values() {
        if let Some(conn) = chain.conn {
            if only_conn.is_none() || only_conn == Some(conn) {
                by_conn.entry(conn).or_default().push(chain);
            }
        }
    }
    if by_conn.is_empty() {
        println!();
        println!(
            "no time-constrained packet chains{}",
            match only_conn {
                Some(c) => format!(" on connection {c}"),
                None => String::new(),
            }
        );
        return;
    }

    for (conn, packets) in &by_conn {
        let delivered: Vec<i64> = packets.iter().filter_map(|p| p.delivered_slack).collect();
        let dropped = packets.iter().filter(|p| p.dropped).count();
        let in_flight = packets.len() - delivered.len() - dropped;
        println!();
        println!(
            "connection {conn} (id at first traced hop): {} packets \
             ({} delivered, {} dropped, {} in flight)",
            packets.len(),
            delivered.len(),
            dropped,
            in_flight
        );
        if !delivered.is_empty() {
            let min = delivered.iter().copied().min().unwrap();
            let mean = delivered.iter().sum::<i64>() as f64 / delivered.len() as f64;
            println!("  delivery slack (slots): min {min}  mean {mean:.1}");
        }
        for packet in packets.iter().take(packets_per_conn) {
            let (src, seq) = packet.records[0]
                .event
                .packet_id()
                .expect("chains only hold provenance-bearing events");
            println!("  packet src {} seq {seq}:", src.0);
            for rec in &packet.records {
                println!(
                    "    cycle {:>8}  node {:>3}  {}",
                    rec.cycle,
                    rec.node.0,
                    describe(&rec.event)
                );
            }
        }
    }
}

/// The `metrics_dump` summary: the final registry snapshot in the file,
/// counters/gauges one per line, histograms as count/mean/max. Earlier
/// snapshots (from `metrics_every=N` streaming) are only counted.
fn print_metrics_dump(lines: &[MetricLine]) {
    if lines.is_empty() {
        return;
    }
    let last_cycle = lines.iter().map(|m| m.cycle).max().unwrap();
    let snapshots = {
        let mut cycles: Vec<u64> = lines.iter().map(|m| m.cycle).collect();
        cycles.sort_unstable();
        cycles.dedup();
        cycles.len()
    };
    println!();
    println!(
        "metrics_dump: {} metrics at cycle {last_cycle}{}",
        lines.iter().filter(|m| m.cycle == last_cycle).count(),
        if snapshots > 1 { format!(" (last of {snapshots} snapshots)") } else { String::new() }
    );
    for metric in lines.iter().filter(|m| m.cycle == last_cycle) {
        match &metric.value {
            MetricValue::Counter(v) => println!("  {:<34} {v}", metric.name),
            MetricValue::Gauge(v) => println!("  {:<34} {v}  (gauge)", metric.name),
            MetricValue::Histogram(h) => println!(
                "  {:<34} count {}  mean {:.1}  max {}",
                metric.name,
                h.count,
                h.mean(),
                h.max
            ),
        }
    }
}

fn fail(message: &str) -> ! {
    eprintln!("trace_dump: {message}\n\n{USAGE}");
    std::process::exit(2);
}
