//! Table 4 (paper §5.1): the router specification — architectural
//! parameters (4a) and estimated chip complexity (4b) from the analytical
//! hardware model.

use rtr_hwcost::HardwareModel;
use rtr_types::config::{table2_policy, RouterConfig};
use rtr_types::ids::TrafficClass;

fn main() {
    let config = RouterConfig::default();
    println!("Table 4(a) — architectural parameters");
    println!("  Connections:               {}", config.connections);
    println!("  Time-constrained packets:  {}", config.packet_slots);
    println!("  Clock (sorting key):       {} ({}) bits", config.clock_bits, config.key_bits());
    println!("  Comparator tree pipeline:  {} stages", config.sched_pipeline_stages);
    println!("  Flit input buffer:         {} bytes", config.flit_buffer_bytes);
    println!("  Packet size:               {} bytes", config.slot_bytes);
    println!();

    let report = HardwareModel::new(config.clone()).report();
    println!(
        "Table 4(b) — estimated chip complexity (paper: 905,104 T; 8.1 × 8.7 mm; 2.3 W; 123 pins)"
    );
    for block in &report.blocks {
        println!(
            "  {:<22} {:>9} transistors ({:>4.1}%)",
            block.name,
            block.transistors,
            100.0 * block.transistors as f64 / report.total_transistors as f64
        );
    }
    println!("  {:<22} {:>9} transistors", "TOTAL", report.total_transistors);
    println!("  Estimated area:            {:.1} mm²", report.area_mm2);
    println!("  Estimated power:           {:.2} W", report.power_w);
    println!("  Signal pins:               {}", report.signal_pins);
    println!(
        "  Scheduling logic dominates (paper's observation): {}",
        report.scheduler_dominates()
    );
    println!();

    let t = report.tree;
    println!("Comparator-tree timing (§5.1):");
    println!("  levels: {}   stages: {}   stage: {:.1} ns", t.levels, t.stages, t.stage_ns);
    println!(
        "  selections per {}-cycle slot: {:.1} → supports {} output ports (chip has 5)",
        config.slot_bytes, t.selections_per_slot, t.ports_supported
    );
    println!();

    println!("Table 2 — per-class policies:");
    for class in [TrafficClass::TimeConstrained, TrafficClass::BestEffort] {
        let p = table2_policy(class);
        println!("  {class}: {p:?}");
    }
    println!();

    println!("Scaling study (§5.1 — larger trees, deeper pipelines):");
    println!(
        "  {:>7} {:>7} {:>12} {:>9} {:>7} {:>9}",
        "packets", "stages", "transistors", "mm²", "ports", "5-port?"
    );
    for row in rtr_hwcost::scaling_table(&[64, 256, 1024, 4096], &[2, 5]) {
        println!(
            "  {:>7} {:>7} {:>12} {:>9.1} {:>7} {:>9}",
            row.packet_slots,
            row.stages,
            row.transistors,
            row.area_mm2,
            row.ports_supported,
            row.feasible_for_five_ports
        );
    }
}
