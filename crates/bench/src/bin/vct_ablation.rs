//! Extension X7 (paper §7): virtual cut-through for time-constrained
//! traffic — per-hop latency saving at zero cost to guarantees.

fn main() {
    let rows = rtr_bench::vct::run(&[1, 2, 3, 4, 6], 60_000);
    println!("Virtual cut-through ablation — light periodic load over a chain");
    println!();
    println!(
        "{:>6} {:>16} {:>16} {:>14} {:>10} {:>8}",
        "hops", "buffered cycles", "cut-through", "saved per hop", "cut frac", "misses"
    );
    for r in &rows {
        println!(
            "{:>6} {:>16.1} {:>16.1} {:>14.1} {:>10.2} {:>8}",
            r.hops,
            r.buffered_latency,
            r.cut_latency,
            r.saving_per_hop(),
            r.cut_fraction,
            r.misses
        );
    }
    println!();
    println!("expected shape: per-hop saving ≈ packet time + store/schedule waits;");
    println!("misses stay 0 — the §7 claim that cut-through improves average latency");
    println!("without touching the guarantees.");
}
