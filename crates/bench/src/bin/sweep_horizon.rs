//! Extension X1: the horizon trade-off (paper §2/§4.1) — larger `h` lowers
//! latency for early traffic but requires more downstream buffering.

fn main() {
    let rows = rtr_bench::horizon::run(&[0, 2, 4, 8, 16, 32, 64], 60_000);
    println!("Horizon sweep — one backlogged connection over a 3-node chain");
    println!();
    println!(
        "{:>8} {:>14} {:>12} {:>10} {:>14} {:>8}",
        "h slots", "mean latency", "early sends", "dst held", "reserve (§2)", "misses"
    );
    for r in &rows {
        println!(
            "{:>8} {:>14.1} {:>12} {:>10} {:>14} {:>8}",
            r.horizon,
            r.mean_latency,
            r.early_transmissions,
            r.dst_held_packets,
            r.required_reservation,
            r.deadline_misses
        );
    }
    println!();
    println!("expected shape: latency falls with h; destination buffering (measured and");
    println!("reserved) rises with h; misses stay 0 — the §2/§4.1 trade-off.");
}
