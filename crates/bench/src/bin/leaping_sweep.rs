//! Prints the event-driven leaping sweep: stepped vs leaping wall-clock
//! at ~1%, ~10%, and ~50% injection (see `EXPERIMENTS.md`, "Event-driven
//! leaping").
//!
//! Usage:
//!
//! ```text
//! leaping_sweep [--cycles N] [--iters N]
//! ```

fn main() {
    let mut cycles = 100_000u64;
    let mut iters = 5usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next().and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs a number");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--cycles" => cycles = grab("--cycles"),
            "--iters" => iters = grab("--iters") as usize,
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: leaping_sweep [--cycles N] [--iters N]");
                std::process::exit(2);
            }
        }
    }

    println!("event-driven leaping sweep: 8x8 mesh, {cycles} cycles, best of {iters}");
    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>9} {:>14} {:>14} {:>10} {:>11} {:>12}",
        "period",
        "~inject",
        "stepped",
        "leaping",
        "speedup",
        "stepped-ticks",
        "leaping-ticks",
        "short-poll",
        "guard-only",
        "guard-cycles"
    );
    for point in rtr_bench::leaping::run(cycles, iters) {
        println!(
            "{:>10}sl {:>9.1}% {:>11.4}s {:>11.4}s {:>8.1}x {:>14} {:>14} {:>9.1}% {:>11} {:>12}",
            point.period_slots,
            100.0 / point.period_slots as f64,
            point.stepped_s,
            point.leaping_s,
            point.speedup(),
            point.stepped_ticks,
            point.leaping_ticks,
            100.0 * point.short_poll_rate(),
            point.wake.sync_guard_only,
            point.wake.sync_guard_foregone,
        );
    }
}
