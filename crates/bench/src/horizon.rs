//! Extension experiment X1: the horizon trade-off (paper §2, §4.1).
//!
//! "Larger horizon values permit earlier transmission of time-constrained
//! packets, but require connections to reserve more buffer space at the
//! downstream node." A backlogged connection crosses a three-node chain and
//! each horizon value is evaluated two ways:
//!
//! * **horizon on every port** (including the destination's reception
//!   port): early traffic flows all the way through, so mean end-to-end
//!   latency falls as `h` grows;
//! * **horizon on network ports only**: the reception port still enforces
//!   eligibility, so traffic released early upstream *accumulates at the
//!   destination router* — the measured occupancy and the paper's §2
//!   reservation formula both grow with `h`.

use rtr_channels::admission::buffers_needed;
use rtr_channels::establish::ChannelManager;
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::stats::LatencySummary;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::RouterConfig;
use rtr_types::ids::Port;
use rtr_types::time::Cycle;
use rtr_workloads::tc::BackloggedTcSource;

const I_MIN: u32 = 16;
const DEADLINE: u32 = 48;

/// One row of the horizon sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonRow {
    /// Horizon register value, slots.
    pub horizon: u32,
    /// Mean end-to-end latency (cycles) with the horizon on every port.
    pub mean_latency: f64,
    /// Early transmissions summed over the route (all-ports run).
    pub early_transmissions: u64,
    /// Peak destination-router memory occupancy when the reception port
    /// still enforces eligibility (network-ports-only run).
    pub dst_held_packets: usize,
    /// Buffers the §2 formula requires the connection to reserve at the
    /// destination for this horizon.
    pub required_reservation: usize,
    /// End-to-end deadline misses across both runs (must stay zero).
    pub deadline_misses: usize,
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics if channel establishment fails (the scenario is well inside
/// admissible load).
#[must_use]
pub fn run(horizons: &[u32], total_cycles: Cycle) -> Vec<HorizonRow> {
    horizons.iter().map(|&h| run_one(h, total_cycles)).collect()
}

/// Builds the 3-node chain with one backlogged channel and the given
/// horizon applied to the ports selected by `mask`.
fn build(horizon: u32, mask: u8, total_cycles: Cycle) -> (Simulator<RealTimeRouter>, u32) {
    let config = RouterConfig::default();
    let topo = Topology::mesh(3, 1);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let src = topo.node_at(0, 0);
    let dst = topo.node_at(2, 0);

    let mut manager = ChannelManager::new(&config);
    manager.set_assumed_horizon(horizon);
    let channel = manager
        .establish(
            &topo,
            ChannelRequest::unicast(src, dst, TrafficSpec::periodic(I_MIN, 18), DEADLINE),
            &mut sim,
        )
        .expect("single low-utilisation channel must be admitted");
    let d_prev = channel.hops[channel.hops.len() - 2].delay;
    let d_dst = channel.hops.last().unwrap().delay;
    let required = buffers_needed(&channel.request.spec, 1, horizon, d_prev, d_dst, false) as u32;

    for node in topo.nodes() {
        sim.chip_mut(node)
            .apply_control(ControlCommand::SetHorizon { port_mask: mask, horizon })
            .unwrap();
    }
    let sender = ChannelSender::new(
        &channel,
        sim.chip(src).clock(),
        config.slot_bytes,
        config.tc_data_bytes(),
    );
    // Lead 3 messages: logical arrival times run up to 48 slots ahead, so
    // there is plenty of "early" traffic for the horizon to release.
    sim.add_source(
        src,
        Box::new(BackloggedTcSource::new(
            sender,
            I_MIN,
            3,
            config.slot_bytes,
            vec![0x11; config.tc_data_bytes()],
        )),
    );
    sim.run(total_cycles);
    (sim, required)
}

fn run_one(horizon: u32, total_cycles: Cycle) -> HorizonRow {
    let topo = Topology::mesh(3, 1);
    let dst = topo.node_at(2, 0);
    let slot_bytes = RouterConfig::default().slot_bytes;

    // Run 1: horizon on every port — latency improvement.
    let (through, _) = build(horizon, 0b1_1111, total_cycles);
    let latencies = through.log(dst).tc_latencies();
    let early: u64 = topo
        .nodes()
        .map(|n| through.chip(n).stats().tc_early_transmitted.iter().sum::<u64>())
        .sum();
    let misses_a = through.log(dst).tc_deadline_misses(slot_bytes);

    // Run 2: horizon on network ports only — downstream buffering cost.
    let network_mask = 0b1_1111 & !Port::Local.mask();
    let (held, required) = build(horizon, network_mask, total_cycles);
    let misses_b = held.log(dst).tc_deadline_misses(slot_bytes);

    HorizonRow {
        horizon,
        mean_latency: LatencySummary::of(&latencies).mean,
        early_transmissions: early,
        dst_held_packets: held.chip(dst).memory_high_water(),
        required_reservation: required as usize,
        deadline_misses: misses_a + misses_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_horizons_cut_latency_and_grow_buffers() {
        let rows = run(&[0, 64], 60_000);
        assert!(
            rows[1].mean_latency < rows[0].mean_latency * 0.8,
            "h=64 latency {} must beat h=0 latency {}",
            rows[1].mean_latency,
            rows[0].mean_latency
        );
        assert!(rows[1].early_transmissions > 0);
        assert_eq!(rows[0].early_transmissions, 0, "h = 0 never sends early");
        assert!(
            rows[1].dst_held_packets > rows[0].dst_held_packets,
            "early traffic must pile up at the destination: {} vs {}",
            rows[1].dst_held_packets,
            rows[0].dst_held_packets
        );
        assert!(rows[1].required_reservation > rows[0].required_reservation);
        assert!(
            rows[1].dst_held_packets <= rows[1].required_reservation,
            "the §2 formula must cover the observed occupancy"
        );
        for row in &rows {
            assert_eq!(row.deadline_misses, 0, "horizons never break guarantees");
        }
    }
}
