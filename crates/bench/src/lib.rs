//! Experiment harness: one module per paper table/figure plus the
//! extension sweeps (see `DESIGN.md` §4 for the experiment index).
//!
//! Each module exposes a `run` function returning structured results; the
//! `src/bin/*` targets print them in the paper's format, the Criterion
//! benches time them, and the integration tests assert their shapes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline_compare;
pub mod chaos;
pub mod churn;
pub mod exp1;
pub mod fig7;
pub mod horizon;
pub mod leaping;
pub mod load_latency;
pub mod mesh_guarantees;
pub mod sched_ablation;
pub mod util;
pub mod vct;
