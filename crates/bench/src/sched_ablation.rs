//! Extension experiment X8 (paper §7): exact vs approximate link
//! scheduling.
//!
//! One tight-deadline connection converges on a reception port with six
//! loose-deadline connections of the same period. The exact comparator tree
//! orders by deadline, so the tight packet always goes first. The banded
//! approximation serves FIFO within a laxity band: once the band width
//! swallows the gap between the tight and loose delay bounds, the loose
//! packets (which arrive first each period) are served first and the tight
//! connection starts missing — the precise trade-off the paper flags for
//! its "approximate versions of real-time channels".

use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::stats::LatencySummary;
use rtr_mesh::{Simulator, Topology};
use rtr_types::config::{RouterConfig, SchedulerKind};
use rtr_types::ids::{ConnectionId, Direction, NodeId, Port};
use rtr_types::time::Cycle;

use rtr_channels::establish::{EstablishedChannel, Hop};
use rtr_channels::sender::ChannelSender;
use rtr_channels::spec::{ChannelRequest, TrafficSpec};
use rtr_workloads::tc::PeriodicTcSource;

/// One row of the ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedRow {
    /// The scheduler variant.
    pub kind: SchedulerKind,
    /// Band width in slots (1 for the exact tree).
    pub band_slots: u32,
    /// Tight-connection packets delivered.
    pub delivered: usize,
    /// Tight-connection deadline misses.
    pub misses: usize,
    /// Tight-connection mean latency, cycles.
    pub mean_latency: f64,
}

const PERIOD: u32 = 8;
const TIGHT_D: u32 = 2;
const LOOSE_D: u32 = 8;

fn run_one(kind: SchedulerKind, total_cycles: Cycle) -> SchedRow {
    let config = RouterConfig { scheduler: kind, ..RouterConfig::default() };
    // A 3×3 mesh with the destination at the centre: every period, loose
    // packets converge on its reception port from four input ports at
    // once, so a real FIFO queue forms there each period.
    let topo = Topology::mesh(3, 3);
    let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
    let west = topo.node_at(0, 1);
    let east = topo.node_at(2, 1);
    let north = topo.node_at(1, 2);
    let south = topo.node_at(1, 0);
    let dst = topo.node_at(1, 1);

    // Programs a 1- or 2-hop channel ending at dst's reception port.
    let mut mk_channel = |conn: u16, src: NodeId, dir: Option<Direction>, d: u32| {
        let mut hops = Vec::new();
        if let Some(dir) = dir {
            sim.chip_mut(src)
                .apply_control(ControlCommand::SetConnection {
                    incoming: ConnectionId(conn),
                    outgoing: ConnectionId(conn),
                    delay: d,
                    out_mask: Port::Dir(dir).mask(),
                })
                .unwrap();
            hops.push(Hop {
                node: src,
                conn: ConnectionId(conn),
                out_conn: ConnectionId(conn),
                delay: d,
                out_mask: Port::Dir(dir).mask(),
                buffers: 2,
            });
        }
        sim.chip_mut(dst)
            .apply_control(ControlCommand::SetConnection {
                incoming: ConnectionId(conn),
                outgoing: ConnectionId(conn),
                delay: d,
                out_mask: Port::Local.mask(),
            })
            .unwrap();
        hops.push(Hop {
            node: dst,
            conn: ConnectionId(conn),
            out_conn: ConnectionId(conn),
            delay: d,
            out_mask: Port::Local.mask(),
            buffers: 2,
        });
        let depth = hops.len() as u32;
        EstablishedChannel {
            id: u64::from(conn),
            ingress: ConnectionId(conn),
            depth,
            guaranteed: depth * d,
            hops,
            request: ChannelRequest::unicast(
                src,
                dst,
                TrafficSpec::periodic(PERIOD, 18),
                depth * d,
            ),
        }
    };

    // Six loose connections: one sharing the tight channel's west link,
    // the rest converging from the other three directions. Total reserved
    // utilisation at the reception port: 7/8.
    let loose = vec![
        mk_channel(2, west, Some(Direction::XPlus), LOOSE_D),
        mk_channel(3, east, Some(Direction::XMinus), LOOSE_D),
        mk_channel(4, east, Some(Direction::XMinus), LOOSE_D),
        mk_channel(5, north, Some(Direction::YMinus), LOOSE_D),
        mk_channel(6, north, Some(Direction::YMinus), LOOSE_D),
        mk_channel(7, south, Some(Direction::YPlus), LOOSE_D),
    ];
    let tight = mk_channel(1, west, Some(Direction::XPlus), TIGHT_D);

    let clock = sim.chip(west).clock();
    // All senders fire at the start of each period; the tight sender is
    // registered after its co-located loose sender, so FIFO order at the
    // shared queue favours the loose packets.
    for ch in &loose {
        let sender = ChannelSender::new(ch, clock, config.slot_bytes, config.tc_data_bytes());
        sim.add_source(
            ch.request.source,
            Box::new(PeriodicTcSource::new(
                sender,
                u64::from(PERIOD),
                0,
                config.slot_bytes,
                vec![0x10; config.tc_data_bytes()],
            )),
        );
    }
    let sender = ChannelSender::new(&tight, clock, config.slot_bytes, config.tc_data_bytes());
    sim.add_source(
        west,
        Box::new(PeriodicTcSource::new(
            sender,
            u64::from(PERIOD),
            0,
            config.slot_bytes,
            vec![0xFF; config.tc_data_bytes()],
        )),
    );

    sim.run(total_cycles);

    let log = sim.log(dst);
    let tight_packets: Vec<_> = log.tc.iter().filter(|(_, p)| p.payload[0] == 0xFF).collect();
    let misses = tight_packets
        .iter()
        .filter(|(c, p)| rtr_types::time::cycle_to_slot(*c, config.slot_bytes) > p.trace.deadline)
        .count();
    let lat = LatencySummary::of(
        &tight_packets
            .iter()
            .map(|(c, p)| c.saturating_sub(p.trace.injected_at))
            .collect::<Vec<_>>(),
    );
    SchedRow {
        kind,
        band_slots: match kind {
            SchedulerKind::ComparatorTree | SchedulerKind::Oracle => 1,
            SchedulerKind::Banded { band_shift } => 1 << band_shift,
        },
        delivered: tight_packets.len(),
        misses,
        mean_latency: lat.mean,
    }
}

/// Runs the ablation: the exact tree, the Table 1 oracle, and banded
/// variants at the given shifts — all three scheduler families through the
/// identical router code path.
#[must_use]
pub fn run(band_shifts: &[u32], total_cycles: Cycle) -> Vec<SchedRow> {
    let mut rows = vec![
        run_one(SchedulerKind::ComparatorTree, total_cycles),
        run_one(SchedulerKind::Oracle, total_cycles),
    ];
    for &shift in band_shifts {
        rows.push(run_one(SchedulerKind::Banded { band_shift: shift }, total_cycles));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coarse_bands_miss_where_the_tree_does_not() {
        let rows = run(&[1, 4], 40_000);
        let tree = rows[0];
        let oracle = rows[1]; // Table 1 evaluated directly
        let fine = rows[2]; // 2-slot bands: tight (4) and loose (8) stay apart
        let coarse = rows[3]; // 16-slot bands: merged → FIFO inversion
        assert_eq!(tree.misses, 0, "exact EDF never misses");
        assert_eq!(oracle.misses, 0, "the specification never misses either");
        assert_eq!(
            (oracle.delivered, oracle.mean_latency),
            (tree.delivered, tree.mean_latency),
            "the tree must behave exactly like the Table 1 oracle"
        );
        assert_eq!(fine.misses, 0, "fine bands preserve the separation");
        assert!(
            coarse.misses > tree.delivered / 4,
            "coarse bands must invert the tight connection: {} misses",
            coarse.misses
        );
        assert!(coarse.mean_latency > tree.mean_latency);
    }
}
