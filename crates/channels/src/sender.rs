//! Source-side message generation for an established channel.
//!
//! The sending host stamps each message with its logical arrival time (the
//! recurrence of §2) and splits it into fixed-size packets for injection.
//! The wire header carries the *wrapped* logical arrival time; the trace
//! carries the absolute slots so experiments can audit deadlines end to end.

use rtr_types::clock::SlotClock;
use rtr_types::packet::{PacketTrace, Payload, TcPacket};
use rtr_types::time::{cycle_to_slot, Cycle};

use crate::arrival::ArrivalTracker;
use crate::establish::EstablishedChannel;

/// Generates conformant packets for one established channel.
#[derive(Debug)]
pub struct ChannelSender {
    ingress: rtr_types::ids::ConnectionId,
    source: rtr_types::ids::NodeId,
    destination: rtr_types::ids::NodeId,
    deadline: u32,
    data_bytes: usize,
    slot_bytes: usize,
    clock: SlotClock,
    tracker: ArrivalTracker,
    sequence: u64,
}

impl ChannelSender {
    /// Creates a sender for `channel` on routers with the given clock and
    /// packet geometry.
    #[must_use]
    pub fn new(
        channel: &EstablishedChannel,
        clock: SlotClock,
        slot_bytes: usize,
        data_bytes: usize,
    ) -> Self {
        ChannelSender {
            ingress: channel.ingress,
            source: channel.request.source,
            destination: channel.request.destinations[0],
            deadline: channel.request.deadline,
            data_bytes,
            slot_bytes,
            clock,
            tracker: ArrivalTracker::new(channel.request.spec.i_min),
            // Namespace provenance by channel so two channels sourced at the
            // same node never share a (source, sequence) pair — trace replay
            // stitches per-packet chains from exactly that pair.
            sequence: channel.id << 32,
        }
    }

    /// Splits a message payload into the zero-padded per-packet payloads
    /// the sender would put on the wire. Sources that send the same message
    /// body repeatedly should call this once and reuse the shared payloads
    /// through [`ChannelSender::make_message_shared`], so every injected
    /// packet is a refcount bump instead of a fresh allocation.
    #[must_use]
    pub fn prepare_payload(&self, payload: &[u8]) -> Vec<Payload> {
        let chunks: Vec<&[u8]> =
            if payload.is_empty() { vec![&[]] } else { payload.chunks(self.data_bytes).collect() };
        chunks
            .into_iter()
            .map(|chunk| {
                let mut data = chunk.to_vec();
                data.resize(self.data_bytes, 0);
                Payload::from(data)
            })
            .collect()
    }

    /// Builds the packets of one message generated at cycle `now`. The
    /// payload is split across as many fixed-size packets as needed (each
    /// zero-padded to the full payload size); all packets of a message share
    /// the message's logical arrival time and deadline.
    pub fn make_message(&mut self, now: Cycle, payload: &[u8]) -> Vec<TcPacket> {
        let chunks = self.prepare_payload(payload);
        self.make_message_shared(now, &chunks)
    }

    /// Builds one message's packets from pre-chunked shared payloads (see
    /// [`ChannelSender::prepare_payload`]); each packet clones its payload
    /// by reference count only.
    pub fn make_message_shared(&mut self, now: Cycle, chunks: &[Payload]) -> Vec<TcPacket> {
        let t = cycle_to_slot(now, self.slot_bytes);
        let l0 = self.tracker.next(t);
        chunks
            .iter()
            .map(|chunk| {
                let trace = PacketTrace {
                    source: self.source,
                    destination: self.destination,
                    sequence: self.sequence,
                    injected_at: now,
                    logical_arrival: l0,
                    deadline: l0 + u64::from(self.deadline),
                };
                self.sequence += 1;
                TcPacket {
                    conn: self.ingress,
                    arrival: self.clock.wrap(l0),
                    payload: chunk.clone(),
                    trace,
                }
            })
            .collect()
    }

    /// The most recent logical arrival time issued, in absolute slots.
    #[must_use]
    pub fn last_logical_arrival(&self) -> Option<u64> {
        self.tracker.last()
    }

    /// The logical arrival slot the next message would be stamped with if
    /// generated while real time is at slot `t` — the §2 recurrence
    /// `max(ℓ_prev + I_min, t)` — without mutating the tracker.
    /// Event-driven traffic sources use this to predict their next
    /// injection cycle.
    #[must_use]
    pub fn peek_next_arrival(&self, t: u64) -> u64 {
        self.tracker.peek_next(t)
    }
}

/// A sender gated by the host-side LBAP policer (§2): non-conforming
/// messages never reach the network, so a misbehaving application cannot
/// push its own logical arrival times past the §4.3 clock window — the
/// full host enforcement stack in one object.
#[derive(Debug)]
pub struct PolicedSender {
    sender: ChannelSender,
    policer: crate::arrival::Policer,
    slot_bytes: usize,
    dropped: u64,
}

impl PolicedSender {
    /// Wraps a sender with its channel's contract.
    #[must_use]
    pub fn new(
        channel: &crate::establish::EstablishedChannel,
        clock: SlotClock,
        slot_bytes: usize,
        data_bytes: usize,
    ) -> Self {
        PolicedSender {
            sender: ChannelSender::new(channel, clock, slot_bytes, data_bytes),
            policer: crate::arrival::Policer::new(channel.request.spec),
            slot_bytes,
            dropped: 0,
        }
    }

    /// Builds a message's packets if it conforms to the contract; returns
    /// `None` (and counts the drop) otherwise.
    pub fn try_message(&mut self, now: Cycle, payload: &[u8]) -> Option<Vec<TcPacket>> {
        let slot = cycle_to_slot(now, self.slot_bytes);
        if self.policer.conforms(slot) {
            Some(self.sender.make_message(now, payload))
        } else {
            self.dropped += 1;
            None
        }
    }

    /// Messages rejected at the host so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::establish::{EstablishedChannel, Hop};
    use crate::spec::{ChannelRequest, TrafficSpec};
    use rtr_types::ids::{ConnectionId, NodeId, Port};

    fn channel(i_min: u32, deadline: u32) -> EstablishedChannel {
        EstablishedChannel {
            id: 0,
            ingress: ConnectionId(3),
            depth: 1,
            guaranteed: deadline,
            hops: vec![Hop {
                node: NodeId(0),
                conn: ConnectionId(3),
                out_conn: ConnectionId(3),
                delay: deadline,
                out_mask: Port::Local.mask(),
                buffers: 1,
            }],
            request: ChannelRequest::unicast(
                NodeId(0),
                NodeId(0),
                TrafficSpec::periodic(i_min, 18),
                deadline,
            ),
        }
    }

    fn sender(i_min: u32, deadline: u32) -> ChannelSender {
        ChannelSender::new(&channel(i_min, deadline), SlotClock::new(8), 20, 18)
    }

    #[test]
    fn messages_carry_logical_arrival_and_deadline() {
        let mut s = sender(8, 12);
        let packets = s.make_message(100, &[1, 2, 3]); // slot 5
        assert_eq!(packets.len(), 1);
        let p = &packets[0];
        assert_eq!(p.conn, ConnectionId(3));
        assert_eq!(p.arrival.raw(), 5);
        assert_eq!(p.trace.logical_arrival, 5);
        assert_eq!(p.trace.deadline, 17);
        assert_eq!(p.payload.len(), 18, "padded to the fixed packet size");
        assert_eq!(&p.payload[..3], &[1, 2, 3]);
    }

    #[test]
    fn back_to_back_messages_space_logically() {
        let mut s = sender(8, 12);
        let a = s.make_message(0, &[0]);
        let b = s.make_message(0, &[0]);
        assert_eq!(a[0].trace.logical_arrival, 0);
        assert_eq!(b[0].trace.logical_arrival, 8, "ℓ0 advances by I_min");
        assert_eq!(b[0].arrival.raw(), 8);
    }

    #[test]
    fn large_messages_split_into_packets() {
        let mut s = sender(8, 12);
        let payload: Vec<u8> = (0..40).collect(); // 3 packets of 18
        let packets = s.make_message(0, &payload);
        assert_eq!(packets.len(), 3);
        assert!(packets.iter().all(|p| p.payload.len() == 18));
        assert_eq!(packets[0].trace.logical_arrival, packets[2].trace.logical_arrival);
        // Sequence numbers are distinct per packet.
        assert_ne!(packets[0].trace.sequence, packets[1].trace.sequence);
    }

    #[test]
    fn empty_message_still_costs_one_packet() {
        let mut s = sender(8, 12);
        assert_eq!(s.make_message(0, &[]).len(), 1);
    }

    #[test]
    fn policed_sender_enforces_the_contract_at_the_host() {
        let ch = channel(10, 20);
        let mut s = PolicedSender::new(&ch, SlotClock::new(8), 20, 18);
        // Contract: one message per 10 slots, no burst allowance
        // (bucket depth 1): a flood at slot 0 yields exactly one message.
        assert!(s.try_message(0, &[1]).is_some());
        assert!(s.try_message(0, &[2]).is_none());
        assert!(s.try_message(19, &[3]).is_none(), "slot 0 still");
        assert_eq!(s.dropped(), 2);
        // One period later (slot 10 = cycle 200) the next conforms.
        let packets = s.try_message(200, &[4]).unwrap();
        assert_eq!(packets[0].trace.logical_arrival, 10);
    }

    #[test]
    fn wrapped_arrival_matches_absolute_mod_clock() {
        let mut s = sender(4, 12);
        // Push ℓ0 past the 8-bit clock range.
        let mut last = 0;
        for k in 0..80 {
            let p = &s.make_message(k * 80, &[0])[0]; // slot 4k
            last = p.trace.logical_arrival;
            assert_eq!(u64::from(p.arrival.raw()), last % 256);
        }
        assert!(last >= 256, "test must cross rollover");
    }
}
