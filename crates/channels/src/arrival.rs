//! Logical arrival times and traffic policing (paper §2).
//!
//! At the source, message `m_i` generated at time `t_i` has logical arrival
//! time
//!
//! ```text
//! ℓ0(m_0) = t_0
//! ℓ0(m_i) = max(ℓ0(m_{i-1}) + I_min, t_i)      for i > 0
//! ```
//!
//! Basing guarantees on logical (not actual) arrival times is what limits
//! the damage an ill-behaving connection can do to others: sending faster
//! than the contract just pushes the sender's own logical times — and hence
//! deadlines — into the future.
//!
//! [`Policer`] is the complementary token-bucket check: a conforming source
//! never exceeds `B_max` messages beyond the `I_min` periodic restriction.

use rtr_types::time::Slot;

use crate::spec::TrafficSpec;

/// Tracks a connection's logical arrival times at the source.
///
/// # Example
///
/// ```
/// use rtr_channels::arrival::ArrivalTracker;
///
/// let mut tracker = ArrivalTracker::new(8);
/// assert_eq!(tracker.next(5), 5);   // first message: ℓ0 = t
/// assert_eq!(tracker.next(6), 13);  // too soon: ℓ0 advances by I_min
/// assert_eq!(tracker.next(40), 40); // slack restored: ℓ0 = t again
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalTracker {
    last: Option<Slot>,
    i_min: u32,
}

impl ArrivalTracker {
    /// Creates a tracker for a connection with the given spacing.
    #[must_use]
    pub fn new(i_min: u32) -> Self {
        ArrivalTracker { last: None, i_min }
    }

    /// Registers a message generated at slot `t` and returns its logical
    /// arrival time `ℓ0`.
    pub fn next(&mut self, t: Slot) -> Slot {
        let l = match self.last {
            None => t,
            Some(prev) => (prev + u64::from(self.i_min)).max(t),
        };
        self.last = Some(l);
        l
    }

    /// The most recent logical arrival time, if any message was registered.
    #[must_use]
    pub fn last(&self) -> Option<Slot> {
        self.last
    }

    /// The logical arrival time [`ArrivalTracker::next`] would return at
    /// slot `t`, without registering a message.
    #[must_use]
    pub fn peek_next(&self, t: Slot) -> Slot {
        match self.last {
            None => t,
            Some(prev) => (prev + u64::from(self.i_min)).max(t),
        }
    }
}

/// A token-bucket conformance checker for the linear bounded arrival
/// process: rate `1/I_min` messages per slot, depth `B_max + 1`.
///
/// # Example
///
/// ```
/// use rtr_channels::arrival::Policer;
/// use rtr_channels::spec::TrafficSpec;
///
/// let mut policer = Policer::new(TrafficSpec { i_min: 10, s_max_bytes: 18, b_max: 1 });
/// assert!(policer.conforms(0));  // first message
/// assert!(policer.conforms(0));  // burst allowance
/// assert!(!policer.conforms(0)); // flooding is stopped at the host
/// assert!(policer.conforms(10)); // a period later a token is back
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Policer {
    spec: TrafficSpec,
    /// Tokens scaled by `I_min` to stay in integers: a full token is
    /// `i_min` units; one accrues per slot.
    scaled_tokens: u64,
    last_slot: Slot,
}

impl Policer {
    /// Creates a policer with a full bucket at slot 0.
    #[must_use]
    pub fn new(spec: TrafficSpec) -> Self {
        Policer {
            spec,
            scaled_tokens: u64::from(spec.b_max + 1) * u64::from(spec.i_min.max(1)),
            last_slot: 0,
        }
    }

    /// Checks whether a message at slot `t` conforms; conforming messages
    /// consume a token.
    ///
    /// # Panics
    ///
    /// Panics if slots go backwards.
    pub fn conforms(&mut self, t: Slot) -> bool {
        assert!(t >= self.last_slot, "policer time went backwards");
        let i_min = u64::from(self.spec.i_min.max(1));
        let cap = u64::from(self.spec.b_max + 1) * i_min;
        self.scaled_tokens = (self.scaled_tokens + (t - self.last_slot)).min(cap);
        self.last_slot = t;
        if self.scaled_tokens >= i_min {
            self.scaled_tokens -= i_min;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn logical_arrivals_follow_the_recurrence() {
        let mut tr = ArrivalTracker::new(8);
        assert_eq!(tr.next(5), 5); // first message: ℓ0 = t
        assert_eq!(tr.next(6), 13); // too soon: ℓ0 = 5 + 8
        assert_eq!(tr.next(30), 30); // late enough: ℓ0 = t
        assert_eq!(tr.last(), Some(30));
    }

    #[test]
    fn back_to_back_burst_spaces_logically() {
        let mut tr = ArrivalTracker::new(10);
        let ls: Vec<Slot> = (0..4).map(|_| tr.next(100)).collect();
        assert_eq!(ls, vec![100, 110, 120, 130]);
    }

    #[test]
    fn policer_allows_burst_then_throttles() {
        let spec = TrafficSpec { i_min: 10, s_max_bytes: 18, b_max: 2 };
        let mut p = Policer::new(spec);
        // Bucket depth 3: three immediate messages conform, the fourth not.
        assert!(p.conforms(0));
        assert!(p.conforms(0));
        assert!(p.conforms(0));
        assert!(!p.conforms(0));
        // After I_min slots a token is back.
        assert!(p.conforms(10));
        assert!(!p.conforms(10));
    }

    #[test]
    fn periodic_source_always_conforms() {
        let spec = TrafficSpec::periodic(7, 18);
        let mut p = Policer::new(spec);
        for k in 0..100u64 {
            assert!(p.conforms(k * 7));
        }
    }

    proptest! {
        /// Logical arrival times are always ≥ the generation time and spaced
        /// at least I_min apart — the two invariants guarantees rest on.
        #[test]
        fn tracker_invariants(i_min in 1u32..64, gaps in proptest::collection::vec(0u64..100, 1..50)) {
            let mut tr = ArrivalTracker::new(i_min);
            let mut t = 0;
            let mut prev: Option<Slot> = None;
            for g in gaps {
                t += g;
                let l = tr.next(t);
                prop_assert!(l >= t);
                if let Some(p) = prev {
                    prop_assert!(l >= p + u64::from(i_min));
                }
                prev = Some(l);
            }
        }

        /// A policer-conforming trace never exceeds the LBAP envelope:
        /// in any window of length L it sees at most B_max + 1 + L/I_min
        /// messages.
        #[test]
        fn policer_enforces_envelope(
            i_min in 1u32..16,
            b_max in 0u32..4,
            gaps in proptest::collection::vec(0u64..8, 1..80),
        ) {
            let spec = TrafficSpec { i_min, s_max_bytes: 18, b_max };
            let mut p = Policer::new(spec);
            let mut t = 0;
            let mut accepted: Vec<Slot> = Vec::new();
            for g in gaps {
                t += g;
                if p.conforms(t) {
                    accepted.push(t);
                }
            }
            for (i, &start) in accepted.iter().enumerate() {
                for (j, &end) in accepted.iter().enumerate().skip(i) {
                    let window = end - start;
                    let allowed = u64::from(b_max) + 1 + window / u64::from(i_min);
                    prop_assert!(
                        (j - i + 1) as u64 <= allowed,
                        "window [{start},{end}] holds {} > {allowed}",
                        j - i + 1
                    );
                }
            }
        }
    }
}
