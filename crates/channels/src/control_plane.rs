//! Live control plane: channel signaling against a *running* mesh
//! (paper §4.1, taken online).
//!
//! [`crate::establish::ChannelManager`] programs routers synchronously —
//! fine for pre-run setup, but a real network establishes and tears down
//! channels while traffic flows. The [`SignalingEngine`] here closes that
//! gap: it runs the ordinary admission test against the manager's live
//! [`crate::admission::LinkBook`]/[`crate::admission::BufferBook`] state,
//! and then applies the resulting routing-table deltas *as simulated work*
//! — each table write is scheduled onto the mesh at its own future cycle,
//! [`RecoveryConfig::cycles_per_table_write`] apart, through
//! [`Simulator::schedule_control`]. There is no global pause: the mesh
//! keeps forwarding between writes, exactly as the paper's protocol
//! processor would interleave table updates with traffic.
//!
//! Two guarantees carry over from the offline path:
//!
//! * **Admitted channels stay safe.** Admission runs *before* any write is
//!   scheduled, against the same reservation books the offline manager
//!   uses, so a rejected request perturbs nothing and an accepted one
//!   cannot overload a link that existing channels depend on.
//! * **Writes are ordered leaf-ward.** Establishment commands are issued
//!   in the manager's breadth-first hop order but take effect bottom-up in
//!   time only after the *whole* sequence is scheduled; the source may not
//!   inject until [`EstablishTicket::ready_at`], so no packet ever races
//!   its own connection's table entry.
//!
//! Teardown offers two styles ([`TeardownStyle`]): `Abort` clears the
//! tables as fast as the write cost allows (in-flight packets then land in
//! the router's `tc_aborted_teardown` ledger column — counted, conserved,
//! but not delivered), while `Drain` delays the clears by the channel's
//! guaranteed bound plus one inter-message slack so every packet already
//! injected delivers first.

use rtr_core::control::ControlCommand;
use rtr_core::RealTimeRouter;
use rtr_mesh::sim::Simulator;
use rtr_mesh::topology::Topology;
use rtr_types::config::RouterConfig;
use rtr_types::ids::NodeId;
use rtr_types::time::Cycle;

use crate::establish::{ChannelManager, ControlPlane, EstablishError, EstablishedChannel};
use crate::recovery::RecoveryConfig;
use crate::spec::ChannelRequest;

/// A [`ControlPlane`] that records commands instead of applying them —
/// the capture half of the signaling engine: the manager's establishment
/// and teardown logic runs unmodified, and the recorded deltas are then
/// scheduled onto the simulator as timed control ops.
#[derive(Debug, Default)]
pub struct DeferredPlane {
    /// Commands in issue order.
    pub commands: Vec<(NodeId, ControlCommand)>,
}

impl ControlPlane for DeferredPlane {
    fn apply(
        &mut self,
        node: NodeId,
        cmd: ControlCommand,
    ) -> Result<(), rtr_core::control::ControlError> {
        self.commands.push((node, cmd));
        Ok(())
    }
}

/// How a live teardown treats the channel's in-flight packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TeardownStyle {
    /// Clear the tables as soon as the write cost allows. Packets still in
    /// flight hit tombstoned entries and are aborted into the router's
    /// `tc_aborted_teardown` ledger column — accounted, not delivered.
    Abort,
    /// Delay the clears until every packet already injected has had its
    /// guaranteed bound (plus one `I_min` of slack) to deliver, then clear.
    Drain,
}

/// Receipt for a live establishment: the channel plus its activation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstablishTicket {
    /// The admitted channel (reservations held from the moment of
    /// admission, table entries live from [`EstablishTicket::ready_at`]).
    pub channel: EstablishedChannel,
    /// First cycle at which every hop's table entry is in place; the
    /// source must not inject before this.
    pub ready_at: Cycle,
    /// Table writes the establishment cost.
    pub table_writes: u64,
}

/// Receipt for a live teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TeardownTicket {
    /// Cycle at which the last table entry is cleared.
    pub cleared_at: Cycle,
    /// Table writes the teardown cost.
    pub table_writes: u64,
}

/// Monotone counters over the engine's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignalingStats {
    /// Establishment requests received.
    pub establish_attempted: u64,
    /// Establishment requests admitted and scheduled.
    pub establish_accepted: u64,
    /// Establishment requests rejected by admission.
    pub establish_rejected: u64,
    /// Teardowns performed.
    pub teardowns: u64,
    /// Total table writes scheduled (establish + teardown).
    pub table_writes: u64,
}

impl SignalingStats {
    /// Fraction of establishment attempts rejected (0 when none attempted).
    #[must_use]
    pub fn rejection_rate(&self) -> f64 {
        if self.establish_attempted == 0 {
            return 0.0;
        }
        self.establish_rejected as f64 / self.establish_attempted as f64
    }
}

/// The live signaling engine: admission against live reservation state,
/// table deltas applied as timed simulated work.
#[derive(Debug)]
pub struct SignalingEngine {
    manager: ChannelManager,
    slot_bytes: usize,
    /// Modeled cost of one routing-table write, in cycles (the same
    /// constant the recovery path charges).
    cycles_per_table_write: Cycle,
    stats: SignalingStats,
}

impl SignalingEngine {
    /// An engine over a fresh [`ChannelManager`] for `config`, charging
    /// [`RecoveryConfig::cycles_per_table_write`] per table write.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Self {
        SignalingEngine::with_write_cost(config, RecoveryConfig::default().cycles_per_table_write)
    }

    /// An engine with an explicit per-write cycle cost.
    #[must_use]
    pub fn with_write_cost(config: &RouterConfig, cycles_per_table_write: Cycle) -> Self {
        SignalingEngine::from_manager(ChannelManager::new(config), config)
            .set_write_cost(cycles_per_table_write)
    }

    /// Adopts an existing manager (with whatever channels and reservations
    /// it already holds) — lets a scenario set up long-lived channels
    /// offline and then hand the same reservation books to the live plane.
    #[must_use]
    pub fn from_manager(manager: ChannelManager, config: &RouterConfig) -> Self {
        SignalingEngine {
            manager,
            slot_bytes: config.slot_bytes,
            cycles_per_table_write: RecoveryConfig::default().cycles_per_table_write,
            stats: SignalingStats::default(),
        }
    }

    fn set_write_cost(mut self, cycles_per_table_write: Cycle) -> Self {
        self.cycles_per_table_write = cycles_per_table_write.max(1);
        self
    }

    /// The underlying manager (reservation books, channel registry).
    #[must_use]
    pub fn manager(&self) -> &ChannelManager {
        &self.manager
    }

    /// Mutable access to the underlying manager (policy knobs, partitions).
    pub fn manager_mut(&mut self) -> &mut ChannelManager {
        &mut self.manager
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> SignalingStats {
        self.stats
    }

    /// The modeled per-write cost, in cycles.
    #[must_use]
    pub fn write_cost(&self) -> Cycle {
        self.cycles_per_table_write
    }

    /// Requests a channel against the running mesh: admission runs now,
    /// table writes are scheduled one write-cost apart starting next cycle.
    ///
    /// # Errors
    ///
    /// Propagates the manager's admission rejection; nothing is scheduled
    /// and no reservation is held on failure.
    pub fn request_establish(
        &mut self,
        topo: &Topology,
        request: ChannelRequest,
        sim: &mut Simulator<RealTimeRouter>,
    ) -> Result<EstablishTicket, EstablishError> {
        self.stats.establish_attempted += 1;
        let mut deferred = DeferredPlane::default();
        let channel = match self.manager.establish(topo, request, &mut deferred) {
            Ok(channel) => channel,
            Err(e) => {
                self.stats.establish_rejected += 1;
                return Err(e);
            }
        };
        self.stats.establish_accepted += 1;
        let (ready_at, table_writes) = self.schedule_writes(sim, sim.now(), deferred.commands);
        Ok(EstablishTicket { channel, ready_at, table_writes })
    }

    /// Tears a channel down against the running mesh.
    ///
    /// Reservations are released immediately (the capacity is free for new
    /// admissions), while the table clears land per `style`. In-flight
    /// packets of an `Abort` teardown are aborted into the routers'
    /// teardown ledger; a `Drain` teardown lets them deliver first.
    ///
    /// # Errors
    ///
    /// Propagates the manager's teardown error. An unknown channel id is
    /// (as in the offline path) a successful no-op.
    pub fn request_teardown(
        &mut self,
        channel_id: u64,
        style: TeardownStyle,
        sim: &mut Simulator<RealTimeRouter>,
    ) -> Result<TeardownTicket, EstablishError> {
        let drain_margin = match style {
            TeardownStyle::Abort => 0,
            TeardownStyle::Drain => {
                self.manager.channels().get(&channel_id).map_or(0, |c| self.drain_margin(c))
            }
        };
        let mut deferred = DeferredPlane::default();
        self.manager.teardown(channel_id, &mut deferred)?;
        self.stats.teardowns += 1;
        let (cleared_at, table_writes) =
            self.schedule_writes(sim, sim.now() + drain_margin, deferred.commands);
        Ok(TeardownTicket { cleared_at, table_writes })
    }

    /// Cycles a draining teardown waits before its first clear: the
    /// channel's guaranteed end-to-end bound plus one `I_min` of slack,
    /// in slots, converted to cycles. Any packet injected before the
    /// teardown request delivers inside this window.
    fn drain_margin(&self, channel: &EstablishedChannel) -> Cycle {
        let slots = channel.guaranteed_bound() + channel.request.spec.i_min;
        Cycle::from(slots) * self.slot_bytes as Cycle
    }

    /// Schedules `commands` one write-cost apart starting after `base`,
    /// returning the cycle the last one lands on and the write count.
    fn schedule_writes(
        &mut self,
        sim: &mut Simulator<RealTimeRouter>,
        base: Cycle,
        commands: Vec<(NodeId, ControlCommand)>,
    ) -> (Cycle, u64) {
        let cost = self.cycles_per_table_write;
        let writes = commands.len() as u64;
        self.stats.table_writes += writes;
        let mut at = base;
        for (node, cmd) in commands {
            at += cost;
            sim.schedule_control(at, node, move |chip| {
                chip.apply_control(cmd).map_err(|e| e.to_string())
            });
        }
        (at, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficSpec;

    fn setup(width: u16) -> (Topology, Simulator<RealTimeRouter>, SignalingEngine) {
        let config = RouterConfig::default();
        let topo = Topology::mesh(width, 1);
        let sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone())).unwrap();
        (topo, sim, SignalingEngine::new(&config))
    }

    #[test]
    fn live_establishment_schedules_timed_table_writes() {
        let (topo, mut sim, mut engine) = setup(3);
        sim.run(100);
        let request = ChannelRequest::unicast(
            topo.node_at(0, 0),
            topo.node_at(2, 0),
            TrafficSpec::periodic(16, 18),
            24,
        );
        let ticket = engine.request_establish(&topo, request, &mut sim).unwrap();
        // 3 hops (2 links + reception) = 3 writes, one write-cost apart.
        assert_eq!(ticket.table_writes, 3);
        assert_eq!(ticket.ready_at, 100 + 3 * engine.write_cost());
        // Nothing applied yet: the writes are future simulated work.
        assert_eq!(sim.control_stats().ops_applied, 0);
        sim.run(ticket.ready_at - sim.now() + 1);
        let stats = sim.control_stats();
        assert_eq!(stats.ops_applied, 3, "every write lands by ready_at");
        assert_eq!(stats.ops_rejected, 0);
        assert_eq!(engine.stats().establish_accepted, 1);
    }

    #[test]
    fn rejected_requests_schedule_nothing() {
        let (topo, mut sim, mut engine) = setup(2);
        let request = ChannelRequest::unicast(
            topo.node_at(0, 0),
            topo.node_at(1, 0),
            TrafficSpec::periodic(8, 18),
            1, // 2 scheduled hops cannot fit in 1 slot
        );
        assert!(engine.request_establish(&topo, request, &mut sim).is_err());
        assert_eq!(engine.stats().establish_rejected, 1);
        assert_eq!(engine.stats().table_writes, 0);
        sim.run(1_000);
        assert_eq!(sim.control_stats().ops_applied, 0);
        assert!((engine.stats().rejection_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drain_teardown_waits_for_the_guaranteed_bound() {
        let (topo, mut sim, mut engine) = setup(2);
        let request = || {
            ChannelRequest::unicast(
                topo.node_at(0, 0),
                topo.node_at(1, 0),
                TrafficSpec::periodic(16, 18),
                20,
            )
        };
        let a = engine.request_establish(&topo, request(), &mut sim).unwrap();
        let b = engine.request_establish(&topo, request(), &mut sim).unwrap();
        sim.run(a.ready_at.max(b.ready_at) + 1 - sim.now());

        let start = sim.now();
        let abort = engine.request_teardown(a.channel.id, TeardownStyle::Abort, &mut sim).unwrap();
        assert_eq!(abort.table_writes, 2);
        assert_eq!(abort.cleared_at, start + 2 * engine.write_cost());

        // The drain margin covers the guaranteed bound plus one I_min of
        // slack, in cycles.
        let margin = Cycle::from(b.channel.guaranteed_bound() + 16)
            * RouterConfig::default().slot_bytes as Cycle;
        let drain = engine.request_teardown(b.channel.id, TeardownStyle::Drain, &mut sim).unwrap();
        assert_eq!(drain.cleared_at, sim.now() + margin + 2 * engine.write_cost());
        assert!(drain.cleared_at > abort.cleared_at);

        // Both teardowns released their reservations immediately.
        assert!(engine.manager().channels().is_empty());
        sim.run(drain.cleared_at + 1 - sim.now());
        assert_eq!(sim.control_stats().ops_applied, 4 + 4, "establish + teardown writes");
    }

    #[test]
    fn unknown_channel_teardown_is_a_no_op_ticket() {
        let (_topo, mut sim, mut engine) = setup(2);
        let ticket = engine.request_teardown(404, TeardownStyle::Drain, &mut sim).unwrap();
        assert_eq!(ticket.table_writes, 0);
        assert_eq!(ticket.cleared_at, sim.now());
    }
}
