//! Traffic contracts (paper §2).
//!
//! A real-time channel is characterised by a **linear bounded arrival
//! process**: minimum message spacing `I_min`, maximum message size `S_max`,
//! and a burst allowance of up to `B_max` messages beyond the periodic
//! restriction; plus an end-to-end delay bound `D` on each message's logical
//! arrival time.

use rtr_types::ids::NodeId;

/// The `(I_min, S_max, B_max)` traffic contract of one connection.
///
/// # Example
///
/// ```
/// use rtr_channels::spec::TrafficSpec;
///
/// // One 18-byte message every 8 slots: 1/8 of a link.
/// let spec = TrafficSpec::periodic(8, 18);
/// assert_eq!(spec.packets_per_message(18), 1);
/// assert!((spec.utilization(18) - 0.125).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrafficSpec {
    /// Minimum logical spacing between messages, in slots.
    pub i_min: u32,
    /// Maximum message size in payload bytes.
    pub s_max_bytes: u32,
    /// Messages that may arrive in excess of the periodic restriction.
    pub b_max: u32,
}

impl TrafficSpec {
    /// A periodic connection (no burst allowance).
    #[must_use]
    pub fn periodic(i_min: u32, s_max_bytes: u32) -> Self {
        TrafficSpec { i_min, s_max_bytes, b_max: 0 }
    }

    /// Packets per message given the per-packet payload capacity
    /// (18 bytes with the default configuration).
    ///
    /// # Panics
    ///
    /// Panics if `data_bytes` is zero.
    #[must_use]
    pub fn packets_per_message(&self, data_bytes: usize) -> u32 {
        assert!(data_bytes > 0, "payload capacity must be positive");
        (self.s_max_bytes as usize).div_ceil(data_bytes).max(1) as u32
    }

    /// Long-run link utilisation of this connection in packet slots per
    /// slot: `packets_per_message / I_min`.
    #[must_use]
    pub fn utilization(&self, data_bytes: usize) -> f64 {
        f64::from(self.packets_per_message(data_bytes)) / f64::from(self.i_min.max(1))
    }
}

/// A request to establish a real-time channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelRequest {
    /// Source node.
    pub source: NodeId,
    /// Destination nodes (one for unicast; several for the table-driven
    /// multicast of §3.3).
    pub destinations: Vec<NodeId>,
    /// Traffic contract.
    pub spec: TrafficSpec,
    /// End-to-end delay bound `D` in slots, relative to each message's
    /// logical arrival time.
    pub deadline: u32,
}

impl ChannelRequest {
    /// A unicast request.
    #[must_use]
    pub fn unicast(source: NodeId, destination: NodeId, spec: TrafficSpec, deadline: u32) -> Self {
        ChannelRequest { source, destinations: vec![destination], spec, deadline }
    }

    /// A multicast request (§3.3's table-driven multicast): one logical
    /// connection, every destination bound by the same `deadline`.
    #[must_use]
    pub fn multicast(
        source: NodeId,
        destinations: Vec<NodeId>,
        spec: TrafficSpec,
        deadline: u32,
    ) -> Self {
        ChannelRequest { source, destinations, spec, deadline }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packets_per_message_rounds_up() {
        let s = TrafficSpec::periodic(8, 18);
        assert_eq!(s.packets_per_message(18), 1);
        let s = TrafficSpec::periodic(8, 19);
        assert_eq!(s.packets_per_message(18), 2);
        let s = TrafficSpec::periodic(8, 0);
        assert_eq!(s.packets_per_message(18), 1, "empty messages still cost a packet");
    }

    #[test]
    fn utilization_matches_figure7_connections() {
        // Figure 7's connections: (d, I_min) = (4,8), (8,16), (16,32), one
        // packet per message.
        assert!((TrafficSpec::periodic(8, 18).utilization(18) - 0.125).abs() < 1e-12);
        assert!((TrafficSpec::periodic(16, 18).utilization(18) - 0.0625).abs() < 1e-12);
        assert!((TrafficSpec::periodic(32, 18).utilization(18) - 0.03125).abs() < 1e-12);
    }
}
