//! Admission control: link schedulability and buffer reservation
//! (paper §2, §4.1; after Kandlur–Shin–Ferrari).
//!
//! The network admits a connection only if, at every link of its route, the
//! deadline-driven scheduler can still meet **all** local delay bounds, and
//! every node can reserve enough packet-memory slots.
//!
//! # Link test
//!
//! Because guarantees are based on *logical* arrival times (spaced `I_min`
//! even inside bursts), link demand is exactly periodic: connection `k`
//! contributes `c_k` packet slots every `P_k = I_min` slots, each due `d_k`
//! slots after its logical arrival. We use the EDF processor-demand
//! criterion with a blocking/overhead allowance `η`:
//!
//! ```text
//! ∀ L ∈ test points:   η + Σ_k c_k · (⌊(L − d_k)/P_k⌋ + 1) · [L ≥ d_k]  ≤  L
//! ```
//!
//! `η` (default 2 slots) covers the one-slot non-preemptive blocking of a
//! just-started packet plus the sub-slot pipeline latencies of the datapath.
//!
//! # Buffer test
//!
//! Node `j` may hold up to `⌈((h_{j−1} + d_{j−1}) + d_j)/I_min⌉` messages of
//! a connection simultaneously (§2); the source node additionally buffers
//! its burst allowance `B_max`.

use rtr_types::ids::{NodeId, PORT_COUNT};

use crate::spec::TrafficSpec;

/// Which schedulability test the admission controller runs on each link.
///
/// The demand criterion is the sound test the real-time channels model
/// requires; the utilisation-only test is the naive alternative — it
/// accepts any set below link capacity, which is *unsafe* for deadlines
/// tighter than the period (the `admission_policy` ablation demonstrates
/// the resulting misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AdmissionPolicy {
    /// The EDF processor-demand criterion (sound). Default.
    #[default]
    DemandCriterion,
    /// Long-run utilisation ≤ 1 only (unsound for tight deadlines).
    UtilizationOnly,
}

/// One connection's reservation on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkReservation {
    /// Packet slots per message.
    pub packets: u32,
    /// Message period `I_min` in slots.
    pub period: u32,
    /// Local delay bound `d_j` in slots.
    pub delay: u32,
}

/// Why admission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// Long-run utilisation would exceed the link.
    UtilizationExceeded {
        /// Utilisation ×1e6 after adding the connection.
        utilization_ppm: u64,
    },
    /// The demand test found an overloaded interval.
    DeadlineInfeasible {
        /// The interval length (slots) where demand exceeds supply.
        interval: u64,
        /// The demand (slots) in that interval.
        demand: u64,
    },
    /// A node cannot reserve the required packet buffers.
    BufferExceeded {
        /// The node that ran out.
        node: NodeId,
        /// Slots requested.
        requested: usize,
        /// Slots still available.
        available: usize,
    },
    /// The per-hop delay bound violates a structural constraint.
    BadDelayBound {
        /// Human-readable constraint violated.
        reason: &'static str,
    },
    /// No route exists (or the request was empty).
    NoRoute,
    /// An explicitly supplied route set is unusable.
    InvalidRoute {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// All connection identifiers at some node are in use.
    NoFreeConnectionId {
        /// The saturated node.
        node: NodeId,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::UtilizationExceeded { utilization_ppm } => {
                write!(f, "link utilisation would reach {} ppm", utilization_ppm)
            }
            AdmissionError::DeadlineInfeasible { interval, demand } => {
                write!(f, "demand {demand} exceeds interval {interval}")
            }
            AdmissionError::BufferExceeded { node, requested, available } => {
                write!(f, "node {node} cannot reserve {requested} buffers ({available} free)")
            }
            AdmissionError::BadDelayBound { reason } => write!(f, "bad delay bound: {reason}"),
            AdmissionError::NoRoute => write!(f, "no route to destination"),
            AdmissionError::InvalidRoute { reason } => write!(f, "invalid route: {reason}"),
            AdmissionError::NoFreeConnectionId { node } => {
                write!(f, "node {node} has no free connection identifier")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Schedulability bookkeeping for one outgoing link (or the reception
/// port — it is scheduled like a link).
#[derive(Debug, Clone, Default)]
pub struct LinkBook {
    reservations: Vec<LinkReservation>,
}

impl LinkBook {
    /// Creates an empty book.
    #[must_use]
    pub fn new() -> Self {
        LinkBook::default()
    }

    /// Currently admitted reservations.
    #[must_use]
    pub fn reservations(&self) -> &[LinkReservation] {
        &self.reservations
    }

    /// Long-run utilisation (packet slots per slot) including `extra`.
    #[must_use]
    pub fn utilization_with(&self, extra: Option<LinkReservation>) -> f64 {
        self.reservations
            .iter()
            .chain(extra.as_ref())
            .map(|r| f64::from(r.packets) / f64::from(r.period.max(1)))
            .sum()
    }

    /// Tests `candidate` under the chosen policy.
    ///
    /// # Errors
    ///
    /// See [`AdmissionError`].
    pub fn admissible_with(
        &self,
        candidate: LinkReservation,
        eta: u32,
        policy: AdmissionPolicy,
    ) -> Result<(), AdmissionError> {
        match policy {
            AdmissionPolicy::DemandCriterion => self.admissible(candidate, eta),
            AdmissionPolicy::UtilizationOnly => {
                if candidate.period == 0 || candidate.packets == 0 {
                    return Err(AdmissionError::BadDelayBound {
                        reason: "zero period or message size",
                    });
                }
                let u = self.utilization_with(Some(candidate));
                if u > 1.0 {
                    return Err(AdmissionError::UtilizationExceeded {
                        utilization_ppm: (u * 1e6) as u64,
                    });
                }
                Ok(())
            }
        }
    }

    /// Tests whether adding `candidate` keeps every delay bound feasible.
    ///
    /// `eta` is the blocking/overhead allowance in slots.
    ///
    /// # Errors
    ///
    /// See [`AdmissionError`].
    pub fn admissible(&self, candidate: LinkReservation, eta: u32) -> Result<(), AdmissionError> {
        if candidate.period == 0 || candidate.packets == 0 {
            return Err(AdmissionError::BadDelayBound { reason: "zero period or message size" });
        }
        if candidate.delay > candidate.period {
            return Err(AdmissionError::BadDelayBound { reason: "d_j must not exceed I_min" });
        }
        if candidate.delay < candidate.packets {
            return Err(AdmissionError::BadDelayBound {
                reason: "d_j below the message transmission time",
            });
        }
        let all: Vec<LinkReservation> =
            self.reservations.iter().copied().chain(std::iter::once(candidate)).collect();

        let u = self.utilization_with(Some(candidate));
        if u > 1.0 {
            return Err(AdmissionError::UtilizationExceeded { utilization_ppm: (u * 1e6) as u64 });
        }

        // Busy-period bound for the demand criterion: for U < 1,
        // L* = (η + Σ c_k (1 − d_k/P_k)₊) / (1 − U); clamp for U ≈ 1.
        let slack_sum: f64 = all
            .iter()
            .map(|r| {
                f64::from(r.packets) * (1.0 - f64::from(r.delay) / f64::from(r.period)).max(0.0)
            })
            .sum();
        let max_d = all.iter().map(|r| u64::from(r.delay)).max().unwrap_or(0);
        let l_star = if u < 0.999_999 {
            (((f64::from(eta) + slack_sum) / (1.0 - u)).ceil() as u64).max(max_d)
        } else {
            65_536
        }
        .min(1 << 20);

        // Test points: every absolute deadline d_k + n·P_k up to L*.
        let mut points: Vec<u64> = Vec::new();
        for r in &all {
            let mut l = u64::from(r.delay);
            while l <= l_star {
                points.push(l);
                l += u64::from(r.period);
            }
        }
        points.sort_unstable();
        points.dedup();

        for l in points {
            let mut demand = u64::from(eta);
            for r in &all {
                let d = u64::from(r.delay);
                if l >= d {
                    demand += u64::from(r.packets) * ((l - d) / u64::from(r.period) + 1);
                }
            }
            if demand > l {
                return Err(AdmissionError::DeadlineInfeasible { interval: l, demand });
            }
        }
        Ok(())
    }

    /// The link's schedulability headroom: the largest overhead allowance
    /// `η` (slots) under which the current reservation set still passes
    /// the demand criterion. Protocol software can use this to decide how
    /// much horizon or how many more connections a link can take.
    #[must_use]
    pub fn headroom(&self) -> u32 {
        if self.reservations.is_empty() {
            return u32::MAX;
        }
        // The demand test is monotone in η: binary search the threshold.
        let probe = |eta: u32| {
            // Re-run the demand criterion against the existing set only, by
            // testing the last reservation against the rest.
            let mut rest = LinkBook { reservations: self.reservations.clone() };
            let last = rest.reservations.pop().expect("non-empty");
            rest.admissible(last, eta).is_ok()
        };
        if !probe(0) {
            return 0;
        }
        let (mut lo, mut hi) = (0u32, 1u32);
        while hi < 1 << 20 && probe(hi) {
            lo = hi;
            hi *= 2;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if probe(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Commits a reservation (after [`Self::admissible`] succeeded).
    pub fn reserve(&mut self, reservation: LinkReservation) {
        self.reservations.push(reservation);
    }

    /// Releases one reservation equal to `reservation` (teardown).
    ///
    /// Returns whether a matching reservation existed.
    pub fn release(&mut self, reservation: LinkReservation) -> bool {
        if let Some(pos) = self.reservations.iter().position(|r| *r == reservation) {
            self.reservations.swap_remove(pos);
            true
        } else {
            false
        }
    }
}

/// Packet-buffer bookkeeping for one node's shared memory, with the §3.4
/// optional *logical partitioning* by outgoing link: "the connection
/// establishment procedure can logically partition the memory by limiting
/// the number of packet buffers dedicated to connections on each outgoing
/// link; otherwise, one link could reserve the bulk of the memory slots".
#[derive(Debug, Clone)]
pub struct BufferBook {
    capacity: usize,
    reserved: usize,
    port_caps: [Option<usize>; PORT_COUNT],
    port_reserved: [usize; PORT_COUNT],
}

impl BufferBook {
    /// A book over a memory of `capacity` packet slots, fully shared.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BufferBook {
            capacity,
            reserved: 0,
            port_caps: [None; PORT_COUNT],
            port_reserved: [0; PORT_COUNT],
        }
    }

    /// Caps the slots reservable by connections on one outgoing port
    /// (`None` restores full sharing).
    pub fn set_partition(&mut self, port_index: usize, cap: Option<usize>) {
        self.port_caps[port_index] = cap;
    }

    /// Slots still unreserved overall.
    #[must_use]
    pub fn available(&self) -> usize {
        self.capacity - self.reserved
    }

    /// Slots still reservable through a given outgoing port.
    #[must_use]
    pub fn available_for(&self, port_index: usize) -> usize {
        let by_cap = self.port_caps[port_index]
            .map_or(usize::MAX, |cap| cap.saturating_sub(self.port_reserved[port_index]));
        self.available().min(by_cap)
    }

    /// Slots reserved so far.
    #[must_use]
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Attempts to reserve `slots` at `node` for a connection leaving on
    /// the ports in `out_mask` (multicast charges every masked port's
    /// partition).
    ///
    /// # Errors
    ///
    /// Returns [`AdmissionError::BufferExceeded`] if the memory — or any
    /// masked port's partition — is over-committed.
    pub fn reserve(
        &mut self,
        node: NodeId,
        slots: usize,
        out_mask: u8,
    ) -> Result<(), AdmissionError> {
        let tightest = rtr_types::ids::ports_in_mask(out_mask)
            .map(|p| self.available_for(p.index()))
            .min()
            .unwrap_or_else(|| self.available());
        if slots > tightest {
            return Err(AdmissionError::BufferExceeded {
                node,
                requested: slots,
                available: tightest,
            });
        }
        self.reserved += slots;
        for p in rtr_types::ids::ports_in_mask(out_mask) {
            self.port_reserved[p.index()] += slots;
        }
        Ok(())
    }

    /// Releases `slots` (teardown).
    ///
    /// # Panics
    ///
    /// Panics if more slots are released than were reserved.
    pub fn release(&mut self, slots: usize, out_mask: u8) {
        assert!(slots <= self.reserved, "releasing more buffers than reserved");
        self.reserved -= slots;
        for p in rtr_types::ids::ports_in_mask(out_mask) {
            let r = &mut self.port_reserved[p.index()];
            assert!(slots <= *r, "releasing more than a port partition holds");
            *r -= slots;
        }
    }
}

/// The paper's per-node buffer requirement for one connection (§2):
/// `⌈((h_prev + d_prev) + d_j)/I_min⌉` messages of `packets` slots each,
/// plus the burst allowance at the source.
#[must_use]
pub fn buffers_needed(
    spec: &TrafficSpec,
    packets_per_message: u32,
    h_prev: u32,
    d_prev: u32,
    d_here: u32,
    is_source: bool,
) -> usize {
    let window = h_prev + d_prev + d_here;
    let messages =
        window.div_ceil(spec.i_min.max(1)).max(1) + if is_source { spec.b_max } else { 0 };
    messages as usize * packets_per_message as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn res(packets: u32, period: u32, delay: u32) -> LinkReservation {
        LinkReservation { packets, period, delay }
    }

    #[test]
    fn figure7_connections_are_admissible() {
        let mut book = LinkBook::new();
        for r in [res(1, 8, 4), res(1, 16, 8), res(1, 32, 16)] {
            book.admissible(r, 2).unwrap();
            book.reserve(r);
        }
        assert!((book.utilization_with(None) - 0.21875).abs() < 1e-12);
    }

    #[test]
    fn utilization_overflow_rejected() {
        let mut book = LinkBook::new();
        let r = res(1, 2, 2);
        book.admissible(r, 0).unwrap();
        book.reserve(r);
        book.reserve(r);
        // A third 1/2-utilisation connection exceeds capacity.
        assert!(matches!(book.admissible(r, 0), Err(AdmissionError::UtilizationExceeded { .. })));
    }

    #[test]
    fn tight_deadlines_can_fail_even_at_low_utilization() {
        let mut book = LinkBook::new();
        // Two connections each demanding a packet due within 3 slots of
        // every 100-slot period: utilisation is tiny but the shared
        // 3-slot window cannot hold both packets plus the η = 2 overhead.
        let r = res(1, 100, 3);
        book.admissible(r, 2).unwrap();
        book.reserve(r);
        assert!(matches!(book.admissible(r, 2), Err(AdmissionError::DeadlineInfeasible { .. })));
    }

    #[test]
    fn structural_constraints_enforced() {
        let book = LinkBook::new();
        assert!(matches!(
            book.admissible(res(1, 8, 9), 0),
            Err(AdmissionError::BadDelayBound { reason }) if reason.contains("I_min")
        ));
        assert!(matches!(
            book.admissible(res(3, 8, 2), 0),
            Err(AdmissionError::BadDelayBound { reason }) if reason.contains("transmission")
        ));
        assert!(book.admissible(res(0, 8, 4), 0).is_err());
    }

    #[test]
    fn headroom_shrinks_as_reservations_tighten() {
        let mut book = LinkBook::new();
        assert_eq!(book.headroom(), u32::MAX, "empty link has unlimited headroom");
        book.reserve(res(1, 32, 16));
        let loose = book.headroom();
        assert!(loose >= 10, "single loose connection leaves headroom {loose}");
        book.reserve(res(1, 32, 4));
        let tight = book.headroom();
        assert!(tight < loose, "tighter deadlines must shrink headroom");
        // Headroom is exactly the largest admissible η.
        let mut probe = LinkBook::new();
        probe.reserve(res(1, 32, 16));
        assert!(probe.admissible(res(1, 32, 4), tight).is_ok());
        assert!(probe.admissible(res(1, 32, 4), tight + 1).is_err());
    }

    #[test]
    fn release_undoes_reserve() {
        let mut book = LinkBook::new();
        let r = res(1, 4, 4);
        book.reserve(r);
        assert!(book.release(r));
        assert!(!book.release(r), "double release detected");
        assert_eq!(book.reservations().len(), 0);
    }

    #[test]
    fn buffer_book_reserve_release() {
        let mut b = BufferBook::new(10);
        b.reserve(NodeId(0), 6, 0b00010).unwrap();
        assert_eq!(b.available(), 4);
        let err = b.reserve(NodeId(0), 5, 0b00010).unwrap_err();
        assert!(matches!(err, AdmissionError::BufferExceeded { available: 4, .. }));
        b.release(6, 0b00010);
        assert_eq!(b.available(), 10);
    }

    #[test]
    fn buffer_partitions_limit_one_link_without_hurting_others() {
        let mut b = BufferBook::new(16);
        b.set_partition(1, Some(4)); // +x may hold at most 4 slots
        b.reserve(NodeId(0), 4, 0b00010).unwrap();
        // The +x partition is exhausted even though 12 slots remain.
        let err = b.reserve(NodeId(0), 1, 0b00010).unwrap_err();
        assert!(matches!(err, AdmissionError::BufferExceeded { available: 0, .. }));
        // Another port still sees the shared pool.
        assert_eq!(b.available_for(2), 12);
        b.reserve(NodeId(0), 12, 0b00100).unwrap();
        assert_eq!(b.available(), 0);
        b.release(4, 0b00010);
        assert_eq!(b.available_for(1), 4);
    }

    #[test]
    fn multicast_reservations_charge_every_masked_partition() {
        let mut b = BufferBook::new(16);
        b.set_partition(1, Some(3));
        b.set_partition(2, Some(8));
        b.reserve(NodeId(0), 3, 0b00110).unwrap();
        assert_eq!(b.available_for(1), 0);
        assert_eq!(b.available_for(2), 5);
        assert_eq!(b.reserved(), 3, "the shared pool is charged once");
    }

    #[test]
    fn utilization_only_policy_skips_the_demand_test() {
        let mut book = LinkBook::new();
        // Two packets due within 3 slots: the demand criterion rejects the
        // second, the utilisation-only policy happily admits it.
        let r = res(1, 100, 3);
        book.admissible_with(r, 2, AdmissionPolicy::DemandCriterion).unwrap();
        book.reserve(r);
        assert!(book.admissible_with(r, 2, AdmissionPolicy::DemandCriterion).is_err());
        assert!(book.admissible_with(r, 2, AdmissionPolicy::UtilizationOnly).is_ok());
        // Both policies still reject utilisation overload.
        let heavy = res(1, 1, 1);
        assert!(matches!(
            book.admissible_with(heavy, 0, AdmissionPolicy::UtilizationOnly),
            Err(AdmissionError::UtilizationExceeded { .. })
        ));
    }

    #[test]
    fn buffer_formula_matches_paper() {
        let spec = TrafficSpec { i_min: 8, s_max_bytes: 18, b_max: 2 };
        // (h_prev + d_prev + d_here)/I_min = (4 + 8 + 12)/8 = 3 messages.
        assert_eq!(buffers_needed(&spec, 1, 4, 8, 12, false), 3);
        // Source adds B_max messages.
        assert_eq!(buffers_needed(&spec, 1, 0, 0, 12, true), 2 + 2);
        // Two packets per message doubles the slots.
        assert_eq!(buffers_needed(&spec, 2, 4, 8, 12, false), 6);
    }

    /// Discrete-time EDF simulation used to validate the demand test.
    fn edf_meets_all_deadlines(rs: &[LinkReservation], horizon: u64, eta: u32) -> bool {
        // Jobs: (deadline, remaining). Release c_k packets every P_k with
        // deadline release + d_k. Simulate unit-speed EDF; η models a
        // worst-case initial blocking.
        #[derive(Clone, Copy)]
        struct Job {
            deadline: u64,
            remaining: u32,
        }
        let mut jobs: Vec<Job> = Vec::new();
        let mut blocked = u64::from(eta);
        for t in 0..horizon {
            for r in rs {
                if t % u64::from(r.period) == 0 {
                    jobs.push(Job { deadline: t + u64::from(r.delay), remaining: r.packets });
                }
            }
            if blocked > 0 {
                blocked -= 1;
            } else if let Some(i) = (0..jobs.len()).min_by_key(|&i| jobs[i].deadline) {
                jobs[i].remaining -= 1;
                if jobs[i].remaining == 0 {
                    jobs.swap_remove(i);
                }
            }
            if jobs.iter().any(|j| j.deadline <= t) {
                return false;
            }
        }
        true
    }

    proptest! {
        /// Soundness: whatever the demand test admits, a worst-case
        /// synchronous-release EDF simulation meets every deadline.
        #[test]
        fn admitted_sets_are_schedulable(
            candidates in proptest::collection::vec(
                (1u32..3, 4u32..40, 0u32..40).prop_map(|(c, p, extra)| {
                    let d = (c + extra % p).min(p);
                    res(c, p, d.max(c))
                }),
                1..6,
            )
        ) {
            let eta = 2;
            let mut book = LinkBook::new();
            let mut admitted = Vec::new();
            for r in candidates {
                if book.admissible(r, eta).is_ok() {
                    book.reserve(r);
                    admitted.push(r);
                }
            }
            if !admitted.is_empty() {
                let horizon = admitted.iter().map(|r| u64::from(r.period)).product::<u64>().min(4096)
                    + admitted.iter().map(|r| u64::from(r.delay)).max().unwrap();
                prop_assert!(
                    edf_meets_all_deadlines(&admitted, horizon, eta),
                    "admitted set missed a deadline: {admitted:?}"
                );
            }
        }
    }
}
