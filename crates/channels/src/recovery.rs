//! Live fault recovery: detect a mid-run failure, localize it from
//! link-level observables, and re-route the affected channel while the
//! mesh keeps running.
//!
//! The paper's establishment procedure (§5) assumes a static topology;
//! this module supplies the runtime half of fault tolerance. A monitor
//! watches a channel's destination for an arrival timeout (the
//! end-to-end symptom), localizes the fault from the per-link
//! conservation ledgers (the transmit-side symptoms: blackholed sends on
//! a downed link, arrivals ageing undrained at a crashed neighbour), and
//! then drives [`ChannelManager::reroute`] against the live simulator.
//! Channels whose routes avoid the fault are never touched — their
//! guarantees hold throughout — while the affected channel reports a
//! measured violation window and re-route latency.

use rtr_core::RealTimeRouter;
use rtr_mesh::{Simulator, Topology};
use rtr_types::ids::{Direction, NodeId};
use rtr_types::time::Cycle;

use crate::establish::{ChannelManager, EstablishError, EstablishedChannel};

/// Tuning knobs for the detection/recovery loop.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// How often (in cycles) the monitor polls the destination log.
    pub check_every: Cycle,
    /// Cycles without a new arrival before a fault is declared. Must be
    /// comfortably above the channel's delay bound or healthy jitter
    /// trips the detector.
    pub timeout: Cycle,
    /// Total cycle budget for the whole watch → detect → re-route →
    /// first-recovered-arrival sequence.
    pub max_cycles: Cycle,
    /// Modelled control-plane cost of reprogramming one router's tables.
    /// The recovery loop lets the mesh run `cycles_per_table_write × hops`
    /// cycles between detection and the replacement channel going live,
    /// so the reported re-route latency reflects reprogramming work
    /// instead of an instantaneous software write.
    pub cycles_per_table_write: Cycle,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            check_every: 64,
            timeout: 2048,
            max_cycles: 200_000,
            cycles_per_table_write: 8,
        }
    }
}

/// What happened during one recovery episode, with the cycle stamps the
/// experiments report.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Cycle at which the monitor declared the fault (arrival timeout).
    pub detected_at: Cycle,
    /// Directed links the localizer decided to route around.
    pub suspects: Vec<(NodeId, Direction)>,
    /// Cycle at which the replacement channel was installed.
    pub rerouted_at: Cycle,
    /// Cycle of the first arrival over the replacement route.
    pub recovered_at: Cycle,
    /// The replacement channel.
    pub channel: EstablishedChannel,
    /// Whether the replacement kept the original ingress connection id.
    /// [`ChannelManager::reroute`] explicitly prefers the torn-down
    /// channel's ingress id for the replacement (the generation-ordered
    /// allocator would otherwise put the just-released id at the back of
    /// the reuse queue), so senders stamped with the old ingress keep
    /// working unmodified whenever the id is still free at the source.
    pub ingress_preserved: bool,
}

impl RecoveryReport {
    /// Length of the service interruption: from fault declaration to the
    /// first arrival over the new route. (The true violation window also
    /// includes the pre-detection silence; callers that know the fault
    /// injection cycle can measure from there instead.)
    #[must_use]
    pub fn violation_window(&self) -> Cycle {
        self.recovered_at.saturating_sub(self.detected_at)
    }

    /// Control-plane latency: from fault declaration to the replacement
    /// channel being programmed into the routers.
    #[must_use]
    pub fn reroute_latency(&self) -> Cycle {
        self.rerouted_at.saturating_sub(self.detected_at)
    }
}

/// Why a recovery episode failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The cycle budget elapsed without the destination ever stalling.
    NoFaultObserved,
    /// The destination stalled but the localizer found no suspect link —
    /// the stall is not explained by the fault plane (e.g. the source
    /// itself stopped).
    NoSuspects,
    /// Re-establishment around the suspects failed; the original channel
    /// is preserved when the failure was `NoRoute`.
    Reroute(EstablishError),
    /// The replacement channel was installed but no arrival followed
    /// within the remaining budget.
    NotRecovered,
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoFaultObserved => write!(f, "no arrival timeout within the budget"),
            RecoveryError::NoSuspects => write!(f, "stall detected but no suspect links found"),
            RecoveryError::Reroute(e) => write!(f, "re-route failed: {e}"),
            RecoveryError::NotRecovered => {
                write!(f, "re-routed but no arrival followed within the budget")
            }
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Localizes faults from transmit-side observables only.
///
/// Two symptoms identify a fault without peeking at simulator ground
/// truth beyond what a transmitter could see in hardware:
///
/// * a *downed link* blackholes everything driven onto it — the
///   credit-timeout monitors modelled by [`Simulator::downed_links`]
///   report it directly;
/// * a *crashed node* stops draining its input links, so arrivals age
///   past their delivery cycle and show up in the upstream link's
///   [`late_arrivals_dropped`](rtr_mesh::LinkLedger::late_arrivals_dropped)
///   ledger column. Every link touching such a neighbour is marked
///   suspect in both directions, steering the BFS around the node.
#[must_use]
pub fn suspect_dead_links<C: rtr_types::chip::Chip>(
    sim: &Simulator<C>,
    topo: &Topology,
) -> Vec<(NodeId, Direction)> {
    let mut dead = sim.downed_links();
    for node in topo.nodes() {
        for dir in Direction::ALL {
            let Some(end) = topo.link_end(node, dir) else { continue };
            if sim.link_ledger(node, dir).late_arrivals_dropped == 0 {
                continue;
            }
            // The receiver stopped draining: presume the neighbour
            // crashed and avoid every link touching it.
            let suspect = end.node;
            for d in Direction::ALL {
                if let Some(far) = topo.link_end(suspect, d) {
                    dead.push((suspect, d));
                    dead.push((far.node, d.opposite()));
                }
            }
        }
    }
    dead.sort_by_key(|(n, d)| (n.index(), *d as u8));
    dead.dedup();
    dead
}

/// Runs the full watch → detect → localize → re-route → recover loop
/// against a live simulation.
///
/// Steps `sim` in [`RecoveryConfig::check_every`]-cycle chunks watching
/// `watch_dst`'s time-constrained delivery log. Once `timeout` cycles
/// pass without a new arrival the fault is declared, suspects are
/// gathered with [`suspect_dead_links`], and `manager` re-routes
/// `channel_id` around them through the simulator's control plane (which
/// reprograms router tables mid-run). The loop then keeps the mesh
/// running until the first arrival over the replacement route and
/// reports all three cycle stamps.
///
/// # Errors
///
/// See [`RecoveryError`]. On [`RecoveryError::Reroute`] with
/// [`EstablishError::NoRoute`] the original channel is left installed;
/// other establishment failures tear it down first (the manager's
/// documented re-route semantics).
pub fn watch_and_recover(
    sim: &mut Simulator<RealTimeRouter>,
    manager: &mut ChannelManager,
    topo: &Topology,
    channel_id: u64,
    watch_dst: NodeId,
    config: &RecoveryConfig,
) -> Result<RecoveryReport, RecoveryError> {
    let old_ingress = manager.channels().get(&channel_id).map(|c| c.ingress);
    let deadline = sim.now() + config.max_cycles;
    let mut last_len = sim.log(watch_dst).tc.len();
    let mut last_progress = sim.now();
    let detected_at = loop {
        if sim.now() >= deadline {
            return Err(RecoveryError::NoFaultObserved);
        }
        sim.run(config.check_every.min(deadline - sim.now()));
        let len = sim.log(watch_dst).tc.len();
        if len > last_len {
            last_len = len;
            last_progress = sim.now();
        } else if sim.now() - last_progress >= config.timeout {
            break sim.now();
        }
    };

    let suspects = suspect_dead_links(sim, topo);
    if suspects.is_empty() {
        return Err(RecoveryError::NoSuspects);
    }
    // Charge the modelled reprogramming time (one table write per hop of
    // the outgoing route) before the replacement goes live; the mesh keeps
    // running — and keeps blackholing — in the meantime.
    let hops = manager.channels().get(&channel_id).map_or(0, |c| c.hops.len()) as Cycle;
    sim.run((config.cycles_per_table_write * hops).min(deadline.saturating_sub(sim.now())));
    let channel =
        manager.reroute(channel_id, topo, &suspects, sim).map_err(RecoveryError::Reroute)?;
    let rerouted_at = sim.now();
    let ingress_preserved = old_ingress == Some(channel.ingress);

    let before = sim.log(watch_dst).tc.len();
    let budget = deadline.saturating_sub(sim.now());
    if !sim.run_until(budget, |s| s.log(watch_dst).tc.len() > before) {
        return Err(RecoveryError::NotRecovered);
    }
    let recovered_at = sim.log(watch_dst).tc[before].0;
    Ok(RecoveryReport {
        detected_at,
        suspects,
        rerouted_at,
        recovered_at,
        channel,
        ingress_preserved,
    })
}
