//! The real-time channel abstraction (paper §2) and its protocol software
//! (paper §4.1).
//!
//! A *real-time channel* is a unidirectional virtual connection with a
//! traffic contract `(I_min, S_max, B_max)` and an end-to-end delay bound
//! `D` on logical arrival times. The chip schedules packets; everything else
//! — admission control, route selection, delay-bound decomposition,
//! identifier allocation, table programming — is software, implemented here:
//!
//! * [`spec`] — traffic contracts and channel requests,
//! * [`arrival`] — the logical-arrival-time recurrence and an LBAP policer,
//! * [`admission`] — the EDF processor-demand link test and buffer
//!   reservation accounting,
//! * [`establish`] — the [`establish::ChannelManager`] that admits channels
//!   and programs routers through the Table 3 control interface,
//! * [`sender`] — source-side message stamping and packetisation,
//! * [`recovery`] — mid-run fault detection and guaranteed-safe
//!   re-routing against a live simulation,
//! * [`control_plane`] — the live [`control_plane::SignalingEngine`]:
//!   establish/teardown against a *running* mesh, with table writes
//!   applied as timed simulated work instead of an instantaneous pause.
//!
//! # Example
//!
//! ```
//! use rtr_channels::establish::ChannelManager;
//! use rtr_channels::spec::{ChannelRequest, TrafficSpec};
//! use rtr_core::RealTimeRouter;
//! use rtr_mesh::{Simulator, Topology};
//! use rtr_types::config::RouterConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = RouterConfig::default();
//! let topo = Topology::mesh(4, 4);
//! let mut sim = Simulator::build(topo.clone(), |_| RealTimeRouter::new(config.clone()))?;
//! let mut manager = ChannelManager::new(&config);
//! let channel = manager.establish(
//!     &topo,
//!     ChannelRequest::unicast(
//!         topo.node_at(0, 0),
//!         topo.node_at(3, 2),
//!         TrafficSpec::periodic(16, 18),
//!         60,
//!     ),
//!     &mut sim,
//! )?;
//! assert_eq!(channel.depth, 6); // 5 links + the reception port
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod arrival;
pub mod control_plane;
pub mod establish;
pub mod recovery;
pub mod sender;
pub mod spec;

pub use admission::{AdmissionError, AdmissionPolicy, BufferBook, LinkBook, LinkReservation};
pub use arrival::{ArrivalTracker, Policer};
pub use control_plane::{
    DeferredPlane, EstablishTicket, SignalingEngine, SignalingStats, TeardownStyle, TeardownTicket,
};
pub use establish::{
    ChannelManager, ControlPlane, EstablishError, EstablishedChannel, Hop, LinkLoad, WordLevelPlane,
};
pub use recovery::{
    suspect_dead_links, watch_and_recover, RecoveryConfig, RecoveryError, RecoveryReport,
};
pub use sender::{ChannelSender, PolicedSender};
pub use spec::{ChannelRequest, TrafficSpec};
