//! Channel establishment: route selection, delay-bound decomposition,
//! admission, and router programming (paper §2, §4.1).
//!
//! Establishment is deliberately *software*: the chip only exposes the
//! Table 3 control interface, and everything here — admission tests, route
//! selection, identifier allocation — runs in the protocol stack, exactly as
//! the paper argues for (§4.1: "relegates these non-real-time operations to
//! the protocol software").
//!
//! A channel is a tree rooted at the source (a chain for unicast). Every
//! tree node gets one local delay bound `d` (the paper's simplification: a
//! multicast connection uses the same `d` for all output ports at a node),
//! one incoming connection identifier, and one outgoing identifier shared by
//! all children. The reception port at each destination is scheduled like a
//! link and receives its own `d`.

use std::collections::{BTreeMap, HashMap, HashSet};

use rtr_core::control::{ControlCommand, ControlError};
use rtr_core::RealTimeRouter;
use rtr_mesh::sim::Simulator;
use rtr_mesh::topology::Topology;
use rtr_types::config::RouterConfig;
use rtr_types::ids::{ConnectionId, Direction, NodeId, Port};

use crate::admission::{
    buffers_needed, AdmissionError, AdmissionPolicy, BufferBook, LinkBook, LinkReservation,
};
use crate::spec::ChannelRequest;

/// A failure to establish a channel.
#[derive(Debug, PartialEq, Eq)]
pub enum EstablishError {
    /// Admission control rejected the request (network state unchanged).
    Admission(AdmissionError),
    /// Programming a router failed (should not happen when the manager is
    /// the only writer of the tables).
    Control(ControlError),
}

impl From<AdmissionError> for EstablishError {
    fn from(e: AdmissionError) -> Self {
        EstablishError::Admission(e)
    }
}

impl From<ControlError> for EstablishError {
    fn from(e: ControlError) -> Self {
        EstablishError::Control(e)
    }
}

impl std::fmt::Display for EstablishError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstablishError::Admission(e) => write!(f, "admission rejected: {e}"),
            EstablishError::Control(e) => write!(f, "router programming failed: {e}"),
        }
    }
}

impl std::error::Error for EstablishError {}

/// Applies control commands to routers — implemented for the mesh simulator
/// and mockable in tests.
pub trait ControlPlane {
    /// Applies one Table 3 command at a node.
    ///
    /// # Errors
    ///
    /// Propagates the router's [`ControlError`].
    fn apply(&mut self, node: NodeId, cmd: ControlCommand) -> Result<(), ControlError>;
}

impl ControlPlane for Simulator<RealTimeRouter> {
    fn apply(&mut self, node: NodeId, cmd: ControlCommand) -> Result<(), ControlError> {
        self.chip_mut(node).apply_control(cmd)
    }
}

/// A control plane that drives the routers through the raw Table 3 pin
/// protocol (the 4-write connection sequence and 2-write horizon sequence)
/// instead of the typed convenience API — byte-for-byte what the
/// controlling processor would do.
#[derive(Debug)]
pub struct WordLevelPlane<'a>(pub &'a mut Simulator<RealTimeRouter>);

impl ControlPlane for WordLevelPlane<'_> {
    fn apply(&mut self, node: NodeId, cmd: ControlCommand) -> Result<(), ControlError> {
        use rtr_core::control::ControlReg;
        let chip = self.0.chip_mut(node);
        match cmd {
            ControlCommand::SetConnection { incoming, outgoing, delay, out_mask } => {
                chip.control_write(ControlReg::OutConn, outgoing.0)?;
                chip.control_write(ControlReg::Delay, delay as u16)?;
                chip.control_write(ControlReg::PortMask, u16::from(out_mask))?;
                chip.control_write(ControlReg::InConnCommit, incoming.0)?;
                Ok(())
            }
            ControlCommand::SetHorizon { port_mask, horizon } => {
                chip.control_write(ControlReg::HorizonMask, u16::from(port_mask))?;
                chip.control_write(ControlReg::HorizonCommit, horizon as u16)?;
                Ok(())
            }
            // The chip has no teardown pin sequence; protocol software
            // clears entries through the same typed path.
            ControlCommand::ClearConnection { .. } => chip.apply_control(cmd),
        }
    }
}

/// One node of an established channel's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The router.
    pub node: NodeId,
    /// Incoming connection identifier at this router.
    pub conn: ConnectionId,
    /// Identifier written into forwarded headers (shared by all children).
    pub out_conn: ConnectionId,
    /// Local delay bound `d` at this router, in slots.
    pub delay: u32,
    /// Output-port mask (network children plus `Local` at destinations).
    pub out_mask: u8,
    /// Packet buffers reserved at this node.
    pub buffers: usize,
}

/// A successfully established real-time channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EstablishedChannel {
    /// Manager-assigned identifier.
    pub id: u64,
    /// The original request.
    pub request: ChannelRequest,
    /// Tree nodes in breadth-first order from the source.
    pub hops: Vec<Hop>,
    /// The connection identifier the source uses when injecting.
    pub ingress: ConnectionId,
    /// Scheduled hops on the deepest source→destination path (links plus
    /// the reception port).
    pub depth: u32,
    /// The analytic worst-case end-to-end delay: the largest sum of
    /// per-hop delay bounds over any source→destination path. Always at
    /// most the requested deadline.
    pub guaranteed: u32,
}

impl EstablishedChannel {
    /// The hop entry for a node, if the tree passes through it.
    #[must_use]
    pub fn hop_at(&self, node: NodeId) -> Option<&Hop> {
        self.hops.iter().find(|h| h.node == node)
    }

    /// The analytic worst-case end-to-end delay (slots): the largest sum
    /// of per-hop delay bounds over any source→destination path. A message
    /// with logical arrival time `ℓ0` is guaranteed delivered by
    /// `ℓ0 + guaranteed_bound()`, which never exceeds the requested
    /// deadline.
    #[must_use]
    pub fn guaranteed_bound(&self) -> u32 {
        self.guaranteed
    }
}

/// One row of [`ChannelManager::utilization_report`]: the reservation
/// state of a single scheduled link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLoad {
    /// The node owning the link.
    pub node: NodeId,
    /// The outgoing port (reception = `Port::Local`).
    pub port: Port,
    /// Connections reserved on this link.
    pub connections: usize,
    /// Long-run reserved utilisation (packet slots per slot).
    pub utilization: f64,
    /// Schedulability headroom: the largest overhead allowance `η` (slots)
    /// the current set still tolerates.
    pub headroom_slots: u32,
}

/// The channel manager: owns the network's reservation state and programs
/// routers through a [`ControlPlane`].
///
/// The manager assumes it is the only writer of connection tables.
#[derive(Debug)]
pub struct ChannelManager {
    eta: u32,
    data_bytes: usize,
    half_range: u32,
    buffer_capacity: usize,
    conn_capacity: usize,
    /// Horizon the manager assumes links use when sizing downstream buffers
    /// (§4.1: larger horizons require more reservation).
    assumed_horizon: u32,
    /// Link schedulability test variant.
    policy: AdmissionPolicy,
    links: HashMap<(NodeId, usize), LinkBook>,
    buffers: HashMap<NodeId, BufferBook>,
    used_ids: HashMap<NodeId, HashSet<u16>>,
    /// Generation tag of the most recent release of each `(node, id)` —
    /// the teardown recency record behind [`ChannelManager::pick_free_id`]:
    /// never-released ids are handed out first (smallest), then the
    /// least-recently-released, so a just-torn-down identifier goes to the
    /// back of the reuse queue and its in-flight packets drain into the
    /// teardown ledger before the id can carry new traffic.
    released_gen: HashMap<NodeId, HashMap<u16, u64>>,
    /// Monotone teardown clock stamping `released_gen` entries.
    release_clock: u64,
    /// One-shot ingress-id preference consumed by the next establishment's
    /// source pick (set by [`ChannelManager::reroute`] so a replacement
    /// channel keeps its predecessor's ingress id and senders stamped with
    /// it keep working, generation ordering notwithstanding).
    prefer_ingress: Option<u16>,
    channels: HashMap<u64, EstablishedChannel>,
    next_id: u64,
}

impl ChannelManager {
    /// Creates a manager for routers built with `config`.
    #[must_use]
    pub fn new(config: &RouterConfig) -> Self {
        ChannelManager {
            eta: 2,
            data_bytes: config.tc_data_bytes(),
            half_range: 1 << (config.clock_bits - 1),
            buffer_capacity: config.packet_slots,
            conn_capacity: config.connections,
            assumed_horizon: 0,
            policy: AdmissionPolicy::default(),
            links: HashMap::new(),
            buffers: HashMap::new(),
            used_ids: HashMap::new(),
            released_gen: HashMap::new(),
            release_clock: 0,
            prefer_ingress: None,
            channels: HashMap::new(),
            next_id: 0,
        }
    }

    /// Sets the blocking/overhead allowance `η` used by the link test.
    pub fn set_eta(&mut self, eta: u32) {
        self.eta = eta;
    }

    /// Sets the horizon value assumed when sizing downstream buffers. Must
    /// match (or exceed) the horizon registers actually programmed into the
    /// routers.
    pub fn set_assumed_horizon(&mut self, horizon: u32) {
        self.assumed_horizon = horizon;
    }

    /// Selects the link schedulability test (see [`AdmissionPolicy`]; the
    /// unsound utilisation-only variant exists for the ablation study).
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// Caps the packet buffers reservable by connections leaving `node` on
    /// `port` — the §3.4 logical memory partitioning. `None` restores full
    /// sharing.
    pub fn set_buffer_partition(&mut self, node: NodeId, port: Port, cap: Option<usize>) {
        self.buffers
            .entry(node)
            .or_insert_with(|| BufferBook::new(self.buffer_capacity))
            .set_partition(port.index(), cap);
    }

    /// Established channels, by identifier.
    #[must_use]
    pub fn channels(&self) -> &HashMap<u64, EstablishedChannel> {
        &self.channels
    }

    /// The link book of `(node, port)` (reception = `Port::Local`).
    #[must_use]
    pub fn link_book(&self, node: NodeId, port: Port) -> Option<&LinkBook> {
        self.links.get(&(node, port.index()))
    }

    /// A network-wide reservation summary: per reserved link, its
    /// utilisation and schedulability headroom, densest first. Protocol
    /// software uses this to pick routes, size horizons, and decide
    /// partitions.
    #[must_use]
    pub fn utilization_report(&self) -> Vec<LinkLoad> {
        let mut rows: Vec<LinkLoad> = self
            .links
            .iter()
            .filter(|(_, book)| !book.reservations().is_empty())
            .map(|(&(node, port_index), book)| LinkLoad {
                node,
                port: Port::from_index(port_index),
                connections: book.reservations().len(),
                utilization: book.utilization_with(None),
                headroom_slots: book.headroom(),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.utilization
                .partial_cmp(&a.utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.node, a.port.index()).cmp(&(b.node, b.port.index())))
        });
        rows
    }

    /// Attempts to establish `request`; on success the routers reached
    /// through `plane` are programmed and reservations committed. On
    /// failure, no state changes.
    ///
    /// # Errors
    ///
    /// See [`EstablishError`].
    pub fn establish(
        &mut self,
        topo: &Topology,
        request: ChannelRequest,
        plane: &mut impl ControlPlane,
    ) -> Result<EstablishedChannel, EstablishError> {
        // Default route selection: dimension-ordered paths (which always
        // merge into a tree from one source).
        let routes: Vec<Vec<Direction>> =
            request.destinations.iter().map(|&dst| topo.dor_route(request.source, dst)).collect();
        self.establish_routed(topo, request, &routes, plane)
    }

    /// Like [`Self::establish`], but over explicitly chosen routes (one per
    /// destination) — e.g. paths produced by
    /// [`Topology::route_avoiding`] to steer around failed or saturated
    /// links. The routes must merge into a tree (§3.3's table-driven
    /// routing forwards one copy per output port, so a node cannot have
    /// two parents).
    ///
    /// # Errors
    ///
    /// See [`EstablishError`]; in particular
    /// [`AdmissionError::InvalidRoute`] if the routes do not form a tree or
    /// do not end at the request's destinations.
    pub fn establish_routed(
        &mut self,
        topo: &Topology,
        request: ChannelRequest,
        routes: &[Vec<Direction>],
        plane: &mut impl ControlPlane,
    ) -> Result<EstablishedChannel, EstablishError> {
        if request.destinations.is_empty() {
            return Err(AdmissionError::NoRoute.into());
        }
        // The ingress preference is one-shot: consumed here so a failed
        // establishment cannot leak it into an unrelated later one.
        let prefer_ingress = self.prefer_ingress.take();
        let packets = request.spec.packets_per_message(self.data_bytes);

        // 1. Build the routing tree (BFS order; each node has a unique
        //    parent).
        let tree = RouteTree::build_from_routes(topo, &request, routes)?;

        // 2. Decompose the deadline: a uniform per-node delay, with the
        //    remainder spread along the deepest path.
        let depth = tree.max_depth();
        let base = request.deadline / depth;
        let remainder = request.deadline % depth;
        if base < packets {
            return Err(AdmissionError::BadDelayBound {
                reason: "deadline too tight for the route length",
            }
            .into());
        }
        let mut delays: BTreeMap<NodeId, u32> = BTreeMap::new();
        for &node in tree.order() {
            delays.insert(node, base.min(request.spec.i_min).min(self.half_range - 1));
        }
        for node in tree.deepest_path().into_iter().take(remainder as usize) {
            let d = delays.get_mut(&node).expect("deepest path node in tree");
            *d = (*d + 1).min(request.spec.i_min).min(self.half_range - 1);
        }

        // 3. Admission: links (including reception ports) and buffers.
        let mut planned: Vec<Hop> = Vec::new();
        for &node in tree.order() {
            let d_here = delays[&node];
            let reservation =
                LinkReservation { packets, period: request.spec.i_min, delay: d_here };
            let mut mask = 0u8;
            for dir in tree.children(node) {
                mask |= Port::Dir(dir).mask();
            }
            if tree.delivers(node) {
                mask |= Port::Local.mask();
            }
            for port in rtr_types::ids::ports_in_mask(mask) {
                self.links.entry((node, port.index())).or_default().admissible_with(
                    reservation,
                    self.eta,
                    self.policy,
                )?;
            }
            let (h_prev, d_prev, is_source) = match tree.parent(node) {
                Some(parent) => (self.assumed_horizon, delays[&parent], false),
                None => (0, 0, true),
            };
            let buffers = buffers_needed(&request.spec, packets, h_prev, d_prev, d_here, is_source);
            let book =
                self.buffers.entry(node).or_insert_with(|| BufferBook::new(self.buffer_capacity));
            let tightest = rtr_types::ids::ports_in_mask(mask)
                .map(|p| book.available_for(p.index()))
                .min()
                .unwrap_or_else(|| book.available());
            if buffers > tightest {
                return Err(AdmissionError::BufferExceeded {
                    node,
                    requested: buffers,
                    available: tightest,
                }
                .into());
            }
            planned.push(Hop {
                node,
                conn: ConnectionId(0),     // assigned below
                out_conn: ConnectionId(0), // assigned below
                delay: d_here,
                out_mask: mask,
                buffers,
            });
        }

        // 4. Connection identifiers: the source picks any free id; each
        //    parent's outgoing id must be free at *all* children.
        let mut assigned: HashMap<NodeId, ConnectionId> = HashMap::new();
        let mut newly_used: Vec<(NodeId, u16)> = Vec::new();
        {
            let preferred = prefer_ingress
                .filter(|&id| {
                    (id as usize) < self.conn_capacity
                        && self.used_ids.get(&request.source).is_none_or(|used| !used.contains(&id))
                })
                .map(ConnectionId);
            let source_id = preferred
                .or_else(|| self.pick_free_id(&[request.source]))
                .ok_or(AdmissionError::NoFreeConnectionId { node: request.source })?;
            assigned.insert(request.source, source_id);
            newly_used.push((request.source, source_id.0));
            self.used_ids.entry(request.source).or_default().insert(source_id.0);
        }
        for &node in tree.order() {
            let child_nodes: Vec<NodeId> = tree
                .children(node)
                .map(|dir| topo.link_end(node, dir).expect("tree uses wired links").node)
                .collect();
            if child_nodes.is_empty() {
                continue;
            }
            let Some(id) = self.pick_free_id(&child_nodes) else {
                // Roll back id marks before failing.
                for (n, v) in newly_used {
                    self.used_ids.get_mut(&n).map(|s| s.remove(&v));
                }
                return Err(AdmissionError::NoFreeConnectionId { node: child_nodes[0] }.into());
            };
            for &child in &child_nodes {
                assigned.insert(child, id);
                newly_used.push((child, id.0));
                self.used_ids.entry(child).or_default().insert(id.0);
            }
        }
        for hop in &mut planned {
            hop.conn = assigned[&hop.node];
            let first_child = tree
                .children(hop.node)
                .next()
                .map(|dir| topo.link_end(hop.node, dir).expect("wired").node);
            hop.out_conn = match first_child {
                Some(child) => assigned[&child],
                None => hop.conn,
            };
        }

        // 5. Commit reservations and program the routers.
        for hop in &planned {
            let reservation =
                LinkReservation { packets, period: request.spec.i_min, delay: hop.delay };
            for port in rtr_types::ids::ports_in_mask(hop.out_mask) {
                self.links.entry((hop.node, port.index())).or_default().reserve(reservation);
            }
            self.buffers
                .get_mut(&hop.node)
                .expect("buffer book created during admission")
                .reserve(hop.node, hop.buffers, hop.out_mask)
                .expect("buffer availability checked during admission");
            plane.apply(
                hop.node,
                ControlCommand::SetConnection {
                    incoming: hop.conn,
                    outgoing: hop.out_conn,
                    delay: hop.delay,
                    out_mask: hop.out_mask,
                },
            )?;
        }

        let id = self.next_id;
        self.next_id += 1;
        // Analytic bound: the largest per-path sum of the committed delay
        // bounds (≤ the requested deadline by construction).
        let guaranteed = request
            .destinations
            .iter()
            .map(|&dst| {
                let mut sum = delays[&dst];
                let mut here = dst;
                while let Some(p) = tree.parent(here) {
                    sum += delays[&p];
                    here = p;
                }
                sum
            })
            .max()
            .unwrap_or(0);
        debug_assert!(guaranteed <= request.deadline);

        let channel = EstablishedChannel {
            id,
            ingress: assigned[&request.source],
            depth,
            guaranteed,
            hops: planned,
            request,
        };
        self.channels.insert(id, channel.clone());
        Ok(channel)
    }

    /// Re-establishes a channel around failed links: tears the channel
    /// down, computes shortest detours avoiding `dead` links, and
    /// establishes over them (unicast per destination; multicast requests
    /// are rerouted destination-by-destination and must still merge into a
    /// tree).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::NoRoute`] if the channel is unknown or the
    /// failures disconnect a destination — the original channel is then
    /// left untouched. If detour *admission* fails, the original has
    /// already been torn down (its resources were released to make room
    /// for the detour); callers should re-establish it.
    pub fn reroute(
        &mut self,
        channel_id: u64,
        topo: &Topology,
        dead: &[(NodeId, Direction)],
        plane: &mut impl ControlPlane,
    ) -> Result<EstablishedChannel, EstablishError> {
        let Some(channel) = self.channels.get(&channel_id).cloned() else {
            return Err(AdmissionError::NoRoute.into());
        };
        let request = channel.request.clone();
        let mut routes = Vec::with_capacity(request.destinations.len());
        for &dst in &request.destinations {
            let route = topo
                .route_avoiding(request.source, dst, dead)
                .ok_or(EstablishError::Admission(AdmissionError::NoRoute))?;
            routes.push(route);
        }
        self.teardown(channel_id, plane)?;
        // Keep the torn-down channel's ingress id for the replacement:
        // senders stamped with the old ingress keep working unmodified,
        // and the generation-ordered allocator would otherwise send the
        // just-released id to the back of the reuse queue.
        self.prefer_ingress = Some(channel.ingress.0);
        self.establish_routed(topo, request, &routes, plane)
    }

    /// Tears down an established channel: clears table entries, releases
    /// reservations and identifiers.
    ///
    /// # Errors
    ///
    /// Propagates router programming errors; reservation state is released
    /// regardless.
    pub fn teardown(
        &mut self,
        channel_id: u64,
        plane: &mut impl ControlPlane,
    ) -> Result<(), EstablishError> {
        let Some(channel) = self.channels.remove(&channel_id) else {
            return Ok(());
        };
        let packets = channel.request.spec.packets_per_message(self.data_bytes);
        self.release_clock += 1;
        let stamp = self.release_clock;
        let mut first_error: Option<ControlError> = None;
        for hop in &channel.hops {
            let reservation =
                LinkReservation { packets, period: channel.request.spec.i_min, delay: hop.delay };
            for port in rtr_types::ids::ports_in_mask(hop.out_mask) {
                self.links.get_mut(&(hop.node, port.index())).map(|b| b.release(reservation));
            }
            if let Some(book) = self.buffers.get_mut(&hop.node) {
                book.release(hop.buffers, hop.out_mask);
            }
            if let Some(ids) = self.used_ids.get_mut(&hop.node) {
                ids.remove(&hop.conn.0);
            }
            self.released_gen.entry(hop.node).or_default().insert(hop.conn.0, stamp);
            if let Err(e) =
                plane.apply(hop.node, ControlCommand::ClearConnection { incoming: hop.conn })
            {
                first_error.get_or_insert(e);
            }
        }
        match first_error {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }

    /// Generation-ordered identifier allocation: among the ids free at
    /// every listed node, the smallest never-released one wins; when all
    /// free ids have been released before, the least-recently-released
    /// (smallest on ties). Recycling an id therefore waits as long as the
    /// id space allows, giving a torn-down predecessor's in-flight packets
    /// the longest possible window to drain into the teardown ledger.
    fn pick_free_id(&self, nodes: &[NodeId]) -> Option<ConnectionId> {
        let mut best: Option<(u64, u16)> = None;
        for id in 0..self.conn_capacity as u16 {
            let free_everywhere =
                nodes.iter().all(|n| self.used_ids.get(n).is_none_or(|used| !used.contains(&id)));
            if !free_everywhere {
                continue;
            }
            // The id's reuse recency is its *latest* release anywhere on
            // the candidate node set (zero = never released).
            let gen = nodes
                .iter()
                .map(|n| self.released_gen.get(n).and_then(|m| m.get(&id)).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            if gen == 0 {
                return Some(ConnectionId(id));
            }
            if best.is_none_or(|(bg, _)| gen < bg) {
                best = Some((gen, id));
            }
        }
        best.map(|(_, id)| ConnectionId(id))
    }
}

/// The routing tree of one channel: DOR paths from the source to every
/// destination, merged.
#[derive(Debug)]
struct RouteTree {
    /// Nodes in BFS order from the source.
    order: Vec<NodeId>,
    children: HashMap<NodeId, Vec<Direction>>,
    parent: HashMap<NodeId, NodeId>,
    delivers: HashSet<NodeId>,
    /// Scheduled-hop depth (nodes on path, including the destination's
    /// reception) per destination.
    depths: HashMap<NodeId, u32>,
}

impl RouteTree {
    fn build_from_routes(
        topo: &Topology,
        request: &ChannelRequest,
        routes: &[Vec<Direction>],
    ) -> Result<RouteTree, AdmissionError> {
        if routes.len() != request.destinations.len() {
            return Err(AdmissionError::InvalidRoute {
                reason: "one route per destination required",
            });
        }
        let mut children: HashMap<NodeId, Vec<Direction>> = HashMap::new();
        let mut parent = HashMap::new();
        let mut delivers = HashSet::new();
        let mut depths = HashMap::new();
        let mut seen = vec![request.source];
        for (&dst, route) in request.destinations.iter().zip(routes) {
            let nodes = topo.walk(request.source, route);
            if *nodes.last().expect("walk includes the source") != dst {
                return Err(AdmissionError::InvalidRoute {
                    reason: "route does not end at its destination",
                });
            }
            depths.insert(dst, route.len() as u32 + 1);
            delivers.insert(dst);
            for (i, dir) in route.iter().enumerate() {
                let here = nodes[i];
                let next = nodes[i + 1];
                match parent.get(&next) {
                    Some(&p) if p != here => {
                        // Two routes reach `next` from different parents:
                        // the single outgoing-identifier-per-node scheme of
                        // §3.3 cannot express that.
                        return Err(AdmissionError::InvalidRoute {
                            reason: "routes must merge into a tree",
                        });
                    }
                    _ => {}
                }
                if next == request.source {
                    return Err(AdmissionError::InvalidRoute {
                        reason: "route loops back through the source",
                    });
                }
                let kids = children.entry(here).or_default();
                if !kids.contains(dir) {
                    kids.push(*dir);
                    parent.insert(next, here);
                    seen.push(next);
                }
            }
        }
        // BFS order: `seen` is path-ordered; dedup preserving first
        // occurrence gives parents before children.
        let mut order = Vec::new();
        let mut visited = HashSet::new();
        for n in seen {
            if visited.insert(n) {
                order.push(n);
            }
        }
        Ok(RouteTree { order, children, parent, delivers, depths })
    }

    fn order(&self) -> &[NodeId] {
        &self.order
    }

    fn children(&self, node: NodeId) -> impl Iterator<Item = Direction> + '_ {
        self.children.get(&node).into_iter().flatten().copied()
    }

    fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(&node).copied()
    }

    fn delivers(&self, node: NodeId) -> bool {
        self.delivers.contains(&node)
    }

    fn max_depth(&self) -> u32 {
        self.depths.values().copied().max().unwrap_or(1)
    }

    /// Nodes on the path to the deepest destination, source first.
    fn deepest_path(&self) -> Vec<NodeId> {
        let Some((&dst, _)) = self.depths.iter().max_by_key(|(_, d)| **d) else {
            return Vec::new();
        };
        let mut path = vec![dst];
        let mut here = dst;
        while let Some(p) = self.parent(here) {
            path.push(p);
            here = p;
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrafficSpec;

    /// A control plane that records commands without real routers.
    #[derive(Default)]
    struct MockPlane {
        commands: Vec<(NodeId, ControlCommand)>,
    }

    impl ControlPlane for MockPlane {
        fn apply(&mut self, node: NodeId, cmd: ControlCommand) -> Result<(), ControlError> {
            self.commands.push((node, cmd));
            Ok(())
        }
    }

    fn manager() -> ChannelManager {
        ChannelManager::new(&RouterConfig::default())
    }

    #[test]
    fn unicast_establishment_programs_every_hop() {
        let topo = Topology::mesh(4, 4);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let request = ChannelRequest::unicast(
            topo.node_at(0, 0),
            topo.node_at(2, 1),
            TrafficSpec::periodic(16, 18),
            40,
        );
        let ch = mgr.establish(&topo, request, &mut plane).unwrap();
        // Route: +x +x +y = 3 links + reception = depth 4.
        assert_eq!(ch.depth, 4);
        assert_eq!(ch.hops.len(), 4);
        assert_eq!(plane.commands.len(), 4);
        // Per-node delays sum to the deadline along the path.
        let total: u32 = ch.hops.iter().map(|h| h.delay).sum();
        assert_eq!(total, 40);
        assert_eq!(ch.guaranteed_bound(), 40, "analytic bound = the path sum");
        // Destination hop delivers locally.
        let dst_hop = ch.hop_at(topo.node_at(2, 1)).unwrap();
        assert_eq!(dst_hop.out_mask, Port::Local.mask());
        // Intermediate hops forward on exactly one port.
        let mid = ch.hop_at(topo.node_at(1, 0)).unwrap();
        assert_eq!(mid.out_mask.count_ones(), 1);
    }

    #[test]
    fn connection_ids_chain_between_hops() {
        let topo = Topology::mesh(3, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let ch = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(
                    topo.node_at(0, 0),
                    topo.node_at(2, 0),
                    TrafficSpec::periodic(8, 18),
                    24,
                ),
                &mut plane,
            )
            .unwrap();
        for w in ch.hops.windows(2) {
            assert_eq!(w[0].out_conn, w[1].conn, "outgoing id must match downstream table");
        }
        assert_eq!(ch.ingress, ch.hops[0].conn);
    }

    #[test]
    fn multicast_tree_shares_prefix_and_fans_out() {
        let topo = Topology::mesh(4, 4);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let request = ChannelRequest {
            source: topo.node_at(0, 0),
            destinations: vec![topo.node_at(2, 0), topo.node_at(1, 2)],
            spec: TrafficSpec::periodic(16, 18),
            deadline: 60,
        };
        let ch = mgr.establish(&topo, request, &mut plane).unwrap();
        // Node (1,0) forwards to both +x (towards (2,0)) and +y (towards
        // (1,2)).
        let fork = ch.hop_at(topo.node_at(1, 0)).unwrap();
        assert_eq!(fork.out_mask.count_ones(), 2);
        // Both children see the same incoming id.
        let c1 = ch.hop_at(topo.node_at(2, 0)).unwrap();
        let c2 = ch.hop_at(topo.node_at(1, 1)).unwrap();
        assert_eq!(c1.conn, c2.conn);
        assert_eq!(fork.out_conn, c1.conn);
        // The analytic bound covers the deepest branch and never exceeds
        // the request.
        assert!(ch.guaranteed_bound() <= ch.request.deadline);
        let deep: u32 =
            [topo.node_at(0, 0), topo.node_at(1, 0), topo.node_at(1, 1), topo.node_at(1, 2)]
                .iter()
                .map(|n| ch.hop_at(*n).unwrap().delay)
                .sum();
        assert_eq!(ch.guaranteed_bound(), deep);
    }

    #[test]
    fn deadline_too_tight_is_rejected() {
        let topo = Topology::mesh(4, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let err = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(
                    topo.node_at(0, 0),
                    topo.node_at(3, 0),
                    TrafficSpec::periodic(8, 18),
                    3, // 4 scheduled hops cannot fit in 3 slots
                ),
                &mut plane,
            )
            .unwrap_err();
        assert!(matches!(err, EstablishError::Admission(AdmissionError::BadDelayBound { .. })));
        assert!(plane.commands.is_empty(), "failed admission must not program routers");
    }

    #[test]
    fn link_saturation_rejects_later_channels() {
        let topo = Topology::mesh(2, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let spec = TrafficSpec::periodic(4, 18); // 1/4 of the link each
        let request = || ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 8);
        mgr.establish(&topo, request(), &mut plane).unwrap();
        mgr.establish(&topo, request(), &mut plane).unwrap();
        // A third channel overloads the 4-slot deadline window (2 packets +
        // η = 2 fit, 3 do not).
        let err = mgr.establish(&topo, request(), &mut plane).unwrap_err();
        assert!(matches!(err, EstablishError::Admission(_)));
    }

    #[test]
    fn teardown_releases_capacity() {
        let topo = Topology::mesh(2, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let spec = TrafficSpec::periodic(4, 18);
        let request = || ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 8);
        let a = mgr.establish(&topo, request(), &mut plane).unwrap();
        let _b = mgr.establish(&topo, request(), &mut plane).unwrap();
        assert!(mgr.establish(&topo, request(), &mut plane).is_err());
        mgr.teardown(a.id, &mut plane).unwrap();
        assert!(mgr.establish(&topo, request(), &mut plane).is_ok());
        // Teardown issued ClearConnection commands.
        assert!(plane
            .commands
            .iter()
            .any(|(_, c)| matches!(c, ControlCommand::ClearConnection { .. })));
    }

    #[test]
    fn utilization_report_ranks_reserved_links() {
        let topo = Topology::mesh(3, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        // Two channels share the first link; one continues further.
        mgr.establish(
            &topo,
            ChannelRequest::unicast(
                topo.node_at(0, 0),
                topo.node_at(1, 0),
                TrafficSpec::periodic(8, 18),
                16,
            ),
            &mut plane,
        )
        .unwrap();
        mgr.establish(
            &topo,
            ChannelRequest::unicast(
                topo.node_at(0, 0),
                topo.node_at(2, 0),
                TrafficSpec::periodic(16, 18),
                30,
            ),
            &mut plane,
        )
        .unwrap();
        let report = mgr.utilization_report();
        assert!(!report.is_empty());
        // Densest link first: node 0's +x carries 1/8 + 1/16.
        let hottest = report[0];
        assert_eq!(hottest.node, topo.node_at(0, 0));
        assert_eq!(hottest.connections, 2);
        assert!((hottest.utilization - 0.1875).abs() < 1e-9);
        assert!(hottest.headroom_slots > 0);
        // Utilisations are non-increasing down the report.
        for w in report.windows(2) {
            assert!(w[0].utilization >= w[1].utilization);
        }
    }

    #[test]
    fn source_equals_destination_schedules_reception_only() {
        let topo = Topology::mesh(2, 2);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let n = topo.node_at(1, 1);
        let ch = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(n, n, TrafficSpec::periodic(8, 18), 8),
                &mut plane,
            )
            .unwrap();
        assert_eq!(ch.depth, 1);
        assert_eq!(ch.hops.len(), 1);
        assert_eq!(ch.hops[0].out_mask, Port::Local.mask());
    }

    #[test]
    fn explicit_routes_steer_around_a_dead_link() {
        let topo = Topology::mesh(3, 3);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let src = topo.node_at(0, 0);
        let dst = topo.node_at(2, 0);
        // Pretend the first +x link failed: route through row 1 instead.
        let detour = topo.route_avoiding(src, dst, &[(src, Direction::XPlus)]).unwrap();
        let request = ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 50);
        let ch = mgr
            .establish_routed(&topo, request, std::slice::from_ref(&detour), &mut plane)
            .unwrap();
        assert_eq!(ch.depth, detour.len() as u32 + 1);
        // The source hop leaves on the detour's first direction, not +x.
        let first = ch.hop_at(src).unwrap();
        assert_eq!(first.out_mask, Port::Dir(detour[0]).mask());
        assert_ne!(detour[0], Direction::XPlus);
    }

    #[test]
    fn reroute_replaces_the_path_in_one_call() {
        let topo = Topology::mesh(3, 3);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let src = topo.node_at(0, 0);
        let dst = topo.node_at(2, 0);
        let ch = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(src, dst, TrafficSpec::periodic(16, 18), 60),
                &mut plane,
            )
            .unwrap();
        let old_id = ch.id;
        let rerouted = mgr.reroute(old_id, &topo, &[(src, Direction::XPlus)], &mut plane).unwrap();
        assert_ne!(rerouted.id, old_id);
        assert!(rerouted.depth > ch.depth, "the detour is longer");
        assert_ne!(rerouted.hop_at(src).unwrap().out_mask, Port::Dir(Direction::XPlus).mask());
        assert!(!mgr.channels().contains_key(&old_id));
        // Rerouting an unknown channel is an error.
        assert!(matches!(
            mgr.reroute(999, &topo, &[], &mut plane),
            Err(EstablishError::Admission(AdmissionError::NoRoute))
        ));
        // Disconnection keeps the teardown (documented) and reports.
        let topo2 = Topology::mesh(2, 1);
        let mut mgr2 = manager();
        let ch2 = mgr2
            .establish(
                &topo2,
                ChannelRequest::unicast(
                    topo2.node_at(0, 0),
                    topo2.node_at(1, 0),
                    TrafficSpec::periodic(16, 18),
                    16,
                ),
                &mut plane,
            )
            .unwrap();
        assert!(mgr2
            .reroute(ch2.id, &topo2, &[(topo2.node_at(0, 0), Direction::XPlus)], &mut plane)
            .is_err());
        // Disconnection is detected before teardown: the original stays.
        assert!(mgr2.channels().contains_key(&ch2.id));
    }

    #[test]
    fn non_tree_routes_are_rejected() {
        let topo = Topology::mesh(3, 3);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let src = topo.node_at(0, 0);
        // Two destinations whose explicit routes diverge and re-merge at
        // (1,1): not expressible with one outgoing id per node.
        let request = ChannelRequest {
            source: src,
            destinations: vec![topo.node_at(2, 1), topo.node_at(1, 2)],
            spec: TrafficSpec::periodic(16, 18),
            deadline: 60,
        };
        let routes = vec![
            vec![Direction::XPlus, Direction::YPlus, Direction::XPlus], // via (1,1)
            vec![Direction::YPlus, Direction::XPlus, Direction::YPlus], // via (1,1) again
        ];
        let err = mgr.establish_routed(&topo, request, &routes, &mut plane).unwrap_err();
        assert!(matches!(
            err,
            EstablishError::Admission(AdmissionError::InvalidRoute { reason })
                if reason.contains("tree")
        ));
        assert!(plane.commands.is_empty());
    }

    #[test]
    fn wrong_destination_route_rejected() {
        let topo = Topology::mesh(2, 2);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let request = ChannelRequest::unicast(
            topo.node_at(0, 0),
            topo.node_at(1, 1),
            TrafficSpec::periodic(16, 18),
            30,
        );
        let err = mgr
            .establish_routed(&topo, request, &[vec![Direction::XPlus]], &mut plane)
            .unwrap_err();
        assert!(matches!(
            err,
            EstablishError::Admission(AdmissionError::InvalidRoute { reason })
                if reason.contains("destination")
        ));
    }

    #[test]
    fn utilization_only_policy_admits_what_the_demand_test_rejects() {
        let topo = Topology::mesh(2, 1);
        let spec = TrafficSpec::periodic(100, 18);
        // Deadline 6 over 2 hops → d = 3: with η = 2, only one such
        // connection fits the 3-slot window under the demand criterion.
        let request = || ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 6);
        let mut strict = manager();
        let mut plane = MockPlane::default();
        strict.establish(&topo, request(), &mut plane).unwrap();
        assert!(strict.establish(&topo, request(), &mut plane).is_err());

        let mut lax = manager();
        lax.set_policy(AdmissionPolicy::UtilizationOnly);
        let mut plane = MockPlane::default();
        lax.establish(&topo, request(), &mut plane).unwrap();
        lax.establish(&topo, request(), &mut plane).unwrap();
        lax.establish(&topo, request(), &mut plane).unwrap();
    }

    #[test]
    fn buffer_partitions_gate_establishment_per_link() {
        let topo = Topology::mesh(3, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let mid = topo.node_at(1, 0);
        // Partition the middle node's +x link down to 1 buffer slot.
        mgr.set_buffer_partition(mid, Port::Dir(Direction::XPlus), Some(1));
        let request = |i_min| {
            ChannelRequest::unicast(
                topo.node_at(0, 0),
                topo.node_at(2, 0),
                TrafficSpec::periodic(i_min, 18),
                24,
            )
        };
        // A fast connection needs 2 buffers at the middle node (window
        // d_prev + d = 16 slots over I_min 8), exceeding the 1-slot
        // partition.
        let err = mgr.establish(&topo, request(8), &mut plane).unwrap_err();
        assert!(matches!(
            err,
            EstablishError::Admission(AdmissionError::BufferExceeded { node, .. }) if node == mid
        ));
        // A slower connection (1 buffer) still fits the partition.
        mgr.establish(&topo, request(32), &mut plane).unwrap();
    }

    #[test]
    fn torn_down_ids_go_to_the_back_of_the_reuse_queue() {
        let topo = Topology::mesh(2, 1);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let spec = TrafficSpec::periodic(64, 18);
        let request = || ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 8);
        let a = mgr.establish(&topo, request(), &mut plane).unwrap();
        let b = mgr.establish(&topo, request(), &mut plane).unwrap();
        assert_eq!((a.ingress.0, b.ingress.0), (0, 1));
        mgr.teardown(a.id, &mut plane).unwrap();
        // Id 0 is free again, but it was just released: the next channel
        // takes the smallest never-released id instead.
        let c = mgr.establish(&topo, request(), &mut plane).unwrap();
        assert_eq!(c.ingress.0, 2, "a just-torn-down id must not be recycled immediately");
    }

    #[test]
    fn exhausted_id_space_recycles_least_recently_released_first() {
        let topo = Topology::mesh(2, 1);
        let mut mgr =
            ChannelManager::new(&RouterConfig { connections: 3, ..RouterConfig::default() });
        let mut plane = MockPlane::default();
        let spec = TrafficSpec::periodic(64, 18);
        let request = || ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 16);
        let ids: Vec<_> =
            (0..3).map(|_| mgr.establish(&topo, request(), &mut plane).unwrap()).collect();
        // Release in the order 1, 0, 2: with no never-released id left, the
        // oldest release (id 1) is recycled first, then 0, then 2.
        mgr.teardown(ids[1].id, &mut plane).unwrap();
        mgr.teardown(ids[0].id, &mut plane).unwrap();
        mgr.teardown(ids[2].id, &mut plane).unwrap();
        let order: Vec<u16> = (0..3)
            .map(|_| mgr.establish(&topo, request(), &mut plane).unwrap().ingress.0)
            .collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn reroute_keeps_the_ingress_id_despite_generation_ordering() {
        let topo = Topology::mesh(3, 3);
        let mut mgr = manager();
        let mut plane = MockPlane::default();
        let src = topo.node_at(0, 0);
        let ch = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(src, topo.node_at(2, 0), TrafficSpec::periodic(16, 18), 60),
                &mut plane,
            )
            .unwrap();
        let old_ingress = ch.ingress;
        let rerouted = mgr.reroute(ch.id, &topo, &[(src, Direction::XPlus)], &mut plane).unwrap();
        assert_eq!(
            rerouted.ingress, old_ingress,
            "reroute must prefer the old ingress id so stamped senders keep working"
        );
        // The preference is one-shot: an unrelated establishment afterwards
        // still follows generation order (fresh id, not the rerouted one).
        let other = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(src, topo.node_at(0, 2), TrafficSpec::periodic(16, 18), 60),
                &mut plane,
            )
            .unwrap();
        assert_ne!(other.ingress, old_ingress);
    }

    #[test]
    fn buffer_exhaustion_rejected() {
        let topo = Topology::mesh(2, 1);
        let mut mgr =
            ChannelManager::new(&RouterConfig { packet_slots: 2, ..RouterConfig::default() });
        let mut plane = MockPlane::default();
        // Large burst allowance wants B_max extra buffers at the source.
        let spec = TrafficSpec { i_min: 16, s_max_bytes: 18, b_max: 8 };
        let err = mgr
            .establish(
                &topo,
                ChannelRequest::unicast(topo.node_at(0, 0), topo.node_at(1, 0), spec, 32),
                &mut plane,
            )
            .unwrap_err();
        assert!(matches!(err, EstablishError::Admission(AdmissionError::BufferExceeded { .. })));
    }
}
